//! Domain codecs: how netlists, placements, parasitics, technology
//! stacks and the two store artifact kinds ([`encode_db`]/[`decode_db`]
//! snapshots and [`SessionArtifact`] checkpoints) map onto the byte
//! format.
//!
//! Two rules govern every decoder here:
//!
//! 1. **Validate before allocating** — counts and lengths go through
//!    [`Reader::get_len`]'s remaining-bytes bound, so corrupted fields
//!    cannot drive allocations.
//! 2. **Validate before constructing** — every cross-reference a domain
//!    type's accessors assume (pin slots ↔ net lists, `tiers.len() ==
//!    cell_count`, one parasitic model per net) is checked here, so a
//!    decoded value can never panic downstream constructors like
//!    [`Parasitics::from_models`] or [`DesignDb::set_tiers`].

use crate::codec::{Reader, Writer};
use crate::error::{DecodeError, StoreError};
use m3d_db::DesignDb;
use m3d_flow::{BaseDesign, PseudoCheckpoint};
use m3d_geom::{Point, Rect};
use m3d_netlist::{Cell, CellClass, CellId, MacroSpec, Net, NetId, Netlist, PinRef};
use m3d_place::Placement;
use m3d_sta::{NetModel, Parasitics};
use m3d_tech::{CellKind, Drive, Library, Tier, TierStack, TrackHeight};
use std::sync::Arc;

// ---------------------------------------------------------------------
// technology enums
// ---------------------------------------------------------------------

fn cell_kind_tag(kind: CellKind) -> u8 {
    match kind {
        CellKind::Inv => 0,
        CellKind::Buf => 1,
        CellKind::Nand2 => 2,
        CellKind::Nand3 => 3,
        CellKind::Nor2 => 4,
        CellKind::Nor3 => 5,
        CellKind::And2 => 6,
        CellKind::Or2 => 7,
        CellKind::Xor2 => 8,
        CellKind::Xnor2 => 9,
        CellKind::Aoi21 => 10,
        CellKind::Oai21 => 11,
        CellKind::Mux2 => 12,
        CellKind::Dff => 13,
        CellKind::ClkBuf => 14,
        CellKind::ClkInv => 15,
        CellKind::LevelShifter => 16,
        CellKind::Macro => 17,
    }
}

fn cell_kind_from_tag(tag: u8) -> Result<CellKind, DecodeError> {
    Ok(match tag {
        0 => CellKind::Inv,
        1 => CellKind::Buf,
        2 => CellKind::Nand2,
        3 => CellKind::Nand3,
        4 => CellKind::Nor2,
        5 => CellKind::Nor3,
        6 => CellKind::And2,
        7 => CellKind::Or2,
        8 => CellKind::Xor2,
        9 => CellKind::Xnor2,
        10 => CellKind::Aoi21,
        11 => CellKind::Oai21,
        12 => CellKind::Mux2,
        13 => CellKind::Dff,
        14 => CellKind::ClkBuf,
        15 => CellKind::ClkInv,
        16 => CellKind::LevelShifter,
        17 => CellKind::Macro,
        found => {
            return Err(DecodeError::InvalidTag {
                what: "cell kind",
                found,
            })
        }
    })
}

fn drive_tag(drive: Drive) -> u8 {
    match drive {
        Drive::X1 => 0,
        Drive::X2 => 1,
        Drive::X4 => 2,
        Drive::X8 => 3,
        Drive::X16 => 4,
    }
}

fn drive_from_tag(tag: u8) -> Result<Drive, DecodeError> {
    Ok(match tag {
        0 => Drive::X1,
        1 => Drive::X2,
        2 => Drive::X4,
        3 => Drive::X8,
        4 => Drive::X16,
        found => {
            return Err(DecodeError::InvalidTag {
                what: "drive",
                found,
            })
        }
    })
}

fn tier_tag(tier: Tier) -> u8 {
    match tier {
        Tier::Bottom => 0,
        Tier::Top => 1,
    }
}

fn tier_from_tag(tag: u8) -> Result<Tier, DecodeError> {
    match tag {
        0 => Ok(Tier::Bottom),
        1 => Ok(Tier::Top),
        found => Err(DecodeError::InvalidTag {
            what: "tier",
            found,
        }),
    }
}

/// The five preset technology stacks the store can name on disk.
///
/// Stacks are serialized *by name*, not by value: the presets are
/// deterministic functions of the library constructors, so a one-byte
/// tag reproduces the stack exactly and a record can never smuggle in a
/// subtly altered library. A custom stack is [`StoreError::Unencodable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackSpec {
    /// 2-D, 9-track.
    TwoD9,
    /// 2-D, 12-track.
    TwoD12,
    /// Homogeneous 3-D, 9-track both tiers.
    Homo3d9,
    /// Homogeneous 3-D, 12-track both tiers.
    Homo3d12,
    /// The paper's heterogeneous 12-bottom/9-top stack.
    Hetero,
}

impl StackSpec {
    /// Classifies `stack` as one of the presets.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Unencodable`] for a stack that is not one of
    /// the five presets (custom corner libraries, custom pairings).
    pub fn of(stack: &TierStack) -> Result<StackSpec, StoreError> {
        let is_preset = |lib: &Library| {
            let preset = match lib.track {
                TrackHeight::Nine => Library::nine_track(),
                TrackHeight::Twelve => Library::twelve_track(),
            };
            lib.name == preset.name && lib.vdd == preset.vdd
        };
        let bottom = stack.library(Tier::Bottom);
        let top = stack.library(Tier::Top);
        if !is_preset(bottom) || !is_preset(top) {
            return Err(StoreError::Unencodable(
                "technology stack uses a non-preset library".into(),
            ));
        }
        // The presets all carry the default metal stack; a modified BEOL
        // (e.g. an F2F hybrid-bond via swapped in by a technology
        // scenario) would rehydrate as the monolithic default, so it
        // must be rejected rather than silently renamed.
        if stack.metal != m3d_tech::MetalStack::six_layer_28nm() {
            return Err(StoreError::Unencodable(
                "technology stack uses a non-default metal stack".into(),
            ));
        }
        let spec = match (stack.is_3d(), bottom.track, top.track) {
            (false, TrackHeight::Nine, _) => StackSpec::TwoD9,
            (false, TrackHeight::Twelve, _) => StackSpec::TwoD12,
            (true, TrackHeight::Nine, TrackHeight::Nine) => StackSpec::Homo3d9,
            (true, TrackHeight::Twelve, TrackHeight::Twelve) => StackSpec::Homo3d12,
            (true, TrackHeight::Twelve, TrackHeight::Nine) => StackSpec::Hetero,
            (true, TrackHeight::Nine, TrackHeight::Twelve) => {
                return Err(StoreError::Unencodable(
                    "9-bottom/12-top stack is not a preset".into(),
                ))
            }
        };
        Ok(spec)
    }

    /// Rebuilds the preset stack.
    #[must_use]
    pub fn build(self) -> TierStack {
        match self {
            StackSpec::TwoD9 => TierStack::two_d(Library::nine_track()),
            StackSpec::TwoD12 => TierStack::two_d(Library::twelve_track()),
            StackSpec::Homo3d9 => TierStack::homogeneous_3d(Library::nine_track()),
            StackSpec::Homo3d12 => TierStack::homogeneous_3d(Library::twelve_track()),
            StackSpec::Hetero => TierStack::heterogeneous(),
        }
    }

    fn tag(self) -> u8 {
        match self {
            StackSpec::TwoD9 => 0,
            StackSpec::TwoD12 => 1,
            StackSpec::Homo3d9 => 2,
            StackSpec::Homo3d12 => 3,
            StackSpec::Hetero => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<StackSpec, DecodeError> {
        Ok(match tag {
            0 => StackSpec::TwoD9,
            1 => StackSpec::TwoD12,
            2 => StackSpec::Homo3d9,
            3 => StackSpec::Homo3d12,
            4 => StackSpec::Hetero,
            found => {
                return Err(DecodeError::InvalidTag {
                    what: "stack spec",
                    found,
                })
            }
        })
    }
}

// ---------------------------------------------------------------------
// netlist
// ---------------------------------------------------------------------

fn put_net_id(w: &mut Writer, id: NetId) {
    w.put_u32(id.index() as u32);
}

fn get_net_id(r: &mut Reader<'_>) -> Result<NetId, DecodeError> {
    Ok(NetId::from_index(r.get_u32()? as usize))
}

fn put_pin_ref(w: &mut Writer, pr: &PinRef) {
    w.put_u32(pr.cell.index() as u32);
    w.put_u8(pr.pin);
}

fn get_pin_ref(r: &mut Reader<'_>) -> Result<PinRef, DecodeError> {
    let cell = CellId::from_index(r.get_u32()? as usize);
    let pin = r.get_u8()?;
    Ok(PinRef::new(cell, pin))
}

fn put_cell(w: &mut Writer, cell: &Cell) {
    w.put_str(&cell.name);
    match &cell.class {
        CellClass::Gate { kind, drive } => {
            w.put_u8(0);
            w.put_u8(cell_kind_tag(*kind));
            w.put_u8(drive_tag(*drive));
        }
        CellClass::Macro(spec) => {
            w.put_u8(1);
            w.put_f64(spec.width_um);
            w.put_f64(spec.height_um);
            w.put_f64(spec.input_cap_ff);
            w.put_f64(spec.access_delay_ns);
            w.put_f64(spec.setup_ns);
            w.put_f64(spec.leakage_uw);
            w.put_f64(spec.internal_energy_fj);
        }
        CellClass::PrimaryInput => w.put_u8(2),
        CellClass::PrimaryOutput => w.put_u8(3),
    }
    w.put_u16(cell.block);
    w.put_seq(&cell.inputs, |w, slot| {
        w.put_opt(slot.as_ref(), |w, id| put_net_id(w, *id));
    });
    w.put_seq(&cell.outputs, |w, slot| {
        w.put_opt(slot.as_ref(), |w, id| put_net_id(w, *id));
    });
    w.put_bool(cell.fixed);
}

fn get_cell(r: &mut Reader<'_>) -> Result<Cell, DecodeError> {
    let name = r.get_str()?;
    let class = match r.get_u8()? {
        0 => CellClass::Gate {
            kind: cell_kind_from_tag(r.get_u8()?)?,
            drive: drive_from_tag(r.get_u8()?)?,
        },
        1 => CellClass::Macro(MacroSpec {
            width_um: r.get_f64()?,
            height_um: r.get_f64()?,
            input_cap_ff: r.get_f64()?,
            access_delay_ns: r.get_f64()?,
            setup_ns: r.get_f64()?,
            leakage_uw: r.get_f64()?,
            internal_energy_fj: r.get_f64()?,
        }),
        2 => CellClass::PrimaryInput,
        3 => CellClass::PrimaryOutput,
        found => {
            return Err(DecodeError::InvalidTag {
                what: "cell class",
                found,
            })
        }
    };
    let block = r.get_u16()?;
    let inputs = r.get_seq(1, |r| r.get_opt(get_net_id))?;
    let outputs = r.get_seq(1, |r| r.get_opt(get_net_id))?;
    let fixed = r.get_bool()?;
    Ok(Cell {
        name,
        class,
        block,
        inputs,
        outputs,
        fixed,
    })
}

fn put_net(w: &mut Writer, net: &Net) {
    w.put_str(&net.name);
    w.put_opt(net.driver.as_ref(), put_pin_ref);
    w.put_seq(&net.sinks, put_pin_ref);
    w.put_bool(net.is_clock);
}

fn get_net(r: &mut Reader<'_>) -> Result<Net, DecodeError> {
    let name = r.get_str()?;
    let driver = r.get_opt(get_pin_ref)?;
    let sinks = r.get_seq(5, get_pin_ref)?;
    let is_clock = r.get_bool()?;
    let mut net = Net::new(name);
    net.driver = driver;
    net.sinks = sinks;
    net.is_clock = is_clock;
    Ok(net)
}

pub(crate) fn put_netlist(w: &mut Writer, netlist: &Netlist) {
    w.put_str(&netlist.name);
    let blocks: Vec<String> = (0..netlist.block_count() as u16)
        .map(|t| netlist.block_name(t).to_string())
        .collect();
    w.put_seq(&blocks, |w, b| w.put_str(b));
    w.put_u64(netlist.cell_count() as u64);
    for (_, cell) in netlist.cells() {
        put_cell(w, cell);
    }
    w.put_u64(netlist.net_count() as u64);
    for (_, net) in netlist.nets() {
        put_net(w, net);
    }
    w.put_opt(netlist.clock().as_ref(), |w, id| put_net_id(w, *id));
}

pub(crate) fn get_netlist(r: &mut Reader<'_>) -> Result<Netlist, DecodeError> {
    let name = r.get_str()?;
    let blocks = r.get_seq(8, |r| r.get_str())?;
    let n_cells = r.get_len(1)?;
    let mut cells = Vec::with_capacity(n_cells);
    for _ in 0..n_cells {
        cells.push(get_cell(r)?);
    }
    let n_nets = r.get_len(1)?;
    let mut nets = Vec::with_capacity(n_nets);
    for _ in 0..n_nets {
        nets.push(get_net(r)?);
    }
    let clock = r.get_opt(get_net_id)?;
    // from_parts re-checks every cross-reference, so indices corrupted
    // in-range (same length, different target) still cannot build a
    // netlist whose accessors would panic.
    Netlist::from_parts(name, blocks, cells, nets, clock)
        .map_err(|e| DecodeError::Invalid(e.to_string()))
}

// ---------------------------------------------------------------------
// physical artifacts
// ---------------------------------------------------------------------

fn put_rect(w: &mut Writer, rect: &Rect) {
    w.put_f64(rect.llx());
    w.put_f64(rect.lly());
    w.put_f64(rect.urx());
    w.put_f64(rect.ury());
}

fn get_rect(r: &mut Reader<'_>) -> Result<Rect, DecodeError> {
    let (llx, lly) = (r.get_f64()?, r.get_f64()?);
    let (urx, ury) = (r.get_f64()?, r.get_f64()?);
    Ok(Rect::new(llx, lly, urx, ury))
}

fn put_placement(w: &mut Writer, placement: &Placement) {
    put_rect(w, &placement.die);
    w.put_seq(&placement.positions, |w, p| {
        w.put_f64(p.x);
        w.put_f64(p.y);
    });
}

/// Decodes a placement and pins its position count to `cell_count`: a
/// placement indexed by cell id must cover exactly the netlist's cells.
fn get_placement(r: &mut Reader<'_>, cell_count: usize) -> Result<Placement, DecodeError> {
    let die = get_rect(r)?;
    let positions = r.get_seq(16, |r| Ok(Point::new(r.get_f64()?, r.get_f64()?)))?;
    if positions.len() != cell_count {
        return Err(DecodeError::Invalid(format!(
            "placement covers {} cells, netlist has {cell_count}",
            positions.len()
        )));
    }
    Ok(Placement { positions, die })
}

fn put_parasitics(w: &mut Writer, parasitics: &Parasitics) {
    w.put_u64(parasitics.len() as u64);
    for k in 0..parasitics.len() {
        let m = parasitics.net(NetId::from_index(k));
        w.put_f64(m.wire_cap_ff);
        w.put_f64(m.wire_delay_ns);
    }
}

/// Decodes per-net parasitics and pins the model count to `net_count`,
/// so [`Parasitics::from_models`]'s one-model-per-net precondition holds
/// by construction.
fn get_parasitics(r: &mut Reader<'_>, netlist: &Netlist) -> Result<Parasitics, DecodeError> {
    let n = r.get_len(16)?;
    if n != netlist.net_count() {
        return Err(DecodeError::Invalid(format!(
            "parasitics cover {n} nets, netlist has {}",
            netlist.net_count()
        )));
    }
    let mut models = Vec::with_capacity(n);
    for _ in 0..n {
        models.push(NetModel {
            wire_cap_ff: r.get_f64()?,
            wire_delay_ns: r.get_f64()?,
        });
    }
    Ok(Parasitics::from_models(netlist, models))
}

fn get_tiers(r: &mut Reader<'_>, cell_count: usize) -> Result<Vec<Tier>, DecodeError> {
    let tiers = r.get_seq(1, |r| tier_from_tag(r.get_u8()?))?;
    if tiers.len() != cell_count {
        return Err(DecodeError::Invalid(format!(
            "tier assignment covers {} cells, netlist has {cell_count}",
            tiers.len()
        )));
    }
    Ok(tiers)
}

// ---------------------------------------------------------------------
// artifact kind 1: design-database snapshot
// ---------------------------------------------------------------------

/// Encodes the fingerprint-bearing state of a [`DesignDb`]: netlist,
/// technology stack (as a preset name), tier assignment, clock period,
/// and — when present — placement and parasitics. This is exactly the
/// state [`DesignDb::state_fingerprint`] hashes, so a decoded snapshot
/// fingerprints identically to its source; derived artifacts outside the
/// fingerprint (floorplan, routing, CTS, STA, power) are deliberately
/// not persisted and are recomputed by the flow.
///
/// # Errors
///
/// Returns [`StoreError::Unencodable`] when the database's stack is not
/// one of the five presets.
pub fn encode_db(db: &DesignDb) -> Result<Vec<u8>, StoreError> {
    let spec = StackSpec::of(db.stack())?;
    let mut w = Writer::new();
    put_netlist(&mut w, db.netlist());
    w.put_u8(spec.tag());
    w.put_seq(db.tiers(), |w, t| w.put_u8(tier_tag(*t)));
    w.put_f64(db.period_ns());
    w.put_opt(db.placement_arc().as_deref(), put_placement);
    w.put_opt(db.parasitics_arc().as_deref(), put_parasitics);
    Ok(w.into_bytes())
}

/// Decodes a [`encode_db`] payload back into a fresh [`DesignDb`] (with
/// an empty change journal).
///
/// # Errors
///
/// Returns a [`DecodeError`] for any malformed, truncated or
/// inconsistent payload.
pub fn decode_db(bytes: &[u8]) -> Result<DesignDb, DecodeError> {
    let mut r = Reader::new(bytes);
    let netlist = get_netlist(&mut r)?;
    let spec = StackSpec::from_tag(r.get_u8()?)?;
    let tiers = get_tiers(&mut r, netlist.cell_count())?;
    let period_ns = r.get_f64()?;
    let placement = r.get_opt(|r| get_placement(r, netlist.cell_count()))?;
    let parasitics = r.get_opt(|r| get_parasitics(r, &netlist))?;
    r.finish()?;
    let mut db = DesignDb::new(netlist, spec.build(), period_ns);
    db.set_tiers(tiers);
    if let Some(p) = placement {
        db.set_placement(p);
    }
    if let Some(p) = parasitics {
        db.set_parasitics(p);
    }
    let _ = db.take_journal();
    Ok(db)
}

// ---------------------------------------------------------------------
// artifact kind 2: session checkpoints
// ---------------------------------------------------------------------

/// The persistent form of a flow session's computed prefix: the buffered
/// base netlist plus, when it has been computed, the pseudo-3-D
/// checkpoint. Rehydrating one via `FlowSession::from_parts` skips both
/// `prepare_base` and the pseudo-3-D stage on the warm path.
#[derive(Debug, Clone)]
pub struct SessionArtifact {
    /// The buffered base checkpoint.
    pub base: BaseDesign,
    /// The pseudo-3-D checkpoint, when it was computed before persisting.
    pub pseudo: Option<PseudoCheckpoint>,
}

impl SessionArtifact {
    /// Encodes the artifact.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Unencodable`] when the pseudo checkpoint's
    /// stack is not one of the five presets.
    pub fn encode(&self) -> Result<Vec<u8>, StoreError> {
        let pseudo_spec = self
            .pseudo
            .as_ref()
            .map(|p| StackSpec::of(&p.stack))
            .transpose()?;
        let mut w = Writer::new();
        put_netlist(&mut w, &self.base.netlist);
        match (&self.pseudo, pseudo_spec) {
            (Some(p), Some(spec)) => {
                w.put_u8(1);
                put_placement(&mut w, &p.placement);
                put_parasitics(&mut w, &p.parasitics);
                put_rect(&mut w, &p.die);
                w.put_u8(spec.tag());
            }
            _ => w.put_u8(0),
        }
        Ok(w.into_bytes())
    }

    /// Decodes an artifact.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for any malformed, truncated or
    /// inconsistent payload.
    pub fn decode(bytes: &[u8]) -> Result<SessionArtifact, DecodeError> {
        let mut r = Reader::new(bytes);
        let netlist = get_netlist(&mut r)?;
        let pseudo = match r.get_u8()? {
            0 => None,
            1 => {
                let placement = get_placement(&mut r, netlist.cell_count())?;
                let parasitics = get_parasitics(&mut r, &netlist)?;
                let die = get_rect(&mut r)?;
                let spec = StackSpec::from_tag(r.get_u8()?)?;
                Some(PseudoCheckpoint {
                    placement: Arc::new(placement),
                    parasitics: Arc::new(parasitics),
                    die,
                    stack: Arc::new(spec.build()),
                })
            }
            found => {
                return Err(DecodeError::InvalidTag {
                    what: "option",
                    found,
                })
            }
        };
        r.finish()?;
        Ok(SessionArtifact {
            base: BaseDesign {
                netlist: Arc::new(netlist),
            },
            pseudo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_specs_round_trip_and_reject_custom() {
        for spec in [
            StackSpec::TwoD9,
            StackSpec::TwoD12,
            StackSpec::Homo3d9,
            StackSpec::Homo3d12,
            StackSpec::Hetero,
        ] {
            let stack = spec.build();
            assert_eq!(StackSpec::of(&stack).unwrap(), spec);
            assert_eq!(StackSpec::from_tag(spec.tag()).unwrap(), spec);
        }
        let mut custom = Library::nine_track();
        custom.vdd = 0.75;
        assert!(matches!(
            StackSpec::of(&TierStack::two_d(custom)),
            Err(StoreError::Unencodable(_))
        ));
        let flipped = TierStack::three_d(Library::nine_track(), Library::twelve_track());
        assert!(matches!(
            StackSpec::of(&flipped),
            Err(StoreError::Unencodable(_))
        ));
        assert!(StackSpec::from_tag(9).is_err());
    }

    #[test]
    fn stack_specs_reject_non_default_metal_stacks() {
        // A derated library already fails the preset check by name, but a
        // scenario that only swaps the inter-tier via (F2F hybrid bond)
        // keeps both libraries pristine — the metal guard must catch it,
        // or a warm restart would silently rebuild a monolithic stack.
        let f2f = TierStack::heterogeneous().with_stacking(m3d_tech::StackingStyle::F2fHybridBond);
        assert!(matches!(
            StackSpec::of(&f2f),
            Err(StoreError::Unencodable(_))
        ));
        let monolithic =
            TierStack::heterogeneous().with_stacking(m3d_tech::StackingStyle::Monolithic);
        assert_eq!(StackSpec::of(&monolithic).unwrap(), StackSpec::Hetero);
    }
}
