//! Zero-dependency JSON for the hetero3d workspace: a strict reader (the
//! bench-regression gate compares manifests with it) and a writer half
//! (the flow service's wire format is built from [`Value`]s).
//!
//! The dialect is the JSON subset this workspace emits: objects, arrays,
//! strings with standard escapes (including `\uXXXX` surrogate pairs),
//! numbers, booleans and null. The reader is strict about structure
//! (trailing garbage is an error, as are number literals that overflow
//! `f64`) and keeps object keys in document order so mismatches report
//! deterministically. The writer renders floats with Rust's
//! shortest-roundtrip formatting, so a finite `f64` survives a
//! write → parse cycle bit for bit; integral values are written without
//! a fractional part. Integers are exact only below 2^53 (JSON numbers
//! are doubles on the wire), so [`Value::as_u64`] rejects anything
//! larger instead of silently rounding it.
//!
//! Decoding structured types goes through [`Cur`], a cursor that carries
//! its path from the document root, so shape errors ([`DecodeError`])
//! name the offending member (`options/placer/iterations: expected u64`).
//!
//! There is one parser but two surfaces. [`parse_borrowed`] returns a
//! [`borrow::Value`] whose strings point into the input buffer —
//! escape-free strings (everything this workspace's writer emits) cost
//! zero per-field allocations, and the matching [`borrow::Cur`] builds
//! its error path only when a decode fails. [`parse`] is the owned
//! surface the rest of the workspace speaks: it runs the same parser
//! and detaches the tree with [`borrow::Value::into_owned`]. The flow
//! service decodes request lines on the borrowed surface.

pub mod borrow;

pub use borrow::{decode_borrowed, FromJsonBorrowed};

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a `/`-separated member path from this value.
    #[must_use]
    pub fn path(&self, dotted: &str) -> Option<&Value> {
        dotted.split('/').try_fold(self, |v, key| v.get(key))
    }

    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Integral numbers in the double-exact range `0..2^53`. Larger
    /// literals (e.g. request ids) can collide with their neighbors
    /// after the round-trip through `f64`, so they are rejected rather
    /// than returned off by one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(v) => num_to_u64(*v),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact single-line JSON. Finite floats use
    /// shortest-roundtrip formatting (integral values without a `.0`);
    /// non-finite floats render as `null`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(v) => out.push_str(&fmt_f64(*v)),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Num(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Num(v as f64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Num(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Arr(v)
    }
}

/// The shared u64 view of a JSON number: non-negative, integral, below
/// 2^53 — the first integer a double cannot distinguish from its
/// successor.
pub(crate) fn num_to_u64(v: f64) -> Option<u64> {
    const MAX_EXACT: f64 = 9_007_199_254_740_992.0;
    if v >= 0.0 && v.fract() == 0.0 && v < MAX_EXACT {
        Some(v as u64)
    } else {
        None
    }
}

/// Ordered object builder: `Obj::new().put("k", 1u64).build()`.
#[derive(Debug, Default)]
pub struct Obj(Vec<(String, Value)>);

impl Obj {
    #[must_use]
    pub fn new() -> Obj {
        Obj(Vec::new())
    }

    /// Appends one member (keys are kept in insertion order).
    #[must_use]
    pub fn put(mut self, key: &str, value: impl Into<Value>) -> Obj {
        self.0.push((key.to_string(), value.into()));
        self
    }

    #[must_use]
    pub fn build(self) -> Value {
        Value::Obj(self.0)
    }
}

/// Shortest-roundtrip float formatting for the writer. Integral finite
/// values render without a fractional part; non-finite values render as
/// `null` (JSON has no NaN/Inf).
#[must_use]
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    format!("{v}")
}

/// Escapes a string for inclusion between JSON quotes.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// decoding
// ---------------------------------------------------------------------

/// A shape error while decoding a [`Value`] into a structured type: the
/// `/`-separated path from the document root and what was expected there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Path of the offending member, `/`-separated from the root.
    pub path: String,
    /// What the decoder expected to find.
    pub expected: String,
}

impl DecodeError {
    #[must_use]
    pub fn new(path: &str, expected: impl Into<String>) -> DecodeError {
        DecodeError {
            path: path.to_string(),
            expected: expected.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let at = if self.path.is_empty() {
            "document root"
        } else {
            &self.path
        };
        write!(f, "{at}: expected {}", self.expected)
    }
}

impl std::error::Error for DecodeError {}

/// A decoding cursor: a [`Value`] plus its path from the document root,
/// so every typed accessor can report *where* the shape was wrong.
#[derive(Debug, Clone)]
pub struct Cur<'a> {
    value: &'a Value,
    path: String,
}

impl<'a> Cur<'a> {
    /// A cursor at the document root.
    #[must_use]
    pub fn root(value: &'a Value) -> Cur<'a> {
        Cur {
            value,
            path: String::new(),
        }
    }

    #[must_use]
    pub fn value(&self) -> &'a Value {
        self.value
    }

    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }

    fn err(&self, expected: impl Into<String>) -> DecodeError {
        DecodeError::new(&self.path, expected)
    }

    /// Required object member.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when `self` is not an object or the key
    /// is absent.
    pub fn get(&self, key: &str) -> Result<Cur<'a>, DecodeError> {
        match self.value {
            Value::Obj(_) => self.value.get(key).map_or_else(
                || self.err(format!("member `{key}`")).into_result(),
                |v| {
                    Ok(Cur {
                        value: v,
                        path: join(&self.path, key),
                    })
                },
            ),
            _ => self.err("an object").into_result(),
        }
    }

    /// Optional object member (`None` when absent or explicitly null).
    #[must_use]
    pub fn opt(&self, key: &str) -> Option<Cur<'a>> {
        match self.value.get(key) {
            None | Some(Value::Null) => None,
            Some(v) => Some(Cur {
                value: v,
                path: join(&self.path, key),
            }),
        }
    }

    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the value is not a finite number
    /// (NaN and ±∞ have no JSON spelling, so a hand-built non-finite
    /// [`Value::Num`] is rejected here too).
    pub fn f64(&self) -> Result<f64, DecodeError> {
        self.value
            .as_f64()
            .filter(|v| v.is_finite())
            .ok_or_else(|| self.err("a finite number"))
    }

    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the value is not a non-negative
    /// integral number below 2^53 (the double-exact range).
    pub fn u64(&self) -> Result<u64, DecodeError> {
        self.value
            .as_u64()
            .ok_or_else(|| self.err("a non-negative integer below 2^53"))
    }

    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the value is not a non-negative
    /// integral number that fits `usize`.
    pub fn usize(&self) -> Result<usize, DecodeError> {
        self.u64().map(|v| v as usize)
    }

    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the value is not a string.
    pub fn str(&self) -> Result<&'a str, DecodeError> {
        self.value.as_str().ok_or_else(|| self.err("a string"))
    }

    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the value is not a boolean.
    pub fn bool(&self) -> Result<bool, DecodeError> {
        self.value.as_bool().ok_or_else(|| self.err("a boolean"))
    }

    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the value is not an array.
    pub fn arr(&self) -> Result<Vec<Cur<'a>>, DecodeError> {
        match self.value {
            Value::Arr(items) => Ok(items
                .iter()
                .enumerate()
                .map(|(i, v)| Cur {
                    value: v,
                    path: format!("{}[{i}]", self.path),
                })
                .collect()),
            _ => self.err("an array").into_result(),
        }
    }
}

impl DecodeError {
    fn into_result<T>(self) -> Result<T, DecodeError> {
        Err(self)
    }
}

fn join(prefix: &str, key: &str) -> String {
    if prefix.is_empty() {
        key.to_string()
    } else {
        format!("{prefix}/{key}")
    }
}

/// Types that render themselves as a JSON [`Value`].
pub trait ToJson {
    fn to_json(&self) -> Value;
}

/// Types that decode themselves from a JSON cursor.
pub trait FromJson: Sized {
    /// # Errors
    ///
    /// Returns a [`DecodeError`] naming the path of the first shape
    /// mismatch.
    fn from_json(cur: Cur<'_>) -> Result<Self, DecodeError>;
}

/// Everything that can go wrong turning text into a typed value: the
/// text was not JSON, or the JSON had the wrong shape.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// Lexical/syntactic failure, with the parser's message.
    Parse(String),
    /// Structural failure while decoding into the target type.
    Decode(DecodeError),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse(msg) => write!(f, "invalid JSON: {msg}"),
            JsonError::Decode(e) => write!(f, "unexpected JSON shape: {e}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl From<DecodeError> for JsonError {
    fn from(e: DecodeError) -> JsonError {
        JsonError::Decode(e)
    }
}

/// Parses `text` and decodes it into `T` in one step.
///
/// # Errors
///
/// Returns [`JsonError::Parse`] for malformed text and
/// [`JsonError::Decode`] for well-formed JSON of the wrong shape.
pub fn decode<T: FromJson>(text: &str) -> Result<T, JsonError> {
    let value = parse(text).map_err(JsonError::Parse)?;
    T::from_json(Cur::root(&value)).map_err(JsonError::Decode)
}

// ---------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------

/// Parses one JSON document into the owned [`Value`]. Errors carry a
/// byte offset.
///
/// # Errors
///
/// Returns a message naming the first offending byte for malformed input
/// (including trailing garbage after the document).
pub fn parse(src: &str) -> Result<Value, String> {
    parse_borrowed(src).map(borrow::Value::into_owned)
}

/// Parses one JSON document into a [`borrow::Value`] whose strings
/// borrow from `src` (escape-free strings allocate nothing). Same
/// strictness and error messages as [`parse`] — it *is* the same parser.
///
/// # Errors
///
/// Returns a message naming the first offending byte for malformed input
/// (including trailing garbage after the document).
pub fn parse_borrowed(src: &str) -> Result<borrow::Value<'_>, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: borrow::Value<'a>) -> Result<borrow::Value<'a>, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<borrow::Value<'a>, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(borrow::Value::Str(self.string()?)),
            b't' => self.literal("true", borrow::Value::Bool(true)),
            b'f' => self.literal("false", borrow::Value::Bool(false)),
            b'n' => self.literal("null", borrow::Value::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<borrow::Value<'a>, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(borrow::Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            members.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(borrow::Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<borrow::Value<'a>, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(borrow::Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(borrow::Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    /// Reads one string. Escape-free strings — every string the
    /// workspace's own writer produces — come back as a borrowed slice
    /// of the input; the first escape falls into the owned builder.
    fn string(&mut self) -> Result<std::borrow::Cow<'a, str>, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| e.to_string())?;
                    self.pos += 1;
                    return Ok(std::borrow::Cow::Borrowed(s));
                }
                b'\\' => {
                    let prefix = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| e.to_string())?;
                    return self
                        .string_tail(prefix.to_string())
                        .map(std::borrow::Cow::Owned);
                }
                _ => self.pos += 1,
            }
        }
        Err("unterminated string".to_string())
    }

    /// The owned slow path: continues a string that contains escapes,
    /// starting at the first backslash, with the escape-free prefix
    /// already in `out`.
    fn string_tail(&mut self, mut out: String) -> Result<String, String> {
        loop {
            match self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or("unterminated string")?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let code = match unit {
                                // A high surrogate names a supplementary
                                // code point only together with the low
                                // surrogate that must follow it.
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos) != Some(&b'\\')
                                        || self.bytes.get(self.pos + 1) != Some(&b'u')
                                    {
                                        return Err(format!("unpaired surrogate \\u{unit:04x}"));
                                    }
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(format!(
                                            "expected low surrogate after \\u{unit:04x}, got \\u{low:04x}"
                                        ));
                                    }
                                    0x1_0000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(format!("unpaired surrogate \\u{unit:04x}"));
                                }
                                scalar => scalar,
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid code point {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads four hex digits of a `\u` escape as a UTF-16 code unit.
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("bad \\u escape")?;
        // Strict hex only: `from_str_radix` alone would admit a sign.
        let text = std::str::from_utf8(hex)
            .ok()
            .filter(|t| t.bytes().all(|b| b.is_ascii_hexdigit()))
            .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos += 4;
        u32::from_str_radix(text, 16).map_err(|e| e.to_string())
    }

    fn number(&mut self) -> Result<borrow::Value<'a>, String> {
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let v: f64 = std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))?;
        // `str::parse` maps overflowing literals like 1e999 to ±inf;
        // passing that through would smuggle a non-finite value past
        // every downstream finiteness guard.
        if !v.is_finite() {
            return Err(format!("number out of range at byte {start}"));
        }
        Ok(borrow::Value::Num(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_manifest_shaped_documents() {
        let v = parse(
            r#"{
  "bench": "flow_obs", "scale": 0.02, "ok": true,
  "designs": [{"name": "aes", "speedup": 4.5}, {"name": "cpu", "speedup": 3.0}],
  "labels": {"input/netlist": "aes_like"}
}"#,
        )
        .expect("parse");
        assert_eq!(v.get("bench").and_then(Value::as_str), Some("flow_obs"));
        assert_eq!(v.get("scale").and_then(Value::as_f64), Some(0.02));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        let designs = v.get("designs").and_then(Value::as_arr).expect("arr");
        assert_eq!(designs.len(), 2);
        assert_eq!(designs[1].get("speedup").and_then(Value::as_f64), Some(3.0));
        let label = v.path("labels").and_then(|l| l.get("input/netlist"));
        assert_eq!(label.and_then(Value::as_str), Some("aes_like"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn handles_escapes_and_negatives() {
        let v = parse(r#"{"s": "a\"b\\c\nd", "n": -3.25e2}"#).expect("parse");
        assert_eq!(v.get("s").and_then(Value::as_str), Some("a\"b\\c\nd"));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(-325.0));
        assert_eq!(v.get("n").and_then(Value::as_u64), None);
    }

    #[test]
    fn writer_round_trips_structures() {
        let v = Obj::new()
            .put("id", 42u64)
            .put("name", "a \"quoted\"\nname")
            .put("ratio", 0.1 + 0.2)
            .put("neg", -1.5e-7)
            .put("ok", true)
            .put(
                "items",
                vec![Value::Num(1.0), Value::Null, Value::Str("x".into())],
            )
            .build();
        let text = v.render();
        let back = parse(&text).expect("reparse");
        assert_eq!(back, v);
        // Floats survive bit for bit.
        assert_eq!(
            back.get("ratio").and_then(Value::as_f64).map(f64::to_bits),
            Some((0.1f64 + 0.2).to_bits())
        );
    }

    #[test]
    fn writer_renders_integers_without_fraction() {
        assert_eq!(Value::Num(5.0).render(), "5");
        assert_eq!(Value::Num(0.5).render(), "0.5");
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::from(7u64).render(), "7");
    }

    #[test]
    fn surrogate_pairs_decode_to_supplementary_code_points() {
        let escaped = "\"\\ud83d\\ude00\"";
        let v = parse(escaped).expect("parse");
        assert_eq!(v.as_str(), Some("\u{1f600}"));
        // Raw (unescaped) UTF-8 passes through unchanged too.
        let raw = parse("\"\u{1f600}\"").expect("parse");
        assert_eq!(raw.as_str(), Some("\u{1f600}"));
        // Lone or mismatched surrogates are errors, not U+FFFD soup.
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ud83dx""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
        assert!(parse(r#""\ud83dA""#).is_err());
        // Plain BMP escapes still work, signs are not hex digits.
        assert_eq!(parse(r#""A""#).expect("parse").as_str(), Some("A"));
        assert!(parse(r#""\u+12f""#).is_err());
    }

    #[test]
    fn overflowing_literals_and_non_finite_numbers_are_rejected() {
        assert!(parse("1e999").is_err());
        assert!(parse("-1e999").is_err());
        assert_eq!(parse("1e308").expect("parse").as_f64(), Some(1e308));
        // A hand-built non-finite Value is stopped at the cursor.
        let inf = Value::Num(f64::INFINITY);
        let err = Cur::root(&inf).f64().unwrap_err();
        assert!(err.to_string().contains("finite"));
    }

    #[test]
    fn integers_at_or_above_2_pow_53_are_not_u64s() {
        assert_eq!(
            Value::Num(9_007_199_254_740_991.0).as_u64(),
            Some((1 << 53) - 1)
        );
        // 2^53 is where doubles stop distinguishing neighbors: the
        // echoed id could belong to a different request, so reject.
        assert_eq!(Value::Num(9_007_199_254_740_992.0).as_u64(), None);
        let v = parse("9007199254740993").expect("parse");
        assert_eq!(v.as_u64(), None);
        assert!(Cur::root(&v).u64().is_err());
    }

    #[test]
    fn cursor_reports_paths_on_shape_errors() {
        let v = parse(r#"{"options": {"placer": {"iterations": "twelve"}}}"#).expect("parse");
        let root = Cur::root(&v);
        let iter = root
            .get("options")
            .and_then(|o| o.get("placer"))
            .and_then(|p| p.get("iterations"))
            .expect("navigate");
        let err = iter.u64().unwrap_err();
        assert_eq!(err.path, "options/placer/iterations");
        assert!(err.to_string().contains("non-negative integer"));
        let missing = root.get("nope").unwrap_err();
        assert!(missing.to_string().contains("`nope`"));
    }

    #[test]
    fn decode_distinguishes_parse_and_shape_errors() {
        struct Pair {
            a: u64,
            b: f64,
        }
        impl FromJson for Pair {
            fn from_json(cur: Cur<'_>) -> Result<Self, DecodeError> {
                Ok(Pair {
                    a: cur.get("a")?.u64()?,
                    b: cur.get("b")?.f64()?,
                })
            }
        }
        let ok: Pair = decode(r#"{"a": 3, "b": 1.5}"#).expect("decode");
        assert_eq!((ok.a, ok.b), (3, 1.5));
        assert!(matches!(
            decode::<Pair>(r#"{"a": 3, "b": }"#),
            Err(JsonError::Parse(_))
        ));
        assert!(matches!(
            decode::<Pair>(r#"{"a": 3}"#),
            Err(JsonError::Decode(_))
        ));
    }
}
