//! Borrowed-slice JSON: the zero-copy half of the reader.
//!
//! [`Value`] here is the same tree as [`crate::Value`] except that every
//! string — member keys and string values alike — is a [`Cow`] pointing
//! straight into the input buffer. On the service's hot decode path
//! (request lines that contain no escape sequences, which is every line
//! the workspace's own writer emits) a parse allocates only the tree's
//! vectors: zero per-field `String`s. Escaped strings fall back to an
//! owned `Cow` transparently.
//!
//! [`Cur`] is the matching cursor. Unlike the owned [`crate::Cur`],
//! which carries its path as a `String` (one allocation per `get`), the
//! borrowed cursor links to its parent on the stack and renders the
//! path only when a decode actually fails — the success path touches
//! the allocator not at all. The trade-off is lexical: a child cursor
//! borrows its parent, so intermediate cursors must be `let`-bound
//! rather than chained across statements. [`Cur::arr`] mirrors the
//! owned cursor's array access and reports the same `key[index]`
//! paths, so array-shaped requests decode with identical errors.

use crate::{num_to_u64, DecodeError, JsonError};
use std::borrow::Cow;

/// A parsed JSON value borrowing string content from the input.
#[derive(Debug, Clone, PartialEq)]
pub enum Value<'a> {
    Null,
    Bool(bool),
    Num(f64),
    Str(Cow<'a, str>),
    Arr(Vec<Value<'a>>),
    Obj(Vec<(Cow<'a, str>, Value<'a>)>),
}

impl<'a> Value<'a> {
    /// Object member lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value<'a>> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Integral numbers in the double-exact range `0..2^53`, exactly as
    /// [`crate::Value::as_u64`].
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(v) => num_to_u64(*v),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Detaches the tree from the input buffer, yielding the owned
    /// [`crate::Value`] the rest of the workspace speaks.
    #[must_use]
    pub fn into_owned(self) -> crate::Value {
        match self {
            Value::Null => crate::Value::Null,
            Value::Bool(b) => crate::Value::Bool(b),
            Value::Num(v) => crate::Value::Num(v),
            Value::Str(s) => crate::Value::Str(s.into_owned()),
            Value::Arr(items) => {
                crate::Value::Arr(items.into_iter().map(Value::into_owned).collect())
            }
            Value::Obj(members) => crate::Value::Obj(
                members
                    .into_iter()
                    .map(|(k, v)| (k.into_owned(), v.into_owned()))
                    .collect(),
            ),
        }
    }
}

/// An allocation-free decoding cursor over a borrowed [`Value`].
///
/// Each cursor links back to the cursor it was derived from; the
/// `/`-separated path a [`DecodeError`] reports is reconstructed by
/// walking that chain, so no path string exists until a decode fails.
#[derive(Debug, Clone, Copy)]
pub struct Cur<'c, 'a> {
    value: &'c Value<'a>,
    /// Path segment this cursor was reached through (`None` at the root).
    seg: Option<Seg<'c>>,
    parent: Option<&'c Cur<'c, 'a>>,
}

/// One step of a cursor's path: an object member or an array index.
#[derive(Debug, Clone, Copy)]
enum Seg<'c> {
    Key(&'c str),
    Index(usize),
}

impl<'c, 'a> Cur<'c, 'a> {
    /// A cursor at the document root.
    #[must_use]
    pub fn root(value: &'c Value<'a>) -> Cur<'c, 'a> {
        Cur {
            value,
            seg: None,
            parent: None,
        }
    }

    #[must_use]
    pub fn value(&self) -> &'c Value<'a> {
        self.value
    }

    /// Renders the `/`-separated path from the root. Allocates — called
    /// on error paths only.
    #[must_use]
    pub fn path(&self) -> String {
        let mut segs = Vec::new();
        let mut at = Some(self);
        while let Some(c) = at {
            if let Some(s) = c.seg {
                segs.push(s);
            }
            at = c.parent;
        }
        segs.reverse();
        let mut out = String::new();
        for s in segs {
            match s {
                Seg::Key(k) => {
                    if !out.is_empty() {
                        out.push('/');
                    }
                    out.push_str(k);
                }
                Seg::Index(i) => {
                    out.push('[');
                    out.push_str(&i.to_string());
                    out.push(']');
                }
            }
        }
        out
    }

    /// Builds a [`DecodeError`] at this cursor's path. Public so typed
    /// decoders (enum matches in `m3d-flow`) can report their own
    /// expectations.
    #[must_use]
    pub fn err(&self, expected: impl Into<String>) -> DecodeError {
        DecodeError {
            path: self.path(),
            expected: expected.into(),
        }
    }

    /// Required object member.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when `self` is not an object or the key
    /// is absent.
    pub fn get<'s>(&'s self, key: &'s str) -> Result<Cur<'s, 'a>, DecodeError> {
        match self.value {
            Value::Obj(_) => match self.value.get(key) {
                Some(v) => Ok(Cur {
                    value: v,
                    seg: Some(Seg::Key(key)),
                    parent: Some(self),
                }),
                None => Err(self.err(format!("member `{key}`"))),
            },
            _ => Err(self.err("an object")),
        }
    }

    /// Optional object member (`None` when absent or explicitly null).
    #[must_use]
    pub fn opt<'s>(&'s self, key: &'s str) -> Option<Cur<'s, 'a>> {
        match self.value.get(key) {
            None | Some(Value::Null) => None,
            Some(v) => Some(Cur {
                value: v,
                seg: Some(Seg::Key(key)),
                parent: Some(self),
            }),
        }
    }

    /// Array elements, each with an indexed path segment — the borrowed
    /// analogue of [`crate::Cur::arr`], reporting identical paths.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the value is not an array.
    pub fn arr<'s>(&'s self) -> Result<Vec<Cur<'s, 'a>>, DecodeError> {
        match self.value {
            Value::Arr(items) => Ok(items
                .iter()
                .enumerate()
                .map(|(i, v)| Cur {
                    value: v,
                    seg: Some(Seg::Index(i)),
                    parent: Some(self),
                })
                .collect()),
            _ => Err(self.err("an array")),
        }
    }

    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the value is not a finite number.
    pub fn f64(&self) -> Result<f64, DecodeError> {
        self.value
            .as_f64()
            .filter(|v| v.is_finite())
            .ok_or_else(|| self.err("a finite number"))
    }

    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the value is not a non-negative
    /// integral number below 2^53 (the double-exact range).
    pub fn u64(&self) -> Result<u64, DecodeError> {
        self.value
            .as_u64()
            .ok_or_else(|| self.err("a non-negative integer below 2^53"))
    }

    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the value is not a non-negative
    /// integral number that fits `usize`.
    pub fn usize(&self) -> Result<usize, DecodeError> {
        self.u64().map(|v| v as usize)
    }

    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the value is not a string.
    pub fn str(&self) -> Result<&'c str, DecodeError> {
        match self.value {
            Value::Str(s) => Ok(s),
            _ => Err(self.err("a string")),
        }
    }

    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the value is not a boolean.
    pub fn bool(&self) -> Result<bool, DecodeError> {
        self.value.as_bool().ok_or_else(|| self.err("a boolean"))
    }
}

/// Types that decode themselves from a borrowed cursor without
/// allocating on the success path.
pub trait FromJsonBorrowed: Sized {
    /// # Errors
    ///
    /// Returns a [`DecodeError`] naming the path of the first shape
    /// mismatch.
    fn from_json_borrowed(cur: &Cur<'_, '_>) -> Result<Self, DecodeError>;
}

/// Parses `text` with the borrowed parser and decodes it into `T` in
/// one step — the zero-copy analogue of [`crate::decode`].
///
/// # Errors
///
/// Returns [`JsonError::Parse`] for malformed text and
/// [`JsonError::Decode`] for well-formed JSON of the wrong shape.
pub fn decode_borrowed<T: FromJsonBorrowed>(text: &str) -> Result<T, JsonError> {
    let value = crate::parse_borrowed(text).map_err(JsonError::Parse)?;
    T::from_json_borrowed(&Cur::root(&value)).map_err(JsonError::Decode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_borrowed;

    #[test]
    fn escape_free_strings_borrow_from_the_input() {
        let src = r#"{"benchmark": "aes", "n": 3, "nested": {"k": "v"}}"#;
        let v = parse_borrowed(src).expect("parse");
        let Value::Obj(members) = &v else {
            panic!("expected object")
        };
        assert!(members.iter().all(|(k, _)| matches!(k, Cow::Borrowed(_))));
        match v.get("benchmark") {
            Some(Value::Str(Cow::Borrowed(s))) => assert_eq!(*s, "aes"),
            other => panic!("expected borrowed str, got {other:?}"),
        }
        let nested = v.get("nested").expect("nested");
        match nested.get("k") {
            Some(Value::Str(Cow::Borrowed(s))) => assert_eq!(*s, "v"),
            other => panic!("expected borrowed str, got {other:?}"),
        }
    }

    #[test]
    fn escaped_strings_fall_back_to_owned() {
        let v = parse_borrowed(r#"{"s": "a\nb"}"#).expect("parse");
        match v.get("s") {
            Some(Value::Str(Cow::Owned(s))) => assert_eq!(s, "a\nb"),
            other => panic!("expected owned str, got {other:?}"),
        }
        // A partial prefix before the escape survives.
        let v = parse_borrowed(r#""prefix\tsuffix""#).expect("parse");
        assert_eq!(v.as_str(), Some("prefix\tsuffix"));
    }

    #[test]
    fn borrowed_and_owned_parses_agree() {
        let src = r#"{
  "id": 42, "ok": true, "x": null, "ratio": 0.30000000000000004,
  "s": "plain", "esc": "a\"b\\cA😀",
  "arr": [1, "two", {"three": 3}]
}"#;
        let owned = crate::parse(src).expect("owned parse");
        let borrowed = parse_borrowed(src).expect("borrowed parse");
        assert_eq!(borrowed.into_owned(), owned);
    }

    #[test]
    fn cursor_reports_paths_without_allocating_until_failure() {
        let src = r#"{"options": {"placer": {"iterations": "twelve"}}}"#;
        let v = parse_borrowed(src).expect("parse");
        let root = Cur::root(&v);
        let options = root.get("options").expect("options");
        let placer = options.get("placer").expect("placer");
        let err = placer.get("iterations").expect("member").u64().unwrap_err();
        assert_eq!(err.path, "options/placer/iterations");
        assert!(err.to_string().contains("non-negative integer"));
        let missing = placer.get("nope").unwrap_err();
        assert_eq!(missing.path, "options/placer");
        assert!(missing.to_string().contains("`nope`"));
    }

    #[test]
    fn array_elements_report_indexed_paths() {
        let src = r#"{"command": {"configs": ["a", 7, "c"]}}"#;
        let v = parse_borrowed(src).expect("parse");
        let root = Cur::root(&v);
        let command = root.get("command").expect("command");
        let configs = command.get("configs").expect("configs");
        let items = configs.arr().expect("array");
        assert_eq!(items.len(), 3);
        let err = items[1].str().unwrap_err();
        assert_eq!(err.path, "command/configs[1]");
        // Identical to the owned cursor's rendering of the same path.
        let owned = crate::parse(src).expect("owned parse");
        let owned_err = crate::Cur::root(&owned)
            .get("command")
            .and_then(|c| c.get("configs"))
            .and_then(|c| Ok(c.arr()?[1].clone()))
            .expect("cursor")
            .str()
            .unwrap_err();
        assert_eq!(owned_err, err);
        let not_array = command.get("configs").expect("configs");
        let items = not_array.arr().expect("array");
        assert!(items[0].arr().is_err());
    }

    #[test]
    fn decode_borrowed_mirrors_decode() {
        struct Pair {
            a: u64,
            b: f64,
        }
        impl FromJsonBorrowed for Pair {
            fn from_json_borrowed(cur: &Cur<'_, '_>) -> Result<Self, DecodeError> {
                Ok(Pair {
                    a: cur.get("a")?.u64()?,
                    b: cur.get("b")?.f64()?,
                })
            }
        }
        let ok: Pair = decode_borrowed(r#"{"a": 3, "b": 1.5}"#).expect("decode");
        assert_eq!((ok.a, ok.b), (3, 1.5));
        assert!(matches!(
            decode_borrowed::<Pair>(r#"{"a": 3, "b": }"#),
            Err(JsonError::Parse(_))
        ));
        assert!(matches!(
            decode_borrowed::<Pair>(r#"{"a": 3}"#),
            Err(JsonError::Decode(_))
        ));
    }
}
