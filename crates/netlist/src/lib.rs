//! Gate-level netlist substrate.
//!
//! A [`Netlist`] is the design representation every stage of the flow
//! operates on: a hypergraph of [`Cell`]s (gates, macros, primary I/O
//! ports) connected by [`Net`]s, each net driven by exactly one output pin.
//! Cells carry a *class* — logical function + drive strength — rather than
//! a bound library cell, because the same netlist is implemented in five
//! different technology configurations; the binding to a concrete
//! [`m3d_tech::Library`] happens per-tier inside the flow.
//!
//! The crate also provides:
//!
//! * [`NetlistStats`] — size/fanout/composition summaries,
//! * [`verilog`] — a structural-Verilog writer and parser for the cell set,
//! * validation ([`Netlist::validate`]) that enforces the single-driver
//!   rule, full connectivity and acyclicity between registers.
//!
//! # Examples
//!
//! ```
//! use m3d_netlist::Netlist;
//! use m3d_tech::{CellKind, Drive};
//!
//! let mut n = Netlist::new("example");
//! let a = n.add_input("a");
//! let g = n.add_gate("u1", CellKind::Inv, Drive::X1, 0);
//! let y = n.add_output("y");
//! let net_a = n.add_net("a_net", a, 0);
//! let net_y = n.add_net("y_net", g, 0);
//! n.connect(net_a, g, 0);
//! n.connect(net_y, y, 0);
//! assert!(n.validate().is_ok());
//! assert_eq!(n.gate_count(), 1);
//! ```

mod cell;
mod net;
#[allow(clippy::module_inception)]
mod netlist;
mod stats;
mod topo;
pub mod verilog;

pub use cell::{Cell, CellClass, CellId, MacroSpec};
pub use net::{Net, NetId, PinRef};
pub use netlist::{Netlist, NetlistPartsError, ValidateNetlistError};
pub use stats::NetlistStats;
pub use topo::{TopoRole, Topology, NO_NET};
