use crate::net::NetId;
use m3d_tech::{CellKind, Drive};
use std::fmt;

/// Dense handle to a cell inside a [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub(crate) u32);

impl CellId {
    /// The raw index (valid only within the owning netlist).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index. Only meaningful for indices obtained
    /// from the same netlist.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        CellId(index as u32)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Physical/electrical description of a hard macro instance (SRAM block).
#[derive(Debug, Clone, PartialEq)]
pub struct MacroSpec {
    /// Width in microns.
    pub width_um: f64,
    /// Height in microns.
    pub height_um: f64,
    /// Capacitance of each input pin, fF.
    pub input_cap_ff: f64,
    /// Access (clock-to-output) delay, ns.
    pub access_delay_ns: f64,
    /// Input setup time, ns.
    pub setup_ns: f64,
    /// Leakage power, µW.
    pub leakage_uw: f64,
    /// Internal energy per access, fJ.
    pub internal_energy_fj: f64,
}

impl MacroSpec {
    /// A synthetic SRAM macro sized for `bits` of storage (single-port,
    /// 28 nm-class density ≈ 0.6 Mb/mm²-equivalent for compiled SRAM).
    #[must_use]
    pub fn sram(bits: u64) -> Self {
        let area_um2 = bits as f64 * 0.45; // ~0.45 µm² per bit incl. periphery
        let width_um = (area_um2).sqrt() * 1.25;
        let height_um = area_um2 / width_um;
        MacroSpec {
            width_um,
            height_um,
            input_cap_ff: 2.5,
            access_delay_ns: 0.25,
            setup_ns: 0.06,
            leakage_uw: bits as f64 * 2e-3,
            internal_energy_fj: 12.0 + (bits as f64).sqrt() * 0.08,
        }
    }

    /// Footprint area in µm².
    #[must_use]
    pub fn area_um2(&self) -> f64 {
        self.width_um * self.height_um
    }
}

/// What a cell *is*: a standard-cell gate, a hard macro, or a primary port.
#[derive(Debug, Clone, PartialEq)]
pub enum CellClass {
    /// A standard-cell gate (function + drive); bound to a library per-tier
    /// by the flow.
    Gate {
        /// Logical function.
        kind: CellKind,
        /// Drive strength.
        drive: Drive,
    },
    /// A hard macro (SRAM).
    Macro(MacroSpec),
    /// Primary input port: drives one net, has no inputs.
    PrimaryInput,
    /// Primary output port: sinks one net, has no outputs.
    PrimaryOutput,
}

impl CellClass {
    /// Returns `true` for standard-cell gates.
    #[must_use]
    pub fn is_gate(&self) -> bool {
        matches!(self, CellClass::Gate { .. })
    }

    /// Returns `true` for macros.
    #[must_use]
    pub fn is_macro(&self) -> bool {
        matches!(self, CellClass::Macro(_))
    }

    /// Returns `true` for primary ports (either direction).
    #[must_use]
    pub fn is_port(&self) -> bool {
        matches!(self, CellClass::PrimaryInput | CellClass::PrimaryOutput)
    }

    /// Returns `true` for timing startpoint/endpoint cells: registers,
    /// macros and ports.
    #[must_use]
    pub fn is_timing_boundary(&self) -> bool {
        match self {
            CellClass::Gate { kind, .. } => kind.is_sequential(),
            CellClass::Macro(_) | CellClass::PrimaryInput | CellClass::PrimaryOutput => true,
        }
    }

    /// The gate kind, if this is a gate.
    #[must_use]
    pub fn gate_kind(&self) -> Option<CellKind> {
        match self {
            CellClass::Gate { kind, .. } => Some(*kind),
            _ => None,
        }
    }

    /// The drive strength, if this is a gate.
    #[must_use]
    pub fn gate_drive(&self) -> Option<Drive> {
        match self {
            CellClass::Gate { drive, .. } => Some(*drive),
            _ => None,
        }
    }
}

/// One instance in the netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Instance name (unique within the netlist).
    pub name: String,
    /// What the cell is.
    pub class: CellClass,
    /// Hierarchy block index (see [`crate::Netlist::block_name`]); used by
    /// the workload generators to tag functional blocks with distinct
    /// timing criticality.
    pub block: u16,
    /// Nets connected to this cell's input pins, by pin index. A `None`
    /// entry is an unconnected pin (invalid in a validated netlist).
    pub inputs: Vec<Option<NetId>>,
    /// Nets driven by this cell's output pins, by pin index.
    pub outputs: Vec<Option<NetId>>,
    /// `true` if the placer must not move this cell (macros, pre-placed).
    pub fixed: bool,
}

impl Cell {
    /// Number of input pins.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output pins.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Is this a sequential gate (DFF)?
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        self.class.gate_kind().is_some_and(CellKind::is_sequential)
    }

    /// Iterates over connected input nets.
    pub fn input_nets(&self) -> impl Iterator<Item = NetId> + '_ {
        self.inputs.iter().filter_map(|n| *n)
    }

    /// Iterates over driven output nets.
    pub fn output_nets(&self) -> impl Iterator<Item = NetId> + '_ {
        self.outputs.iter().filter_map(|n| *n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_spec_scales_with_bits() {
        let small = MacroSpec::sram(1024);
        let big = MacroSpec::sram(64 * 1024);
        assert!(big.area_um2() > 10.0 * small.area_um2());
        assert!(big.leakage_uw > small.leakage_uw);
        assert!(big.width_um > big.height_um); // wide aspect by construction
    }

    #[test]
    fn class_predicates() {
        let gate = CellClass::Gate {
            kind: CellKind::Dff,
            drive: Drive::X1,
        };
        assert!(gate.is_gate());
        assert!(gate.is_timing_boundary());
        assert!(!gate.is_port());
        assert_eq!(gate.gate_kind(), Some(CellKind::Dff));

        let comb = CellClass::Gate {
            kind: CellKind::Nand2,
            drive: Drive::X2,
        };
        assert!(!comb.is_timing_boundary());

        let port = CellClass::PrimaryInput;
        assert!(port.is_port());
        assert!(port.is_timing_boundary());
        assert_eq!(port.gate_kind(), None);

        let mac = CellClass::Macro(MacroSpec::sram(1024));
        assert!(mac.is_macro());
        assert!(mac.is_timing_boundary());
    }

    #[test]
    fn cell_id_round_trips() {
        let id = CellId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "c42");
    }
}
