//! Flat, index-dense topology view over a [`Netlist`].
//!
//! The canonical netlist storage stays array-of-structs (`Vec<Cell>` /
//! `Vec<Net>`) because construction and ECO passes mutate individual pin
//! slots in place. The hot kernels, however, want structure-of-arrays:
//! one contiguous buffer per attribute, CSR offset arrays instead of
//! per-cell/per-net `Vec`s, and a single string arena instead of millions
//! of small `String` allocations.
//!
//! [`Topology`] is that view: built in one pass over the netlist, it
//! packs
//!
//! - every cell and net name into **one** string arena (`names`) with
//!   offset arrays, so name lookups are slice indexing;
//! - every pin slot into **one** `Vec<u32>` (`pin_net`): a cell's slice
//!   is its input slots followed by its output slots, `u32::MAX` marking
//!   an unconnected pin;
//! - every net's sink list into CSR arrays (`sink_off` / `sink_cell` /
//!   `sink_pin`), mirroring `Net::sinks` order exactly;
//! - per-cell roles and per-net clock flags into dense byte arrays so
//!   kernels stop chasing `CellClass` enums.
//!
//! **Iteration order is part of the repo's determinism contract**: every
//! slice in this view preserves the exact order of the legacy accessors
//! (`Cell::inputs`, `Cell::outputs`, `Net::sinks`), and
//! [`Topology::combinational_order`] reproduces the Kahn order of
//! [`Netlist::combinational_order`] bit for bit. The property suite in
//! `tests/csr_equivalence.rs` holds the two views equal on every
//! generator family.

use crate::cell::{CellClass, CellId};
use crate::net::{NetId, PinRef};
use crate::netlist::{Netlist, ValidateNetlistError};

/// Sentinel for an unconnected pin slot in [`Topology::cell_pins`].
pub const NO_NET: u32 = u32::MAX;

/// Compact per-cell role, precomputed so kernels avoid matching on
/// [`CellClass`] (and touching the `MacroSpec` payload) in inner loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TopoRole {
    /// Combinational standard-cell gate.
    Comb = 0,
    /// Sequential standard-cell gate (DFF).
    Seq = 1,
    /// Hard macro.
    Macro = 2,
    /// Primary input port.
    Pi = 3,
    /// Primary output port.
    Po = 4,
}

impl TopoRole {
    fn of(class: &CellClass) -> TopoRole {
        match class {
            CellClass::Gate { kind, .. } => {
                if kind.is_sequential() {
                    TopoRole::Seq
                } else {
                    TopoRole::Comb
                }
            }
            CellClass::Macro(_) => TopoRole::Macro,
            CellClass::PrimaryInput => TopoRole::Pi,
            CellClass::PrimaryOutput => TopoRole::Po,
        }
    }
}

/// Flat SoA/CSR snapshot of a netlist's connectivity and names.
///
/// Build once with [`Netlist::topology`]; the view borrows nothing, so it
/// can be kept alongside the netlist (the incremental STA does) and
/// rebuilt only on structural change.
#[derive(Debug, Clone)]
pub struct Topology {
    cell_count: usize,
    net_count: usize,

    // ---- string arena ----
    names: String,
    cell_name_off: Vec<u32>, // cell_count + 1
    net_name_off: Vec<u32>,  // net_count + 1

    // ---- cell → pins CSR ----
    pin_off: Vec<u32>,   // cell_count + 1, into `pin_net`
    out_start: Vec<u32>, // cell_count, absolute index of first output slot
    pin_net: Vec<u32>,   // inputs then outputs per cell; NO_NET = unconnected

    // ---- net → pins CSR ----
    sink_off: Vec<u32>, // net_count + 1, into `sink_cell` / `sink_pin`
    sink_cell: Vec<u32>,
    sink_pin: Vec<u8>,
    driver_cell: Vec<u32>, // u32::MAX = undriven
    driver_pin: Vec<u8>,

    // ---- dense attributes ----
    role: Vec<TopoRole>,
    net_clock: Vec<bool>,
}

impl Topology {
    /// Builds the flat view from a netlist in one pass.
    #[must_use]
    pub fn build(netlist: &Netlist) -> Topology {
        let cell_count = netlist.cell_count();
        let net_count = netlist.net_count();

        let mut name_bytes = 0usize;
        let mut pin_total = 0usize;
        let mut sink_total = 0usize;
        for (_, cell) in netlist.cells() {
            name_bytes += cell.name.len();
            pin_total += cell.inputs.len() + cell.outputs.len();
        }
        for (_, net) in netlist.nets() {
            name_bytes += net.name.len();
            sink_total += net.sinks.len();
        }

        let mut names = String::with_capacity(name_bytes);
        let mut cell_name_off = Vec::with_capacity(cell_count + 1);
        let mut pin_off = Vec::with_capacity(cell_count + 1);
        let mut out_start = Vec::with_capacity(cell_count);
        let mut pin_net = Vec::with_capacity(pin_total);
        let mut role = Vec::with_capacity(cell_count);
        cell_name_off.push(0);
        pin_off.push(0);
        let slot = |s: &Option<NetId>| s.map_or(NO_NET, |n| n.index() as u32);
        for (_, cell) in netlist.cells() {
            names.push_str(&cell.name);
            cell_name_off.push(names.len() as u32);
            pin_net.extend(cell.inputs.iter().map(slot));
            out_start.push(pin_net.len() as u32);
            pin_net.extend(cell.outputs.iter().map(slot));
            pin_off.push(pin_net.len() as u32);
            role.push(TopoRole::of(&cell.class));
        }

        let mut net_name_off = Vec::with_capacity(net_count + 1);
        let mut sink_off = Vec::with_capacity(net_count + 1);
        let mut sink_cell = Vec::with_capacity(sink_total);
        let mut sink_pin = Vec::with_capacity(sink_total);
        let mut driver_cell = Vec::with_capacity(net_count);
        let mut driver_pin = Vec::with_capacity(net_count);
        let mut net_clock = Vec::with_capacity(net_count);
        net_name_off.push(names.len() as u32);
        sink_off.push(0);
        for (_, net) in netlist.nets() {
            names.push_str(&net.name);
            net_name_off.push(names.len() as u32);
            for s in &net.sinks {
                sink_cell.push(s.cell.index() as u32);
                sink_pin.push(s.pin);
            }
            sink_off.push(sink_cell.len() as u32);
            match net.driver {
                Some(d) => {
                    driver_cell.push(d.cell.index() as u32);
                    driver_pin.push(d.pin);
                }
                None => {
                    driver_cell.push(u32::MAX);
                    driver_pin.push(0);
                }
            }
            net_clock.push(net.is_clock);
        }

        Topology {
            cell_count,
            net_count,
            names,
            cell_name_off,
            net_name_off,
            pin_off,
            out_start,
            pin_net,
            sink_off,
            sink_cell,
            sink_pin,
            driver_cell,
            driver_pin,
            role,
            net_clock,
        }
    }

    /// Number of cells in the snapshot.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cell_count
    }

    /// Number of nets in the snapshot.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Total number of pin slots (connected or not) across all cells.
    #[must_use]
    pub fn pin_count(&self) -> usize {
        self.pin_net.len()
    }

    /// Interned name of `cell` — equal to `netlist.cell(cell).name`.
    #[must_use]
    pub fn cell_name(&self, cell: CellId) -> &str {
        let i = cell.index();
        &self.names[self.cell_name_off[i] as usize..self.cell_name_off[i + 1] as usize]
    }

    /// Interned name of `net` — equal to `netlist.net(net).name`.
    #[must_use]
    pub fn net_name(&self, net: NetId) -> &str {
        let i = net.index();
        &self.names[self.net_name_off[i] as usize..self.net_name_off[i + 1] as usize]
    }

    /// Total bytes held by the string arena.
    #[must_use]
    pub fn name_arena_bytes(&self) -> usize {
        self.names.len()
    }

    /// Role of `cell`.
    #[must_use]
    pub fn role(&self, cell: CellId) -> TopoRole {
        self.role[cell.index()]
    }

    /// Is `net` the clock net?
    #[must_use]
    pub fn is_clock(&self, net: NetId) -> bool {
        self.net_clock[net.index()]
    }

    /// All pin slots of `cell`: input slots in pin order, then output
    /// slots in pin order. Entries are raw net indices, [`NO_NET`] for an
    /// unconnected pin.
    #[must_use]
    pub fn cell_pins(&self, cell: CellId) -> &[u32] {
        let i = cell.index();
        &self.pin_net[self.pin_off[i] as usize..self.pin_off[i + 1] as usize]
    }

    /// The input pin slots of `cell` — mirrors `Cell::inputs`.
    #[must_use]
    pub fn cell_inputs(&self, cell: CellId) -> &[u32] {
        let i = cell.index();
        &self.pin_net[self.pin_off[i] as usize..self.out_start[i] as usize]
    }

    /// The output pin slots of `cell` — mirrors `Cell::outputs`.
    #[must_use]
    pub fn cell_outputs(&self, cell: CellId) -> &[u32] {
        let i = cell.index();
        &self.pin_net[self.out_start[i] as usize..self.pin_off[i + 1] as usize]
    }

    /// The net on input pin `pin` of `cell`, if connected.
    #[must_use]
    pub fn input_net(&self, cell: CellId, pin: usize) -> Option<NetId> {
        let raw = *self.cell_inputs(cell).get(pin)?;
        (raw != NO_NET).then(|| NetId::from_index(raw as usize))
    }

    /// The driver pin of `net`, if driven — equal to
    /// `netlist.net(net).driver`.
    #[must_use]
    pub fn driver(&self, net: NetId) -> Option<PinRef> {
        let i = net.index();
        let cell = self.driver_cell[i];
        (cell != u32::MAX)
            .then(|| PinRef::new(CellId::from_index(cell as usize), self.driver_pin[i]))
    }

    /// The sink cells of `net`, in `Net::sinks` order.
    #[must_use]
    pub fn sink_cells(&self, net: NetId) -> &[u32] {
        let i = net.index();
        &self.sink_cell[self.sink_off[i] as usize..self.sink_off[i + 1] as usize]
    }

    /// The sink pin indices of `net`, aligned with
    /// [`Topology::sink_cells`].
    #[must_use]
    pub fn sink_pins(&self, net: NetId) -> &[u8] {
        let i = net.index();
        &self.sink_pin[self.sink_off[i] as usize..self.sink_off[i + 1] as usize]
    }

    /// Fanout of `net` (number of sinks).
    #[must_use]
    pub fn fanout(&self, net: NetId) -> usize {
        let i = net.index();
        (self.sink_off[i + 1] - self.sink_off[i]) as usize
    }

    /// Degree of `net` (driver + sinks) — equal to `Net::degree`.
    #[must_use]
    pub fn degree(&self, net: NetId) -> usize {
        usize::from(self.driver_cell[net.index()] != u32::MAX) + self.fanout(net)
    }

    /// Iterates the sinks of `net` as [`PinRef`]s, in `Net::sinks` order.
    pub fn sinks(&self, net: NetId) -> impl Iterator<Item = PinRef> + '_ {
        self.sink_cells(net)
            .iter()
            .zip(self.sink_pins(net))
            .map(|(&c, &p)| PinRef::new(CellId::from_index(c as usize), p))
    }

    /// Topological order of the combinational gates — **the same Kahn
    /// order as [`Netlist::combinational_order`]**, computed over the CSR
    /// arrays: the ready queue is seeded in ascending cell index and
    /// successors are released in output-pin, then sink-list order.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateNetlistError::CombinationalCycle`] if the
    /// combinational logic is cyclic (the culprit is reported by interned
    /// name).
    pub fn combinational_order(&self) -> Result<Vec<CellId>, ValidateNetlistError> {
        let n = self.cell_count;
        let is_comb = |i: usize| self.role[i] == TopoRole::Comb;
        let mut indegree = vec![0u32; n];
        let mut comb_total = 0usize;
        for (i, slot) in indegree.iter_mut().enumerate() {
            if !is_comb(i) {
                continue;
            }
            comb_total += 1;
            let mut deg = 0;
            for &raw in self.cell_inputs(CellId::from_index(i)) {
                if raw == NO_NET {
                    continue;
                }
                let drv = self.driver_cell[raw as usize];
                if drv != u32::MAX && is_comb(drv as usize) {
                    deg += 1;
                }
            }
            *slot = deg;
        }
        let mut queue = std::collections::VecDeque::with_capacity(comb_total);
        queue.extend((0..n).filter(|&i| is_comb(i) && indegree[i] == 0));
        let mut order = Vec::with_capacity(comb_total);
        while let Some(i) = queue.pop_front() {
            order.push(CellId::from_index(i));
            for &raw in self.cell_outputs(CellId::from_index(i)) {
                if raw == NO_NET {
                    continue;
                }
                for &sc in self.sink_cells(NetId::from_index(raw as usize)) {
                    let j = sc as usize;
                    if is_comb(j) {
                        indegree[j] -= 1;
                        if indegree[j] == 0 {
                            queue.push_back(j);
                        }
                    }
                }
            }
        }
        if order.len() != comb_total {
            let culprit = (0..n)
                .find(|&i| is_comb(i) && indegree[i] > 0)
                .map(|i| self.cell_name(CellId::from_index(i)).to_string())
                .unwrap_or_default();
            return Err(ValidateNetlistError::CombinationalCycle(culprit));
        }
        Ok(order)
    }
}

impl Netlist {
    /// Builds the flat SoA/CSR [`Topology`] view of this netlist. O(cells
    /// + nets + pins); rebuild after structural edits.
    #[must_use]
    pub fn topology(&self) -> Topology {
        Topology::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_tech::{CellKind, Drive};

    fn sample() -> Netlist {
        let mut n = Netlist::new("t");
        let clk_in = n.add_input("clk");
        let clk = n.add_net("clk", clk_in, 0);
        n.set_clock(clk);
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate("g1", CellKind::Nand2, Drive::X1, 0);
        let g2 = n.add_gate("g2", CellKind::Inv, Drive::X2, 0);
        let ff = n.add_gate("ff", CellKind::Dff, Drive::X1, 0);
        let y = n.add_output("y");
        let na = n.add_net("na", a, 0);
        let nb = n.add_net("nb", b, 0);
        let n1 = n.add_net("n1", g1, 0);
        let n2 = n.add_net("n2", g2, 0);
        let q = n.add_net("q", ff, 0);
        n.connect(na, g1, 0);
        n.connect(nb, g1, 1);
        n.connect(n1, g2, 0);
        n.connect(n2, ff, 0);
        n.connect(clk, ff, 1);
        n.connect(q, y, 0);
        n
    }

    #[test]
    fn view_mirrors_legacy_accessors() {
        let n = sample();
        let t = n.topology();
        assert_eq!(t.cell_count(), n.cell_count());
        assert_eq!(t.net_count(), n.net_count());
        for id in n.cell_ids() {
            let c = n.cell(id);
            assert_eq!(t.cell_name(id), c.name);
            let ins: Vec<Option<NetId>> = t
                .cell_inputs(id)
                .iter()
                .map(|&r| (r != NO_NET).then(|| NetId::from_index(r as usize)))
                .collect();
            assert_eq!(ins, c.inputs);
            let outs: Vec<Option<NetId>> = t
                .cell_outputs(id)
                .iter()
                .map(|&r| (r != NO_NET).then(|| NetId::from_index(r as usize)))
                .collect();
            assert_eq!(outs, c.outputs);
        }
        for id in n.net_ids() {
            let net = n.net(id);
            assert_eq!(t.net_name(id), net.name);
            assert_eq!(t.driver(id), net.driver);
            let sinks: Vec<PinRef> = t.sinks(id).collect();
            assert_eq!(sinks, net.sinks);
            assert_eq!(t.degree(id), net.degree());
            assert_eq!(t.fanout(id), net.fanout());
            assert_eq!(t.is_clock(id), net.is_clock);
        }
    }

    #[test]
    fn combinational_order_matches_legacy() {
        let n = sample();
        assert_eq!(
            n.topology().combinational_order().unwrap(),
            n.combinational_order().unwrap()
        );
    }

    #[test]
    fn cycle_is_reported_with_interned_name() {
        let mut n = Netlist::new("cyc");
        let g1 = n.add_gate("g1", CellKind::Inv, Drive::X1, 0);
        let g2 = n.add_gate("g2", CellKind::Inv, Drive::X1, 0);
        let n1 = n.add_net("n1", g1, 0);
        let n2 = n.add_net("n2", g2, 0);
        n.connect(n1, g2, 0);
        n.connect(n2, g1, 0);
        let legacy = n.combinational_order().unwrap_err();
        let csr = n.topology().combinational_order().unwrap_err();
        assert_eq!(legacy, csr);
    }

    #[test]
    fn roles_and_arena_are_dense() {
        let n = sample();
        let t = n.topology();
        let names: usize = n.cells().map(|(_, c)| c.name.len()).sum::<usize>()
            + n.nets().map(|(_, net)| net.name.len()).sum::<usize>();
        assert_eq!(t.name_arena_bytes(), names);
        assert_eq!(t.role(CellId::from_index(0)), TopoRole::Pi);
        let ff = n.cells().find(|(_, c)| c.name == "ff").unwrap().0;
        assert_eq!(t.role(ff), TopoRole::Seq);
        let y = n.cells().find(|(_, c)| c.name == "y").unwrap().0;
        assert_eq!(t.role(y), TopoRole::Po);
    }
}
