use crate::cell::CellId;
use std::fmt;

/// Dense handle to a net inside a [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The raw index (valid only within the owning netlist).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index. Only meaningful for indices obtained
    /// from the same netlist.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NetId(index as u32)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A reference to one pin: a cell plus a pin index on that cell.
///
/// For driver pins the index addresses the cell's output pins; for sink
/// pins it addresses the input pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PinRef {
    /// The cell.
    pub cell: CellId,
    /// Pin index within the cell's input or output pin list.
    pub pin: u8,
}

impl PinRef {
    /// Creates a pin reference.
    #[must_use]
    pub fn new(cell: CellId, pin: u8) -> Self {
        PinRef { cell, pin }
    }
}

impl fmt::Display for PinRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.p{}", self.cell, self.pin)
    }
}

/// One net: a single driver pin fanning out to sink pins.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Net name (unique within the netlist).
    pub name: String,
    /// The driving output pin. `None` only during construction.
    pub driver: Option<PinRef>,
    /// Sink input pins.
    pub sinks: Vec<PinRef>,
    /// `true` for the clock net (excluded from signal routing/timing and
    /// handled by CTS).
    pub is_clock: bool,
}

impl Net {
    /// Creates an undriven net.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Net {
            name: name.into(),
            driver: None,
            sinks: Vec::new(),
            is_clock: false,
        }
    }

    /// Number of pins (driver + sinks).
    #[must_use]
    pub fn degree(&self) -> usize {
        usize::from(self.driver.is_some()) + self.sinks.len()
    }

    /// Fanout (number of sinks).
    #[must_use]
    pub fn fanout(&self) -> usize {
        self.sinks.len()
    }

    /// Iterates over all cells on the net (driver first, then sinks; a
    /// cell may appear multiple times if it has several pins on the net).
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        self.driver
            .iter()
            .map(|p| p.cell)
            .chain(self.sinks.iter().map(|p| p.cell))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_counts_driver_and_sinks() {
        let mut net = Net::new("n");
        assert_eq!(net.degree(), 0);
        net.driver = Some(PinRef::new(CellId(0), 0));
        net.sinks.push(PinRef::new(CellId(1), 0));
        net.sinks.push(PinRef::new(CellId(2), 1));
        assert_eq!(net.degree(), 3);
        assert_eq!(net.fanout(), 2);
        let cells: Vec<_> = net.cells().collect();
        assert_eq!(cells, vec![CellId(0), CellId(1), CellId(2)]);
    }

    #[test]
    fn net_id_round_trips() {
        let id = NetId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "n7");
    }

    #[test]
    fn pin_ref_display() {
        let p = PinRef::new(CellId(3), 2);
        assert_eq!(p.to_string(), "c3.p2");
    }
}
