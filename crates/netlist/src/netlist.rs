use crate::cell::{Cell, CellClass, CellId, MacroSpec};
use crate::net::{Net, NetId, PinRef};
use crate::stats::NetlistStats;
use m3d_tech::{CellKind, Drive};
use std::collections::VecDeque;
use std::fmt;

/// Error returned by [`Netlist::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateNetlistError {
    /// A net has no driver pin.
    UndrivenNet(String),
    /// A gate input pin is unconnected.
    UnconnectedPin(String, u8),
    /// The combinational logic contains a cycle through the named cell.
    CombinationalCycle(String),
    /// A sequential cell is not connected to the clock net.
    UnclockedRegister(String),
}

impl fmt::Display for ValidateNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateNetlistError::UndrivenNet(n) => write!(f, "net `{n}` has no driver"),
            ValidateNetlistError::UnconnectedPin(c, p) => {
                write!(f, "cell `{c}` input pin {p} is unconnected")
            }
            ValidateNetlistError::CombinationalCycle(c) => {
                write!(f, "combinational cycle through cell `{c}`")
            }
            ValidateNetlistError::UnclockedRegister(c) => {
                write!(f, "sequential cell `{c}` has no clock connection")
            }
        }
    }
}

impl std::error::Error for ValidateNetlistError {}

/// Error returned by [`Netlist::from_parts`]: the supplied pieces do not
/// form a structurally consistent netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistPartsError {
    /// The block table is empty (a netlist always has at least `"top"`).
    NoBlocks,
    /// A cell references a block tag outside the block table.
    BlockOutOfRange {
        /// Offending cell index.
        cell: usize,
        /// The out-of-range tag.
        block: u16,
    },
    /// A cell pin references a net index outside the net table.
    NetOutOfRange {
        /// Offending cell index.
        cell: usize,
    },
    /// A net's driver or sink references a cell index outside the cell
    /// table, or a pin index outside that cell's pin list.
    PinOutOfRange {
        /// Offending net index.
        net: usize,
    },
    /// A net's driver and the driving cell's output slot disagree.
    DriverMismatch {
        /// Offending net index.
        net: usize,
    },
    /// A net's sink list and the sink cells' input slots disagree.
    SinkMismatch {
        /// Offending net index.
        net: usize,
    },
    /// The clock net index is out of range or its `is_clock` flag does not
    /// match the netlist's clock designation.
    ClockMismatch,
}

impl fmt::Display for NetlistPartsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistPartsError::NoBlocks => write!(f, "block table is empty"),
            NetlistPartsError::BlockOutOfRange { cell, block } => {
                write!(f, "cell {cell} references unknown block {block}")
            }
            NetlistPartsError::NetOutOfRange { cell } => {
                write!(f, "cell {cell} references an out-of-range net")
            }
            NetlistPartsError::PinOutOfRange { net } => {
                write!(f, "net {net} references an out-of-range cell or pin")
            }
            NetlistPartsError::DriverMismatch { net } => {
                write!(f, "net {net} driver does not mirror the cell's output slot")
            }
            NetlistPartsError::SinkMismatch { net } => {
                write!(
                    f,
                    "net {net} sink list does not mirror the cells' input slots"
                )
            }
            NetlistPartsError::ClockMismatch => {
                write!(f, "clock designation is out of range or inconsistent")
            }
        }
    }
}

impl std::error::Error for NetlistPartsError {}

/// A gate-level netlist: cells, nets, hierarchy blocks and a clock.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Netlist {
    /// Design name.
    pub name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    blocks: Vec<String>,
    clock: Option<NetId>,
}

impl Netlist {
    /// Creates an empty netlist with a default hierarchy block `"top"`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            cells: Vec::new(),
            nets: Vec::new(),
            blocks: vec!["top".to_string()],
            clock: None,
        }
    }

    // ---- construction -------------------------------------------------

    /// Registers a hierarchy block and returns its tag.
    pub fn add_block(&mut self, name: impl Into<String>) -> u16 {
        self.blocks.push(name.into());
        (self.blocks.len() - 1) as u16
    }

    /// Name of block `tag`.
    ///
    /// # Panics
    ///
    /// Panics if the tag is unknown.
    #[must_use]
    pub fn block_name(&self, tag: u16) -> &str {
        &self.blocks[tag as usize]
    }

    /// Number of hierarchy blocks (including the default `"top"`).
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Adds a standard-cell gate. Sequential gates get one extra input pin
    /// for the clock (always the last pin).
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
        drive: Drive,
        block: u16,
    ) -> CellId {
        let n_in = kind.input_count() + usize::from(kind.is_sequential());
        self.push_cell(Cell {
            name: name.into(),
            class: CellClass::Gate { kind, drive },
            block,
            inputs: vec![None; n_in],
            outputs: vec![None; 1],
            fixed: false,
        })
    }

    /// Adds a hard macro with `n_inputs` data inputs, `n_outputs` outputs,
    /// plus a trailing clock pin. Macros are fixed (not moved by placement).
    pub fn add_macro(
        &mut self,
        name: impl Into<String>,
        spec: MacroSpec,
        n_inputs: usize,
        n_outputs: usize,
        block: u16,
    ) -> CellId {
        self.push_cell(Cell {
            name: name.into(),
            class: CellClass::Macro(spec),
            block,
            inputs: vec![None; n_inputs + 1],
            outputs: vec![None; n_outputs],
            fixed: true,
        })
    }

    /// Adds a primary input port (one output pin, no inputs).
    pub fn add_input(&mut self, name: impl Into<String>) -> CellId {
        self.push_cell(Cell {
            name: name.into(),
            class: CellClass::PrimaryInput,
            block: 0,
            inputs: Vec::new(),
            outputs: vec![None; 1],
            fixed: false,
        })
    }

    /// Adds a primary output port (one input pin, no outputs).
    pub fn add_output(&mut self, name: impl Into<String>) -> CellId {
        self.push_cell(Cell {
            name: name.into(),
            class: CellClass::PrimaryOutput,
            block: 0,
            inputs: vec![None; 1],
            outputs: Vec::new(),
            fixed: false,
        })
    }

    fn push_cell(&mut self, cell: Cell) -> CellId {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(cell);
        id
    }

    /// Reassembles a netlist from raw tables — the deserialization entry
    /// point (persistent stores, wire decoders). Every cross-reference is
    /// checked before the netlist is built, so untrusted tables cannot
    /// construct a netlist whose accessors would panic: block tags and
    /// net/cell/pin indices must be in range, net driver/sink lists must
    /// exactly mirror the cells' pin slots, and the clock designation must
    /// be consistent with the nets' `is_clock` flags.
    ///
    /// This checks *referential* integrity only; semantic invariants
    /// (drivers present, pins connected, acyclic logic) remain the job of
    /// [`Netlist::validate`], exactly as for an incrementally built
    /// netlist.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistPartsError`] violation found.
    pub fn from_parts(
        name: impl Into<String>,
        blocks: Vec<String>,
        cells: Vec<Cell>,
        nets: Vec<Net>,
        clock: Option<NetId>,
    ) -> Result<Self, NetlistPartsError> {
        if blocks.is_empty() {
            return Err(NetlistPartsError::NoBlocks);
        }
        let n_cells = cells.len();
        let n_nets = nets.len();
        for (i, cell) in cells.iter().enumerate() {
            if cell.block as usize >= blocks.len() {
                return Err(NetlistPartsError::BlockOutOfRange {
                    cell: i,
                    block: cell.block,
                });
            }
            let in_range = |slot: &Option<NetId>| slot.is_none_or(|n| n.index() < n_nets);
            if !cell.inputs.iter().all(in_range) || !cell.outputs.iter().all(in_range) {
                return Err(NetlistPartsError::NetOutOfRange { cell: i });
            }
        }
        for (i, net) in nets.iter().enumerate() {
            let id = NetId(i as u32);
            if let Some(drv) = net.driver {
                let ok = drv.cell.index() < n_cells
                    && (drv.pin as usize) < cells[drv.cell.index()].outputs.len();
                if !ok {
                    return Err(NetlistPartsError::PinOutOfRange { net: i });
                }
                if cells[drv.cell.index()].outputs[drv.pin as usize] != Some(id) {
                    return Err(NetlistPartsError::DriverMismatch { net: i });
                }
            }
            for sink in &net.sinks {
                let ok = sink.cell.index() < n_cells
                    && (sink.pin as usize) < cells[sink.cell.index()].inputs.len();
                if !ok {
                    return Err(NetlistPartsError::PinOutOfRange { net: i });
                }
                if cells[sink.cell.index()].inputs[sink.pin as usize] != Some(id) {
                    return Err(NetlistPartsError::SinkMismatch { net: i });
                }
            }
        }
        // Mirror direction two: every populated pin slot must appear in
        // its net's driver/sink records (counting handles duplicates).
        let mut input_refs = vec![0usize; n_nets];
        let mut output_refs = vec![0usize; n_nets];
        for cell in &cells {
            for net in cell.inputs.iter().flatten() {
                input_refs[net.index()] += 1;
            }
            for net in cell.outputs.iter().flatten() {
                output_refs[net.index()] += 1;
            }
        }
        for (i, net) in nets.iter().enumerate() {
            if output_refs[i] != usize::from(net.driver.is_some()) {
                return Err(NetlistPartsError::DriverMismatch { net: i });
            }
            if input_refs[i] != net.sinks.len() {
                return Err(NetlistPartsError::SinkMismatch { net: i });
            }
        }
        match clock {
            Some(c) if c.index() >= n_nets || !nets[c.index()].is_clock => {
                return Err(NetlistPartsError::ClockMismatch);
            }
            _ => {}
        }
        if nets
            .iter()
            .enumerate()
            .any(|(i, n)| n.is_clock && clock != Some(NetId(i as u32)))
        {
            return Err(NetlistPartsError::ClockMismatch);
        }
        Ok(Netlist {
            name: name.into(),
            cells,
            nets,
            blocks,
            clock,
        })
    }

    /// Creates a net driven by output pin `pin` of `driver`.
    ///
    /// # Panics
    ///
    /// Panics if the pin index is out of range or already drives a net.
    pub fn add_net(&mut self, name: impl Into<String>, driver: CellId, pin: u8) -> NetId {
        let id = NetId(self.nets.len() as u32);
        let mut net = Net::new(name);
        net.driver = Some(PinRef::new(driver, pin));
        let slot = &mut self.cells[driver.index()].outputs[pin as usize];
        assert!(slot.is_none(), "output pin already drives a net");
        *slot = Some(id);
        self.nets.push(net);
        id
    }

    /// Connects input pin `pin` of `sink` to `net`.
    ///
    /// # Panics
    ///
    /// Panics if the pin index is out of range or already connected.
    pub fn connect(&mut self, net: NetId, sink: CellId, pin: u8) {
        let slot = &mut self.cells[sink.index()].inputs[pin as usize];
        assert!(slot.is_none(), "input pin already connected");
        *slot = Some(net);
        self.nets[net.index()].sinks.push(PinRef::new(sink, pin));
    }

    /// Marks `net` as the clock net.
    pub fn set_clock(&mut self, net: NetId) {
        if let Some(old) = self.clock {
            self.nets[old.index()].is_clock = false;
        }
        self.nets[net.index()].is_clock = true;
        self.clock = Some(net);
    }

    /// The clock net, if defined.
    #[must_use]
    pub fn clock(&self) -> Option<NetId> {
        self.clock
    }

    /// Changes the drive strength of a gate (cell sizing).
    ///
    /// # Panics
    ///
    /// Panics if the cell is not a gate.
    pub fn set_drive(&mut self, cell: CellId, drive: Drive) {
        match &mut self.cells[cell.index()].class {
            CellClass::Gate { drive: d, .. } => *d = drive,
            _ => panic!("set_drive on a non-gate cell"),
        }
    }

    // ---- access --------------------------------------------------------

    /// The cell behind `id`.
    #[must_use]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Mutable access to a cell.
    pub fn cell_mut(&mut self, id: CellId) -> &mut Cell {
        &mut self.cells[id.index()]
    }

    /// The net behind `id`.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Mutable access to a net.
    pub fn net_mut(&mut self, id: NetId) -> &mut Net {
        &mut self.nets[id.index()]
    }

    /// Number of cells (gates + macros + ports).
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of standard-cell gates.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.cells.iter().filter(|c| c.class.is_gate()).count()
    }

    /// Number of hard macros.
    #[must_use]
    pub fn macro_count(&self) -> usize {
        self.cells.iter().filter(|c| c.class.is_macro()).count()
    }

    /// Iterates over all cell ids.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> {
        (0..self.cells.len() as u32).map(CellId)
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> {
        (0..self.nets.len() as u32).map(NetId)
    }

    /// Iterates over `(CellId, &Cell)` pairs.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// Iterates over `(NetId, &Net)` pairs.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n))
    }

    /// Ids of all sequential cells (DFFs and macros).
    #[must_use]
    pub fn sequential_cells(&self) -> Vec<CellId> {
        self.cells()
            .filter(|(_, c)| c.is_sequential() || c.class.is_macro())
            .map(|(id, _)| id)
            .collect()
    }

    /// Is `pin` the clock pin of `cell` (the trailing input of a
    /// sequential gate or macro)?
    #[must_use]
    pub fn is_clock_pin(&self, cell: CellId, pin: u8) -> bool {
        let c = self.cell(cell);
        let clocked = c.is_sequential() || c.class.is_macro();
        clocked && pin as usize == c.inputs.len() - 1
    }

    /// Computes summary statistics.
    #[must_use]
    pub fn stats(&self) -> NetlistStats {
        NetlistStats::compute(self)
    }

    // ---- validation & ordering ------------------------------------------

    /// Checks structural invariants: every net driven, every input pin
    /// connected, registers clocked (when a clock net exists), and no
    /// combinational cycles.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ValidateNetlistError> {
        for net in &self.nets {
            if net.driver.is_none() {
                return Err(ValidateNetlistError::UndrivenNet(net.name.clone()));
            }
        }
        for cell in &self.cells {
            for (pin, slot) in cell.inputs.iter().enumerate() {
                if slot.is_none() {
                    return Err(ValidateNetlistError::UnconnectedPin(
                        cell.name.clone(),
                        pin as u8,
                    ));
                }
            }
        }
        if self.clock.is_some() {
            for (id, cell) in self.cells() {
                if cell.is_sequential() {
                    let clk_pin = cell.inputs.len() - 1;
                    let net = cell.inputs[clk_pin];
                    let clocked = net.is_some_and(|n| self.net(n).is_clock) || {
                        // Clock may arrive through a clock-buffer tree.
                        net.is_some_and(|n| self.net_in_clock_tree(n))
                    };
                    if !clocked {
                        return Err(ValidateNetlistError::UnclockedRegister(
                            self.cell(id).name.clone(),
                        ));
                    }
                }
            }
        }
        self.combinational_order().map(|_| ())
    }

    /// Walks driver chains of clock buffers/inverters back to the clock net.
    fn net_in_clock_tree(&self, mut net: NetId) -> bool {
        for _ in 0..64 {
            if self.net(net).is_clock {
                return true;
            }
            let Some(drv) = self.net(net).driver else {
                return false;
            };
            let cell = self.cell(drv.cell);
            match cell.class.gate_kind() {
                Some(k) if k.is_clock_cell() => match cell.inputs.first().copied().flatten() {
                    Some(up) => net = up,
                    None => return false,
                },
                _ => return false,
            }
        }
        false
    }

    /// Topological order of the *combinational* gates (Kahn's algorithm).
    /// Sequential cells, macros and ports act as sources/sinks and are not
    /// included in the returned order.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateNetlistError::CombinationalCycle`] if the
    /// combinational logic is cyclic.
    pub fn combinational_order(&self) -> Result<Vec<CellId>, ValidateNetlistError> {
        let n = self.cells.len();
        let is_comb = |c: &Cell| c.class.is_gate() && !c.is_sequential();
        let mut indegree = vec![0u32; n];
        for cell in &self.cells {
            if !is_comb(cell) {
                continue;
            }
        }
        // Count combinational predecessors for each combinational gate.
        for (i, cell) in self.cells.iter().enumerate() {
            if !is_comb(cell) {
                continue;
            }
            let mut deg = 0;
            for net in cell.input_nets() {
                if let Some(drv) = self.net(net).driver {
                    if is_comb(self.cell(drv.cell)) {
                        deg += 1;
                    }
                }
            }
            indegree[i] = deg;
        }
        let mut queue: VecDeque<usize> = (0..n)
            .filter(|&i| is_comb(&self.cells[i]) && indegree[i] == 0)
            .collect();
        let mut order = Vec::new();
        while let Some(i) = queue.pop_front() {
            order.push(CellId(i as u32));
            for net in self.cells[i].output_nets() {
                for sink in &self.net(net).sinks {
                    let j = sink.cell.index();
                    if is_comb(&self.cells[j]) {
                        indegree[j] -= 1;
                        if indegree[j] == 0 {
                            queue.push_back(j);
                        }
                    }
                }
            }
        }
        let comb_total = self.cells.iter().filter(|c| is_comb(c)).count();
        if order.len() != comb_total {
            // Find a cell still carrying indegree for the error message.
            let culprit = (0..n)
                .find(|&i| is_comb(&self.cells[i]) && indegree[i] > 0)
                .map(|i| self.cells[i].name.clone())
                .unwrap_or_default();
            return Err(ValidateNetlistError::CombinationalCycle(culprit));
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// inv chain: in -> INV -> INV -> out
    fn chain() -> Netlist {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let g1 = n.add_gate("g1", CellKind::Inv, Drive::X1, 0);
        let g2 = n.add_gate("g2", CellKind::Inv, Drive::X1, 0);
        let y = n.add_output("y");
        let na = n.add_net("na", a, 0);
        let n1 = n.add_net("n1", g1, 0);
        let n2 = n.add_net("n2", g2, 0);
        n.connect(na, g1, 0);
        n.connect(n1, g2, 0);
        n.connect(n2, y, 0);
        n
    }

    #[test]
    fn chain_is_valid_and_ordered() {
        let n = chain();
        assert!(n.validate().is_ok());
        let order = n.combinational_order().unwrap();
        assert_eq!(order.len(), 2);
        // g1 must precede g2.
        assert!(n.cell(order[0]).name == "g1");
    }

    #[test]
    fn unconnected_pin_is_detected() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        let g = n.add_gate("g", CellKind::Nand2, Drive::X1, 0);
        let na = n.add_net("na", a, 0);
        n.connect(na, g, 0);
        // pin 1 left dangling
        let _ny = n.add_net("ny", g, 0);
        assert!(matches!(
            n.validate(),
            Err(ValidateNetlistError::UnconnectedPin(_, 1))
        ));
    }

    #[test]
    fn combinational_cycle_is_detected() {
        let mut n = Netlist::new("cyc");
        let g1 = n.add_gate("g1", CellKind::Inv, Drive::X1, 0);
        let g2 = n.add_gate("g2", CellKind::Inv, Drive::X1, 0);
        let n1 = n.add_net("n1", g1, 0);
        let n2 = n.add_net("n2", g2, 0);
        n.connect(n1, g2, 0);
        n.connect(n2, g1, 0);
        assert!(matches!(
            n.validate(),
            Err(ValidateNetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn register_breaks_cycles() {
        let mut n = Netlist::new("loop");
        let clk_in = n.add_input("clk");
        let ff = n.add_gate("ff", CellKind::Dff, Drive::X1, 0);
        let g = n.add_gate("g", CellKind::Inv, Drive::X1, 0);
        let clk = n.add_net("clk", clk_in, 0);
        n.set_clock(clk);
        let q = n.add_net("q", ff, 0);
        let d = n.add_net("d", g, 0);
        n.connect(q, g, 0);
        n.connect(d, ff, 0); // data
        n.connect(clk, ff, 1); // clock pin
        assert!(n.validate().is_ok());
    }

    #[test]
    fn unclocked_register_is_detected() {
        let mut n = Netlist::new("noclk");
        let a = n.add_input("a");
        let b = n.add_input("b"); // pretend data used as clock
        let ff = n.add_gate("ff", CellKind::Dff, Drive::X1, 0);
        let na = n.add_net("na", a, 0);
        let nb = n.add_net("nb", b, 0);
        let clk_src = n.add_input("clk");
        let clk = n.add_net("clk", clk_src, 0);
        n.set_clock(clk);
        n.connect(na, ff, 0);
        n.connect(nb, ff, 1); // wrong net on the clock pin
        let _q = n.add_net("q", ff, 0);
        assert!(matches!(
            n.validate(),
            Err(ValidateNetlistError::UnclockedRegister(_))
        ));
    }

    #[test]
    fn clock_through_buffer_is_accepted() {
        let mut n = Netlist::new("buffered");
        let clk_in = n.add_input("clk");
        let clk = n.add_net("clk", clk_in, 0);
        n.set_clock(clk);
        let buf = n.add_gate("cb", CellKind::ClkBuf, Drive::X4, 0);
        n.connect(clk, buf, 0);
        let clk_b = n.add_net("clk_b", buf, 0);
        let ff = n.add_gate("ff", CellKind::Dff, Drive::X1, 0);
        let d_src = n.add_input("d");
        let d = n.add_net("d", d_src, 0);
        n.connect(d, ff, 0);
        n.connect(clk_b, ff, 1);
        let _q = n.add_net("q", ff, 0);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn counts_and_iterators() {
        let n = chain();
        assert_eq!(n.cell_count(), 4);
        assert_eq!(n.gate_count(), 2);
        assert_eq!(n.macro_count(), 0);
        assert_eq!(n.net_count(), 3);
        assert_eq!(n.cell_ids().count(), 4);
        assert_eq!(n.nets().count(), 3);
    }

    #[test]
    fn set_drive_changes_gate() {
        let mut n = chain();
        let g1 = n.cells().find(|(_, c)| c.name == "g1").unwrap().0;
        n.set_drive(g1, Drive::X8);
        assert_eq!(n.cell(g1).class.gate_drive(), Some(Drive::X8));
    }

    /// Tears a netlist into the raw tables `from_parts` accepts.
    fn into_parts(n: &Netlist) -> (Vec<String>, Vec<Cell>, Vec<Net>, Option<NetId>) {
        (
            (0..n.block_count() as u16)
                .map(|t| n.block_name(t).to_string())
                .collect(),
            n.cells().map(|(_, c)| c.clone()).collect(),
            n.nets().map(|(_, net)| net.clone()).collect(),
            n.clock(),
        )
    }

    #[test]
    fn from_parts_round_trips_a_built_netlist() {
        let n = chain();
        let (blocks, cells, nets, clock) = into_parts(&n);
        let rebuilt = Netlist::from_parts(n.name.clone(), blocks, cells, nets, clock).unwrap();
        assert_eq!(rebuilt.cell_count(), n.cell_count());
        assert_eq!(rebuilt.net_count(), n.net_count());
        assert!(rebuilt.validate().is_ok());
        for id in n.cell_ids() {
            assert_eq!(rebuilt.cell(id), n.cell(id));
        }
    }

    #[test]
    fn from_parts_rejects_inconsistent_tables() {
        let n = chain();
        let (blocks, cells, nets, clock) = into_parts(&n);

        // Empty block table.
        assert!(matches!(
            Netlist::from_parts("x", Vec::new(), cells.clone(), nets.clone(), clock),
            Err(NetlistPartsError::NoBlocks)
        ));
        // Out-of-range block tag.
        let mut bad = cells.clone();
        bad[0].block = 7;
        assert!(matches!(
            Netlist::from_parts("x", blocks.clone(), bad, nets.clone(), clock),
            Err(NetlistPartsError::BlockOutOfRange { cell: 0, block: 7 })
        ));
        // Out-of-range net index in a pin slot.
        let mut bad = cells.clone();
        bad[1].inputs[0] = Some(NetId(99));
        assert!(matches!(
            Netlist::from_parts("x", blocks.clone(), bad, nets.clone(), clock),
            Err(NetlistPartsError::NetOutOfRange { cell: 1 })
        ));
        // Driver pointing at a non-existent cell.
        let mut bad = nets.clone();
        bad[0].driver = Some(PinRef::new(CellId(42), 0));
        assert!(matches!(
            Netlist::from_parts("x", blocks.clone(), cells.clone(), bad, clock),
            Err(NetlistPartsError::PinOutOfRange { net: 0 })
        ));
        // Sink list that the cells' input slots do not mirror.
        let mut bad = nets.clone();
        bad[0].sinks.clear();
        assert!(matches!(
            Netlist::from_parts("x", blocks.clone(), cells.clone(), bad, clock),
            Err(NetlistPartsError::SinkMismatch { net: 0 })
        ));
        // Clock designating a net whose flag disagrees.
        assert!(matches!(
            Netlist::from_parts("x", blocks, cells, nets, Some(NetId(0))),
            Err(NetlistPartsError::ClockMismatch)
        ));
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let mut n = Netlist::new("dup");
        let a = n.add_input("a");
        let g = n.add_gate("g", CellKind::Inv, Drive::X1, 0);
        let na = n.add_net("na", a, 0);
        n.connect(na, g, 0);
        n.connect(na, g, 0);
    }
}
