use crate::netlist::Netlist;
use std::collections::BTreeMap;
use std::fmt;

/// Summary statistics of a netlist: composition, connectivity and fanout.
///
/// # Examples
///
/// ```
/// use m3d_netlist::Netlist;
/// use m3d_tech::{CellKind, Drive};
///
/// let mut n = Netlist::new("tiny");
/// let a = n.add_input("a");
/// let g = n.add_gate("g", CellKind::Buf, Drive::X1, 0);
/// let na = n.add_net("na", a, 0);
/// n.connect(na, g, 0);
/// let _ = n.add_net("ny", g, 0);
/// let stats = n.stats();
/// assert_eq!(stats.gates, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Standard-cell gate instances.
    pub gates: usize,
    /// Sequential gate instances (DFFs).
    pub registers: usize,
    /// Hard macros.
    pub macros: usize,
    /// Primary inputs.
    pub primary_inputs: usize,
    /// Primary outputs.
    pub primary_outputs: usize,
    /// Signal nets (clock excluded).
    pub signal_nets: usize,
    /// Total pins across all nets.
    pub pins: usize,
    /// Average signal-net fanout.
    pub avg_fanout: f64,
    /// Maximum signal-net fanout.
    pub max_fanout: usize,
    /// Gate count per kind name.
    pub kind_histogram: BTreeMap<String, usize>,
}

impl NetlistStats {
    /// Computes statistics for `netlist`.
    #[must_use]
    pub fn compute(netlist: &Netlist) -> Self {
        let mut gates = 0;
        let mut registers = 0;
        let mut macros = 0;
        let mut primary_inputs = 0;
        let mut primary_outputs = 0;
        let mut kind_histogram = BTreeMap::new();
        for (_, cell) in netlist.cells() {
            match &cell.class {
                crate::cell::CellClass::Gate { kind, .. } => {
                    gates += 1;
                    if kind.is_sequential() {
                        registers += 1;
                    }
                    *kind_histogram.entry(kind.to_string()).or_insert(0) += 1;
                }
                crate::cell::CellClass::Macro(_) => macros += 1,
                crate::cell::CellClass::PrimaryInput => primary_inputs += 1,
                crate::cell::CellClass::PrimaryOutput => primary_outputs += 1,
            }
        }
        let mut signal_nets = 0;
        let mut pins = 0;
        let mut fanout_sum = 0usize;
        let mut max_fanout = 0;
        for (_, net) in netlist.nets() {
            pins += net.degree();
            if net.is_clock {
                continue;
            }
            signal_nets += 1;
            fanout_sum += net.fanout();
            max_fanout = max_fanout.max(net.fanout());
        }
        NetlistStats {
            gates,
            registers,
            macros,
            primary_inputs,
            primary_outputs,
            signal_nets,
            pins,
            avg_fanout: if signal_nets > 0 {
                fanout_sum as f64 / signal_nets as f64
            } else {
                0.0
            },
            max_fanout,
            kind_histogram,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "gates: {} (registers: {}), macros: {}, io: {}+{}",
            self.gates, self.registers, self.macros, self.primary_inputs, self.primary_outputs
        )?;
        write!(
            f,
            "nets: {}, pins: {}, fanout avg {:.2} max {}",
            self.signal_nets, self.pins, self.avg_fanout, self.max_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_tech::{CellKind, Drive};

    #[test]
    fn stats_on_small_design() {
        let mut n = Netlist::new("s");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate("g", CellKind::Nand2, Drive::X1, 0);
        let y = n.add_output("y");
        let na = n.add_net("na", a, 0);
        let nb = n.add_net("nb", b, 0);
        let ny = n.add_net("ny", g, 0);
        n.connect(na, g, 0);
        n.connect(nb, g, 1);
        n.connect(ny, y, 0);

        let s = n.stats();
        assert_eq!(s.gates, 1);
        assert_eq!(s.registers, 0);
        assert_eq!(s.primary_inputs, 2);
        assert_eq!(s.primary_outputs, 1);
        assert_eq!(s.signal_nets, 3);
        assert_eq!(s.pins, 6);
        assert_eq!(s.max_fanout, 1);
        assert_eq!(s.kind_histogram.get("NAND2"), Some(&1));
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn clock_net_is_excluded_from_fanout() {
        let mut n = Netlist::new("clk");
        let c = n.add_input("clk");
        let clk = n.add_net("clk", c, 0);
        n.set_clock(clk);
        let d = n.add_input("d");
        let nd = n.add_net("nd", d, 0);
        for i in 0..4 {
            let ff = n.add_gate(format!("ff{i}"), CellKind::Dff, Drive::X1, 0);
            n.connect(nd, ff, 0);
            n.connect(clk, ff, 1);
            let _ = n.add_net(format!("q{i}"), ff, 0);
        }
        let s = n.stats();
        // nd has fanout 4; the clock net (also fanout 4) is excluded.
        assert_eq!(s.max_fanout, 4);
        assert_eq!(s.registers, 4);
        assert_eq!(s.signal_nets, 1 + 4); // nd + four q nets
    }
}
