use crate::config::Config;
use crate::flow::Implementation;
use m3d_cost::{pdp_pj, ppc, CostModel};
use m3d_power::PowerResult;

/// The paper's full PPAC metric set for one implementation (the rows of
/// Table VI).
#[derive(Debug, Clone, PartialEq)]
pub struct Ppac {
    /// Configuration the metrics belong to.
    pub config: Config,
    /// Achieved/target clock frequency, GHz.
    pub frequency_ghz: f64,
    /// Die footprint, mm².
    pub footprint_mm2: f64,
    /// Total silicon area (2× footprint for 3-D), mm².
    pub si_area_mm2: f64,
    /// Chip width, µm.
    pub chip_width_um: f64,
    /// Standard-cell density, %.
    pub density_pct: f64,
    /// Total signal wirelength, mm.
    pub wirelength_mm: f64,
    /// Monolithic inter-tier via count.
    pub mivs: usize,
    /// Power breakdown.
    pub power: PowerResult,
    /// Total power, mW.
    pub total_power_mw: f64,
    /// Worst negative slack, ns.
    pub wns_ns: f64,
    /// Total negative slack, ns.
    pub tns_ns: f64,
    /// Effective delay = period − WNS, ns.
    pub effective_delay_ns: f64,
    /// Power-delay product, pJ.
    pub pdp_pj: f64,
    /// Die cost in units of `10⁻⁶ C'`.
    pub die_cost_uc: f64,
    /// Cost per cm² of silicon, `10⁻⁶ C'/cm²`.
    pub cost_per_cm2_uc: f64,
    /// Performance per cost, `GHz / (mW × 10⁻⁶ C')`.
    pub ppc: f64,
}

impl Ppac {
    /// Derives the metric set from a finished implementation.
    ///
    /// Area/cost metrics are computed from a *report floorplan* rebuilt
    /// over the final (post-sizing) netlist, so every configuration is
    /// measured on the same basis regardless of how much the optimizer
    /// grew it.
    #[must_use]
    pub fn from_implementation(imp: &Implementation, cost: &CostModel) -> Self {
        let is_3d = imp.config.is_3d();
        let report_fp =
            m3d_place::Floorplan::new(&imp.netlist, &imp.stack, &imp.tiers, imp.utilization);
        let footprint_mm2 = report_fp.die.area() * 1e-6;
        let si_area_mm2 = report_fp.silicon_area_um2(is_3d) * 1e-6;
        let total_power_mw = imp.power.total_mw();
        let effective_delay_ns = imp.sta.effective_delay_ns();
        // An F2F hybrid-bonded stack swaps the monolithic wafer premium
        // for a per-bond cost on every inter-tier connection; a 2-D
        // implementation has no bonded stack, so it always prices as
        // plain 2-D regardless of the scenario's stacking style.
        let die_cost = if is_3d && imp.tech.stacking.is_bonded() {
            cost.die_cost_f2f(footprint_mm2.max(1e-6), imp.routing.total_mivs)
        } else {
            cost.die_cost(footprint_mm2.max(1e-6), is_3d)
        };
        let die_cost_uc = die_cost * 1e6;
        Ppac {
            config: imp.config,
            frequency_ghz: imp.frequency_ghz,
            footprint_mm2,
            si_area_mm2,
            chip_width_um: report_fp.width_um(),
            density_pct: report_fp.overall_density(is_3d) * 100.0,
            wirelength_mm: imp.routing.total_wirelength_mm() + imp.clock_tree.wirelength_um * 1e-3,
            mivs: imp.routing.total_mivs,
            power: *imp.power,
            total_power_mw,
            wns_ns: imp.sta.wns,
            tns_ns: imp.sta.tns,
            effective_delay_ns,
            pdp_pj: pdp_pj(total_power_mw, effective_delay_ns),
            die_cost_uc,
            cost_per_cm2_uc: die_cost / (si_area_mm2.max(1e-6) * 1e-2) * 1e6,
            // PPC uses the *achieved* frequency (1/effective delay):
            // configurations that miss timing do not get credit for the
            // target they failed to reach.
            ppc: ppc(
                1.0 / effective_delay_ns.max(1e-9),
                total_power_mw,
                die_cost_uc,
            ),
        }
    }
}

/// One column of Table VII: percent deltas of the heterogeneous design
/// relative to a homogeneous configuration
/// (`(hetero − config) / config × 100`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaRow {
    /// The homogeneous configuration compared against.
    pub config: Config,
    /// Silicon-area delta, %.
    pub si_area: f64,
    /// Density delta, %.
    pub density: f64,
    /// Wirelength delta, %.
    pub wirelength: f64,
    /// Total-power delta, %.
    pub total_power: f64,
    /// Effective-delay delta, %.
    pub effective_delay: f64,
    /// PDP delta, %.
    pub pdp: f64,
    /// Die-cost delta, %.
    pub die_cost: f64,
    /// Cost-per-cm² delta, %.
    pub cost_per_cm2: f64,
    /// PPC delta, % (positive = heterogeneous wins).
    pub ppc: f64,
    /// The homogeneous configuration's chip width, µm (absolute row).
    pub width_um: f64,
    /// The homogeneous configuration's WNS, ns (absolute row).
    pub wns_ns: f64,
    /// The homogeneous configuration's TNS, ns (absolute row).
    pub tns_ns: f64,
}

/// Computes the Table VII column for `hetero` against `other`.
#[must_use]
pub fn percent_delta(hetero: &Ppac, other: &Ppac) -> DeltaRow {
    let pct = |h: f64, o: f64| if o != 0.0 { (h - o) / o * 100.0 } else { 0.0 };
    DeltaRow {
        config: other.config,
        si_area: pct(hetero.si_area_mm2, other.si_area_mm2),
        density: pct(hetero.density_pct, other.density_pct),
        wirelength: pct(hetero.wirelength_mm, other.wirelength_mm),
        total_power: pct(hetero.total_power_mw, other.total_power_mw),
        effective_delay: pct(hetero.effective_delay_ns, other.effective_delay_ns),
        pdp: pct(hetero.pdp_pj, other.pdp_pj),
        die_cost: pct(hetero.die_cost_uc, other.die_cost_uc),
        cost_per_cm2: pct(hetero.cost_per_cm2_uc, other.cost_per_cm2_uc),
        ppc: pct(hetero.ppc, other.ppc),
        width_um: other.chip_width_um,
        wns_ns: other.wns_ns,
        tns_ns: other.tns_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(config: Config, power: f64, cost: f64, freq: f64) -> Ppac {
        Ppac {
            config,
            frequency_ghz: freq,
            footprint_mm2: 0.2,
            si_area_mm2: 0.4,
            chip_width_um: 450.0,
            density_pct: 80.0,
            wirelength_mm: 5.0,
            mivs: 0,
            power: PowerResult::default(),
            total_power_mw: power,
            wns_ns: -0.02,
            tns_ns: -1.0,
            effective_delay_ns: 1.0 / freq + 0.02,
            pdp_pj: power * (1.0 / freq + 0.02),
            die_cost_uc: cost,
            cost_per_cm2_uc: cost / 0.4 * 100.0,
            ppc: freq / (power * cost),
        }
    }

    #[test]
    fn delta_signs_follow_the_paper_convention() {
        let hetero = fake(Config::Hetero3d, 100.0, 5.0, 1.0);
        let worse = fake(Config::TwoD9T, 120.0, 6.0, 1.0);
        let d = percent_delta(&hetero, &worse);
        // Negative = hetero better for power/cost; positive PPC = better.
        assert!(d.total_power < 0.0);
        assert!(d.die_cost < 0.0);
        assert!(d.ppc > 0.0);
        assert_eq!(d.config, Config::TwoD9T);
    }

    #[test]
    fn delta_of_identical_is_zero() {
        let a = fake(Config::Hetero3d, 100.0, 5.0, 1.0);
        let b = fake(Config::TwoD12T, 100.0, 5.0, 1.0);
        let d = percent_delta(&a, &b);
        assert_eq!(d.total_power, 0.0);
        assert_eq!(d.ppc, 0.0);
        assert_eq!(d.pdp, 0.0);
    }
}
