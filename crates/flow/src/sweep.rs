//! The protocol-v2 design-space sweep: configurations × stacking styles
//! × sign-off corners × a frequency grid, executed as independent
//! single-shot points.
//!
//! A [`SweepSpec`] is the wire description of a grid a client wants
//! explored. Its defining property is that the grid **decomposes**: every
//! point is exactly equivalent to one v1 `run_flow` request whose options
//! carry the point's technology scenario (the same folding the Pareto
//! sweep performs internally). The flow service exploits that to fan a
//! sweep out across its worker pool as individually schedulable jobs —
//! each point hitting the shared checkpoint cache under its scenario's
//! cache key — and [`sweep_from_base`] is the in-process mirror used by
//! [`crate::FlowSession::execute`], bit-identical to running the
//! decomposed points one by one.
//!
//! Point order is deterministic and scenario-major: stacking styles in
//! spec order, corners within a style, configurations within a corner,
//! the frequency grid ascending innermost. One pseudo-3-D checkpoint is
//! computed per distinct scenario (never per point), so
//! `flow/pseudo3d_runs` equals the number of scenarios whenever the
//! config axis contains a 3-D configuration.

use crate::config::{Config, FlowOptions};
use crate::error::FlowError;
use crate::pareto::{frequency_grid, MAX_PARETO_STEPS};
use crate::stage::{pseudo_checkpoint, run_from_base, BaseDesign, PseudoCheckpoint};
use crate::wire::PpacSummary;
use m3d_cost::CostModel;
use m3d_json::DecodeError;
use m3d_tech::{Corner, CornerSet, StackingStyle, TechContext};

/// Largest accepted sweep size in grid points. A sweep fans out one full
/// implementation per point; the cap keeps a single request from
/// occupying the cluster indefinitely.
pub const MAX_SWEEP_POINTS: usize = 1_024;

/// A design-space grid: the cross product of every axis, swept at a
/// shared frequency grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Configurations to implement at every scenario point.
    pub configs: Vec<Config>,
    /// Stacking styles (the outer scenario axis).
    pub stacking: Vec<StackingStyle>,
    /// Sign-off corners (the inner scenario axis).
    pub corners: Vec<Corner>,
    /// Lower frequency bound, GHz.
    pub freq_min_ghz: f64,
    /// Upper frequency bound, GHz.
    pub freq_max_ghz: f64,
    /// Frequency-grid size (1..=[`MAX_PARETO_STEPS`], endpoints
    /// inclusive).
    pub freq_steps: usize,
}

/// One grid point of a sweep, in the spec's deterministic order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Position in the sweep's point order (the streamed point index).
    pub index: usize,
    /// Configuration to implement.
    pub config: Config,
    /// Stacking style of the point's scenario.
    pub stacking: StackingStyle,
    /// Sign-off corner of the point's scenario.
    pub corner: Corner,
    /// Target clock frequency, GHz.
    pub frequency_ghz: f64,
}

impl SweepPoint {
    /// The point's technology scenario — what its options' `tech` field
    /// carries after decomposition.
    #[must_use]
    pub fn tech(&self) -> TechContext {
        TechContext {
            stacking: self.stacking,
            corners: CornerSet::single(self.corner),
        }
    }
}

fn has_duplicates<T: PartialEq>(items: &[T]) -> bool {
    items
        .iter()
        .enumerate()
        .any(|(i, a)| items[..i].contains(a))
}

impl SweepSpec {
    /// The distinct technology scenarios the sweep visits, in point
    /// order: stacking styles outer, corners inner.
    #[must_use]
    pub fn scenarios(&self) -> Vec<(StackingStyle, Corner)> {
        let mut out = Vec::with_capacity(self.stacking.len() * self.corners.len());
        for &style in &self.stacking {
            for &corner in &self.corners {
                out.push((style, corner));
            }
        }
        out
    }

    /// The shared frequency grid, ascending.
    #[must_use]
    pub fn frequencies(&self) -> Vec<f64> {
        frequency_grid(self.freq_min_ghz, self.freq_max_ghz, self.freq_steps)
    }

    /// Total number of grid points.
    #[must_use]
    pub fn point_count(&self) -> usize {
        self.stacking.len() * self.corners.len() * self.configs.len() * self.freq_steps
    }

    /// Every grid point, indexed, in deterministic scenario-major order.
    #[must_use]
    pub fn points(&self) -> Vec<SweepPoint> {
        let freqs = self.frequencies();
        let mut out = Vec::with_capacity(self.point_count());
        for &stacking in &self.stacking {
            for &corner in &self.corners {
                for &config in &self.configs {
                    for &frequency_ghz in &freqs {
                        out.push(SweepPoint {
                            index: out.len(),
                            config,
                            stacking,
                            corner,
                            frequency_ghz,
                        });
                    }
                }
            }
        }
        out
    }

    /// Checks the grid against the bounds the wire decoder and the
    /// service enforce at admission: non-empty duplicate-free axes, a
    /// well-formed frequency grid, and a total point count within
    /// [`MAX_SWEEP_POINTS`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] naming the out-of-range member with a
    /// request-relative path (e.g. `command/configs`).
    pub fn validate(&self) -> Result<(), DecodeError> {
        for (path, empty, dup) in [
            (
                "command/configs",
                self.configs.is_empty(),
                has_duplicates(&self.configs),
            ),
            (
                "command/stacking",
                self.stacking.is_empty(),
                has_duplicates(&self.stacking),
            ),
            (
                "command/corners",
                self.corners.is_empty(),
                has_duplicates(&self.corners),
            ),
        ] {
            if empty || dup {
                return Err(DecodeError::new(
                    path,
                    "a non-empty list without duplicates",
                ));
            }
        }
        let bounds_ok = self.freq_min_ghz.is_finite()
            && self.freq_max_ghz.is_finite()
            && self.freq_min_ghz > 0.0
            && self.freq_max_ghz >= self.freq_min_ghz;
        if !bounds_ok {
            return Err(DecodeError::new(
                "command/freq_min_ghz",
                "positive finite bounds with freq_max_ghz >= freq_min_ghz",
            ));
        }
        if !(1..=MAX_PARETO_STEPS).contains(&self.freq_steps) {
            return Err(DecodeError::new(
                "command/freq_steps",
                format!("an integer in 1..={MAX_PARETO_STEPS}"),
            ));
        }
        if self.point_count() > MAX_SWEEP_POINTS {
            return Err(DecodeError::new(
                "command",
                format!("a sweep of at most {MAX_SWEEP_POINTS} points"),
            ));
        }
        Ok(())
    }
}

/// Executes a whole sweep off an already-prepared base and returns one
/// PPAC roll-up per grid point, in point order.
///
/// Structure mirrors [`crate::pareto_from_base`]: each scenario forks the
/// caller's options under a `sweep/<scenario>` telemetry scope with its
/// own [`TechContext`], the per-scenario pseudo-3-D checkpoints are
/// computed concurrently (only when the config axis contains a 3-D
/// configuration), and all points fan out through
/// [`m3d_par::par_invoke`], whose input-order results make the point list
/// bit-identical at any thread count — and bit-identical to executing the
/// decomposed v1 single-shot requests one by one.
///
/// # Errors
///
/// Returns [`FlowError::InvalidSweep`] for a malformed grid and
/// propagates the first failure of any checkpoint or point run.
pub fn sweep_from_base(
    base: &BaseDesign,
    spec: &SweepSpec,
    options: &FlowOptions,
    cost: &CostModel,
) -> Result<Vec<PpacSummary>, FlowError> {
    if spec.validate().is_err() {
        return Err(FlowError::InvalidSweep {
            freq_min_ghz: spec.freq_min_ghz,
            freq_max_ghz: spec.freq_max_ghz,
            freq_steps: spec.freq_steps,
        });
    }
    let obs = &options.obs;
    let sweep_span = obs.span("sweep");
    let scenarios = spec.scenarios();
    let scenario_options: Vec<FlowOptions> = scenarios
        .iter()
        .map(|&(style, corner)| {
            let mut o = options.fork_for(&format!("sweep/{style}-{corner}"));
            o.tech = TechContext {
                stacking: style,
                corners: CornerSet::single(corner),
            };
            o
        })
        .collect();

    // One pseudo-3-D checkpoint per scenario, computed concurrently —
    // the same cache-pairing discipline as the Pareto sweep: checkpoints
    // belong to the scenario options that minted them.
    let needs_pseudo = spec.configs.iter().any(|c| c.is_3d());
    let pseudos: Vec<Option<PseudoCheckpoint>> = if needs_pseudo {
        let computed = m3d_par::par_invoke(
            options.threads,
            scenario_options
                .iter()
                .map(|o| move || pseudo_checkpoint(base, o))
                .collect(),
        );
        let mut out = Vec::with_capacity(computed.len());
        for c in computed {
            out.push(Some(c?));
        }
        out
    } else {
        vec![None; scenarios.len()]
    };

    let freqs = spec.frequencies();
    let mut jobs = Vec::with_capacity(spec.point_count());
    for (scenario_options, pseudo) in scenario_options.iter().zip(&pseudos) {
        for &config in &spec.configs {
            let pseudo = if config.is_3d() {
                pseudo.as_ref()
            } else {
                None
            };
            for &f in &freqs {
                jobs.push(move || run_from_base(base, pseudo, config, f, scenario_options));
            }
        }
    }
    let results = m3d_par::par_invoke(options.threads, jobs);

    let mut points = Vec::with_capacity(results.len());
    for result in results {
        let imp = result?;
        points.push(PpacSummary::from(&imp.ppac(cost)));
    }
    obs.counter_add("sweep/points", points.len() as u64);
    drop(sweep_span);
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec {
            configs: vec![Config::Hetero3d, Config::TwoD12T],
            stacking: vec![StackingStyle::Monolithic, StackingStyle::F2fHybridBond],
            corners: vec![Corner::Typical, Corner::Slow],
            freq_min_ghz: 0.8,
            freq_max_ghz: 1.2,
            freq_steps: 3,
        }
    }

    #[test]
    fn points_enumerate_scenario_major_with_ascending_frequencies() {
        let s = spec();
        let points = s.points();
        assert_eq!(points.len(), s.point_count());
        assert_eq!(points.len(), 2 * 2 * 2 * 3);
        assert!(points.iter().enumerate().all(|(i, p)| p.index == i));
        // Scenario-major: the first scenario's points come first.
        let first = &points[..6];
        assert!(first
            .iter()
            .all(|p| p.stacking == StackingStyle::Monolithic && p.corner == Corner::Typical));
        // Frequencies ascend innermost, per config.
        assert_eq!(points[0].config, Config::Hetero3d);
        assert_eq!(points[0].frequency_ghz, 0.8);
        assert_eq!(points[2].frequency_ghz, 1.2);
        assert_eq!(points[3].config, Config::TwoD12T);
        // Scenario order is stacking-outer, corners inner.
        assert_eq!(
            s.scenarios(),
            vec![
                (StackingStyle::Monolithic, Corner::Typical),
                (StackingStyle::Monolithic, Corner::Slow),
                (StackingStyle::F2fHybridBond, Corner::Typical),
                (StackingStyle::F2fHybridBond, Corner::Slow),
            ]
        );
    }

    #[test]
    fn validation_rejects_malformed_axes_and_grids() {
        assert!(spec().validate().is_ok());
        let mut s = spec();
        s.configs.clear();
        assert_eq!(s.validate().unwrap_err().path, "command/configs");
        let mut s = spec();
        s.stacking.push(StackingStyle::Monolithic);
        assert_eq!(s.validate().unwrap_err().path, "command/stacking");
        let mut s = spec();
        s.corners = vec![Corner::Fast, Corner::Fast];
        assert_eq!(s.validate().unwrap_err().path, "command/corners");
        let mut s = spec();
        s.freq_min_ghz = -1.0;
        assert_eq!(s.validate().unwrap_err().path, "command/freq_min_ghz");
        let mut s = spec();
        s.freq_max_ghz = 0.5;
        assert_eq!(s.validate().unwrap_err().path, "command/freq_min_ghz");
        let mut s = spec();
        s.freq_steps = 0;
        assert_eq!(s.validate().unwrap_err().path, "command/freq_steps");
        let mut s = spec();
        s.freq_steps = MAX_PARETO_STEPS + 1;
        assert_eq!(s.validate().unwrap_err().path, "command/freq_steps");
    }

    #[test]
    fn oversized_sweeps_are_rejected_at_the_command_path() {
        // The full duplicate-free grid — 5 configs × 2 styles × 3
        // corners × 64 steps = 1920 points — exceeds the cap.
        let oversized = SweepSpec {
            configs: Config::ALL.to_vec(),
            stacking: StackingStyle::ALL.to_vec(),
            corners: Corner::ALL.to_vec(),
            freq_min_ghz: 0.8,
            freq_max_ghz: 1.2,
            freq_steps: MAX_PARETO_STEPS,
        };
        assert!(oversized.point_count() > MAX_SWEEP_POINTS);
        let err = oversized.validate().unwrap_err();
        assert_eq!(err.path, "command");
        // Trimming the frequency grid brings it back under the cap.
        let trimmed = SweepSpec {
            freq_steps: 32,
            ..oversized
        };
        assert!(trimmed.validate().is_ok());
    }
}
