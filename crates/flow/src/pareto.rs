//! The technology-axis sweep: stacking style × sign-off corner ×
//! frequency, rolled up into a power–performance–cost Pareto frontier.
//!
//! [`pareto_from_base`] implements one [`Config`] at every point of a
//! frequency grid under every technology scenario — each stacking style
//! the configuration supports, signed off at each process corner — and
//! marks the points no other point dominates on (total power, effective
//! delay, die cost). The sweep is built for reuse: every scenario
//! computes its pseudo-3-D checkpoint exactly once and all of that
//! scenario's frequency rungs fork it, so `flow/pseudo3d_runs` equals
//! the number of distinct 3-D scenarios regardless of grid size. All
//! fan-out goes through [`m3d_par::par_invoke`], whose input-order
//! results make the frontier bit-identical at any thread count.

use crate::config::{Config, FlowOptions};
use crate::error::FlowError;
use crate::stage::{pseudo_checkpoint, run_from_base, BaseDesign, PseudoCheckpoint};
use m3d_cost::CostModel;
use m3d_tech::{Corner, CornerSet, StackingStyle, TechContext};

/// Largest accepted frequency-grid size. The sweep fans out
/// `scenarios × steps` full implementations; a cap keeps a single
/// malformed request from occupying the worker pool indefinitely.
pub const MAX_PARETO_STEPS: usize = 64;

/// One swept design point: a technology scenario implemented at one
/// target frequency, with the metrics the frontier is computed over.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Stacking style of the scenario.
    pub stacking: StackingStyle,
    /// The sign-off corner of the scenario.
    pub corner: Corner,
    /// Target clock frequency, GHz.
    pub frequency_ghz: f64,
    /// Sign-off total power, mW (typical-corner power).
    pub total_power_mw: f64,
    /// Effective delay = period − WNS at the sign-off corner, ns.
    pub effective_delay_ns: f64,
    /// Die cost under the scenario's stacking style, `10⁻⁶ C'`.
    pub die_cost_uc: f64,
    /// Power-delay product, pJ.
    pub pdp_pj: f64,
    /// Performance per cost.
    pub ppc: f64,
    /// Worst negative slack at the sign-off corner, ns.
    pub wns_ns: f64,
    /// Whether the point met timing within the sweep's WNS tolerance.
    pub timing_met: bool,
    /// Whether the point is on the Pareto frontier: no swept point
    /// weakly dominates it on (power, delay, cost) with at least one
    /// strict improvement.
    pub on_frontier: bool,
}

/// The full sweep: every `(scenario, frequency)` point in deterministic
/// order — scenarios in `StackingStyle::ALL` × `Corner::ALL` order, the
/// frequency grid ascending within each scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoSummary {
    /// The configuration that was swept.
    pub config: Config,
    /// All swept points, frontier membership marked.
    pub points: Vec<ParetoPoint>,
}

impl ParetoSummary {
    /// The non-dominated points, in sweep order.
    pub fn frontier(&self) -> impl Iterator<Item = &ParetoPoint> {
        self.points.iter().filter(|p| p.on_frontier)
    }
}

/// `a` dominates `b` when it is no worse on every objective and
/// strictly better on at least one.
fn dominates(a: &ParetoPoint, b: &ParetoPoint) -> bool {
    let no_worse = a.total_power_mw <= b.total_power_mw
        && a.effective_delay_ns <= b.effective_delay_ns
        && a.die_cost_uc <= b.die_cost_uc;
    let strictly_better = a.total_power_mw < b.total_power_mw
        || a.effective_delay_ns < b.effective_delay_ns
        || a.die_cost_uc < b.die_cost_uc;
    no_worse && strictly_better
}

/// Marks `on_frontier` over the whole point set (O(n²), n ≤ a few
/// hundred). Exposed for the wire layer, which re-derives nothing: the
/// flags travel with the points.
pub(crate) fn mark_frontier(points: &mut [ParetoPoint]) {
    for i in 0..points.len() {
        let dominated = points
            .iter()
            .enumerate()
            .any(|(j, other)| j != i && dominates(other, &points[i]));
        points[i].on_frontier = !dominated;
    }
}

/// The scenarios a configuration is swept under: every stacking style
/// for a 3-D configuration, monolithic only for 2-D (a 2-D die has no
/// inter-tier interface, so the styles would produce identical points).
pub(crate) fn scenario_axis(config: Config) -> Vec<(StackingStyle, Corner)> {
    let styles: &[StackingStyle] = if config.is_3d() {
        &StackingStyle::ALL
    } else {
        &[StackingStyle::Monolithic]
    };
    let mut scenarios = Vec::with_capacity(styles.len() * Corner::ALL.len());
    for &style in styles {
        for &corner in &Corner::ALL {
            scenarios.push((style, corner));
        }
    }
    scenarios
}

/// The evenly spaced frequency grid, ascending. `steps == 1` collapses
/// to the lower bound.
pub(crate) fn frequency_grid(freq_min_ghz: f64, freq_max_ghz: f64, steps: usize) -> Vec<f64> {
    if steps == 1 {
        return vec![freq_min_ghz];
    }
    (0..steps)
        .map(|i| freq_min_ghz + (freq_max_ghz - freq_min_ghz) * i as f64 / (steps - 1) as f64)
        .collect()
}

fn validate_sweep(
    freq_min_ghz: f64,
    freq_max_ghz: f64,
    freq_steps: usize,
) -> Result<(), FlowError> {
    let bounds_ok = freq_min_ghz.is_finite()
        && freq_max_ghz.is_finite()
        && freq_min_ghz > 0.0
        && freq_max_ghz >= freq_min_ghz;
    if !bounds_ok || freq_steps == 0 || freq_steps > MAX_PARETO_STEPS {
        return Err(FlowError::InvalidSweep {
            freq_min_ghz,
            freq_max_ghz,
            freq_steps,
        });
    }
    Ok(())
}

/// Sweeps `config` over stacking × corner × frequency off an
/// already-prepared base and returns the marked point set.
///
/// Structure: each scenario forks the caller's options under a
/// `pareto/<scenario>` telemetry scope with its own [`TechContext`]
/// (single-corner sign-off — the scenario *is* the corner). For 3-D
/// configurations the per-scenario pseudo checkpoints are computed
/// concurrently, one per scenario; then all `scenarios × steps` runs
/// fan out across the worker pool, every run of a scenario forking its
/// checkpoint. Results come back in input order, so the point list —
/// and the frontier computed from it — is independent of the thread
/// count.
///
/// # Errors
///
/// Returns [`FlowError::InvalidSweep`] for a malformed grid and
/// propagates the first failure of any checkpoint or run.
pub fn pareto_from_base(
    base: &BaseDesign,
    config: Config,
    freq_min_ghz: f64,
    freq_max_ghz: f64,
    freq_steps: usize,
    options: &FlowOptions,
    cost: &CostModel,
) -> Result<ParetoSummary, FlowError> {
    validate_sweep(freq_min_ghz, freq_max_ghz, freq_steps)?;
    let obs = &options.obs;
    let sweep_span = obs.span("pareto");
    let scenarios = scenario_axis(config);
    let scenario_options: Vec<FlowOptions> = scenarios
        .iter()
        .map(|&(style, corner)| {
            let tech = TechContext {
                stacking: style,
                corners: CornerSet::single(corner),
            };
            let mut o = options.fork_for(&format!("pareto/{style}-{corner}"));
            o.tech = tech;
            o
        })
        .collect();

    // One pseudo-3-D checkpoint per scenario, computed concurrently.
    // Checkpoints are paired with the options fingerprint that minted
    // them (the store's cache-pairing discipline), and each scenario
    // has its own fingerprint — so the sweep computes exactly one
    // checkpoint per distinct 3-D scenario, never one per grid point.
    let pseudos: Vec<Option<PseudoCheckpoint>> = if config.is_3d() {
        let computed = m3d_par::par_invoke(
            options.threads,
            scenario_options
                .iter()
                .map(|o| move || pseudo_checkpoint(base, o))
                .collect(),
        );
        let mut out = Vec::with_capacity(computed.len());
        for c in computed {
            out.push(Some(c?));
        }
        out
    } else {
        vec![None; scenarios.len()]
    };

    let freqs = frequency_grid(freq_min_ghz, freq_max_ghz, freq_steps);
    let mut jobs = Vec::with_capacity(scenarios.len() * freqs.len());
    for (scenario_options, pseudo) in scenario_options.iter().zip(&pseudos) {
        for &f in &freqs {
            jobs.push(move || run_from_base(base, pseudo.as_ref(), config, f, scenario_options));
        }
    }
    let results = m3d_par::par_invoke(options.threads, jobs);

    let mut points = Vec::with_capacity(results.len());
    for (k, result) in results.into_iter().enumerate() {
        let imp = result?;
        let (style, corner) = scenarios[k / freqs.len()];
        let ppac = imp.ppac(cost);
        points.push(ParetoPoint {
            stacking: style,
            corner,
            frequency_ghz: imp.frequency_ghz,
            total_power_mw: ppac.total_power_mw,
            effective_delay_ns: ppac.effective_delay_ns,
            die_cost_uc: ppac.die_cost_uc,
            pdp_pj: ppac.pdp_pj,
            ppc: ppac.ppc,
            wns_ns: ppac.wns_ns,
            timing_met: imp.sta.timing_met(options.wns_tolerance),
            on_frontier: false,
        });
    }
    mark_frontier(&mut points);
    obs.counter_add("pareto/points", points.len() as u64);
    obs.counter_add(
        "pareto/frontier",
        points.iter().filter(|p| p.on_frontier).count() as u64,
    );
    drop(sweep_span);
    Ok(ParetoSummary { config, points })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(power: f64, delay: f64, cost: f64) -> ParetoPoint {
        ParetoPoint {
            stacking: StackingStyle::Monolithic,
            corner: Corner::Typical,
            frequency_ghz: 1.0,
            total_power_mw: power,
            effective_delay_ns: delay,
            die_cost_uc: cost,
            pdp_pj: power * delay,
            ppc: 1.0 / (power * cost),
            wns_ns: 0.0,
            timing_met: true,
            on_frontier: false,
        }
    }

    #[test]
    fn frontier_keeps_exactly_the_nondominated_points() {
        let mut pts = vec![
            point(10.0, 1.0, 5.0), // frontier: best delay
            point(8.0, 1.2, 5.0),  // frontier: best power
            point(10.0, 1.2, 5.0), // dominated by both above
            point(9.0, 1.1, 4.0),  // frontier: best cost
            point(9.0, 1.1, 4.0),  // duplicate: ties survive (weak dominance)
        ];
        mark_frontier(&mut pts);
        let flags: Vec<bool> = pts.iter().map(|p| p.on_frontier).collect();
        assert_eq!(flags, [true, true, false, true, true]);
    }

    #[test]
    fn two_d_configs_sweep_only_the_monolithic_style() {
        let s2 = scenario_axis(Config::TwoD12T);
        assert_eq!(s2.len(), Corner::ALL.len());
        assert!(s2.iter().all(|&(s, _)| s == StackingStyle::Monolithic));
        let s3 = scenario_axis(Config::Hetero3d);
        assert_eq!(s3.len(), StackingStyle::ALL.len() * Corner::ALL.len());
    }

    #[test]
    fn frequency_grid_is_even_and_inclusive() {
        assert_eq!(frequency_grid(0.8, 1.2, 1), vec![0.8]);
        let g = frequency_grid(0.8, 1.2, 5);
        assert_eq!(g.len(), 5);
        assert_eq!(g[0], 0.8);
        assert_eq!(g[4], 1.2);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn malformed_sweeps_are_rejected() {
        let bad = [
            (0.0, 1.0, 4),
            (-1.0, 1.0, 4),
            (f64::NAN, 1.0, 4),
            (1.0, f64::INFINITY, 4),
            (1.2, 0.8, 4),
            (0.8, 1.2, 0),
            (0.8, 1.2, MAX_PARETO_STEPS + 1),
        ];
        for (lo, hi, steps) in bad {
            assert!(
                matches!(
                    validate_sweep(lo, hi, steps),
                    Err(FlowError::InvalidSweep { .. })
                ),
                "({lo}, {hi}, {steps}) must be rejected"
            );
        }
        assert!(validate_sweep(1.0, 1.0, 1).is_ok());
    }
}
