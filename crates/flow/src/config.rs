use m3d_cts::CtsConfig;
use m3d_obs::Obs;
use m3d_place::PlacerConfig;
use m3d_route::RouteConfig;
use m3d_tech::{Library, TierStack};
use std::fmt;
use std::sync::Arc;

/// The five technology/design configurations of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Config {
    /// (b) 9-track 2-D: slow & small.
    TwoD9T,
    /// (a) 12-track 2-D: fast & large — the iso-performance baseline.
    TwoD12T,
    /// (c) 9-track homogeneous 3-D.
    ThreeD9T,
    /// (d) 12-track homogeneous 3-D.
    ThreeD12T,
    /// (e) 9+12-track heterogeneous 3-D: the paper's proposal.
    Hetero3d,
}

impl Config {
    /// All five configurations, in Fig. 1 order.
    pub const ALL: [Config; 5] = [
        Config::TwoD12T,
        Config::TwoD9T,
        Config::ThreeD12T,
        Config::ThreeD9T,
        Config::Hetero3d,
    ];

    /// The four homogeneous comparison configurations (Table VII columns).
    pub const HOMOGENEOUS: [Config; 4] = [
        Config::TwoD9T,
        Config::TwoD12T,
        Config::ThreeD9T,
        Config::ThreeD12T,
    ];

    /// Builds the technology stack for this configuration.
    #[must_use]
    pub fn stack(self) -> TierStack {
        match self {
            Config::TwoD9T => TierStack::two_d(Library::nine_track()),
            Config::TwoD12T => TierStack::two_d(Library::twelve_track()),
            Config::ThreeD9T => TierStack::homogeneous_3d(Library::nine_track()),
            Config::ThreeD12T => TierStack::homogeneous_3d(Library::twelve_track()),
            Config::Hetero3d => TierStack::heterogeneous(),
        }
    }

    /// Returns `true` for the two-tier configurations.
    #[must_use]
    pub fn is_3d(self) -> bool {
        matches!(
            self,
            Config::ThreeD9T | Config::ThreeD12T | Config::Hetero3d
        )
    }

    /// Returns `true` for the heterogeneous configuration.
    #[must_use]
    pub fn is_heterogeneous(self) -> bool {
        self == Config::Hetero3d
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Config::TwoD9T => "2D 9-Track",
            Config::TwoD12T => "2D 12-Track",
            Config::ThreeD9T => "M3D 9-Track",
            Config::ThreeD12T => "M3D 12-Track",
            Config::Hetero3d => "Hetero 3D (9+12)",
        };
        f.write_str(s)
    }
}

/// Knobs of a flow run.
///
/// The three `enable_*` flags distinguish the Pin-3-D baseline from the
/// enhanced heterogeneous flow (Table V): the baseline runs with all three
/// disabled, the Hetero-Pin-3-D flow with all three enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOptions {
    /// Target standard-cell utilization.
    pub utilization: f64,
    /// Seed forwarded to placement/partitioning.
    pub seed: u64,
    /// Global-placement parameters. Behind an `Arc`: forked options (fmax
    /// rungs, comparison jobs) share one copy instead of cloning it per
    /// branch; mutate through [`FlowOptions::placer_mut`].
    pub placer: Arc<PlacerConfig>,
    /// Global-routing parameters (shared; [`FlowOptions::route_mut`]).
    pub route: Arc<RouteConfig>,
    /// CTS parameters (shared; [`FlowOptions::cts_mut`]).
    pub cts: Arc<CtsConfig>,
    /// Fraction of cell area the timing-based partitioner may lock to the
    /// fast tier (the paper uses 20–30 %).
    pub timing_partition_cap: f64,
    /// Enable timing-based partitioning (heterogeneous enhancement #1).
    pub enable_timing_partition: bool,
    /// Enable 3-D (COVER-cell) clock tree synthesis (enhancement #2).
    pub enable_3d_cts: bool,
    /// Enable the repartitioning ECO (enhancement #3, Algorithm 1).
    pub enable_repartition: bool,
    /// Toggle rate at primary inputs for power analysis.
    pub input_activity: f64,
    /// Fanout cap for pre-placement buffering.
    pub max_fanout: usize,
    /// Placement-bin count per axis for bin-based FM.
    pub partition_bins: usize,
    /// Timing-met tolerance: |WNS| within this fraction of the period.
    pub wns_tolerance: f64,
    /// Worker threads for the parallel flow engine. `0` defers to the
    /// process-global setting (`m3d_par::set_threads`), which itself falls
    /// back to `HETERO3D_THREADS` and then the machine's parallelism.
    /// Results are identical at any value; `1` forces the sequential path.
    pub threads: usize,
    /// Telemetry sink for the run. Disabled by default (every record is
    /// one branch); attach [`Obs::enabled`] to collect spans and counters
    /// into a manifest. Equality is handle identity, so two options
    /// structs feeding the same collector still compare equal.
    pub obs: Obs,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            utilization: 0.7,
            seed: 1,
            placer: Arc::new(PlacerConfig::default()),
            route: Arc::new(RouteConfig::default()),
            cts: Arc::new(CtsConfig::default()),
            timing_partition_cap: 0.28,
            enable_timing_partition: true,
            enable_3d_cts: true,
            enable_repartition: true,
            input_activity: 0.15,
            max_fanout: 24,
            partition_bins: 8,
            wns_tolerance: 0.07,
            threads: 0,
            obs: Obs::disabled(),
        }
    }
}

impl FlowOptions {
    /// The Pin-3-D baseline: min-cut partitioning only, legacy clock tree,
    /// no repartitioning — the left column of Table V.
    #[must_use]
    pub fn pin3d_baseline() -> Self {
        FlowOptions {
            enable_timing_partition: false,
            enable_3d_cts: false,
            enable_repartition: false,
            ..Default::default()
        }
    }

    /// Mutable access to the placer parameters (copy-on-write: a shared
    /// copy is cloned once on first mutation).
    pub fn placer_mut(&mut self) -> &mut PlacerConfig {
        Arc::make_mut(&mut self.placer)
    }

    /// Mutable access to the routing parameters (copy-on-write).
    pub fn route_mut(&mut self) -> &mut RouteConfig {
        Arc::make_mut(&mut self.route)
    }

    /// Mutable access to the CTS parameters (copy-on-write).
    pub fn cts_mut(&mut self) -> &mut CtsConfig {
        Arc::make_mut(&mut self.cts)
    }

    /// Forks the options for one concurrent branch: identical knobs (the
    /// sub-configs stay `Arc`-shared, nothing is deep-copied) with the
    /// telemetry handle re-scoped under `scope` so concurrent branches
    /// never share a manifest key.
    #[must_use]
    pub fn fork_for(&self, scope: &str) -> FlowOptions {
        FlowOptions {
            obs: self.obs.scope(scope),
            ..self.clone()
        }
    }

    /// Stable fingerprint of the result-affecting knobs, as 16 hex
    /// digits. The thread count and the telemetry handle are excluded:
    /// by the determinism contract neither may change results, so two
    /// runs comparable for bit-identity fingerprint identically.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut canon = self.clone();
        canon.threads = 0;
        canon.obs = Obs::disabled();
        // FNV-1a over the debug rendering.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{canon:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        format!("{h:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_map_to_expected_stacks() {
        assert!(!Config::TwoD9T.stack().is_3d());
        assert!(Config::ThreeD12T.stack().is_3d());
        assert!(!Config::ThreeD12T.stack().is_heterogeneous());
        assert!(Config::Hetero3d.stack().is_heterogeneous());
        assert_eq!(
            Config::TwoD9T.stack().library(m3d_tech::Tier::Bottom).vdd,
            0.81
        );
    }

    #[test]
    fn baseline_disables_all_enhancements() {
        let b = FlowOptions::pin3d_baseline();
        assert!(!b.enable_timing_partition);
        assert!(!b.enable_3d_cts);
        assert!(!b.enable_repartition);
        let full = FlowOptions::default();
        assert!(full.enable_timing_partition && full.enable_3d_cts && full.enable_repartition);
    }

    #[test]
    fn fingerprint_ignores_threads_and_telemetry() {
        let a = FlowOptions::default();
        let b = FlowOptions {
            threads: 4,
            obs: Obs::enabled(),
            ..Default::default()
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = FlowOptions {
            seed: 2,
            ..Default::default()
        };
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fork_shares_subconfigs_copy_on_write() {
        let mut o = FlowOptions::default();
        o.placer_mut().iterations = 9;
        let f = o.fork_for("cfg/test");
        assert!(
            Arc::ptr_eq(&o.placer, &f.placer),
            "fork must share, not copy"
        );
        assert_eq!(o.fingerprint(), f.fingerprint());
        let mut g = f.clone();
        g.placer_mut().iterations = 10;
        assert_eq!(f.placer.iterations, 9, "mutating a fork must not leak back");
        assert_eq!(g.placer.iterations, 10);
    }

    #[test]
    fn display_names_are_distinct() {
        let mut names: Vec<String> = Config::ALL.iter().map(|c| c.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
