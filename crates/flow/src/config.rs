use m3d_cts::CtsConfig;
use m3d_obs::Obs;
use m3d_place::PlacerConfig;
use m3d_route::RouteConfig;
use m3d_tech::{Corner, Library, TechContext, TierStack};
use std::fmt;
use std::sync::Arc;

/// The five technology/design configurations of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Config {
    /// (b) 9-track 2-D: slow & small.
    TwoD9T,
    /// (a) 12-track 2-D: fast & large — the iso-performance baseline.
    TwoD12T,
    /// (c) 9-track homogeneous 3-D.
    ThreeD9T,
    /// (d) 12-track homogeneous 3-D.
    ThreeD12T,
    /// (e) 9+12-track heterogeneous 3-D: the paper's proposal.
    Hetero3d,
}

impl Config {
    /// All five configurations, in Fig. 1 order.
    pub const ALL: [Config; 5] = [
        Config::TwoD12T,
        Config::TwoD9T,
        Config::ThreeD12T,
        Config::ThreeD9T,
        Config::Hetero3d,
    ];

    /// The four homogeneous comparison configurations (Table VII columns).
    pub const HOMOGENEOUS: [Config; 4] = [
        Config::TwoD9T,
        Config::TwoD12T,
        Config::ThreeD9T,
        Config::ThreeD12T,
    ];

    /// Builds the technology stack for this configuration (typical
    /// corner, monolithic inter-tier vias — the default scenario).
    #[must_use]
    pub fn stack(self) -> TierStack {
        match self {
            Config::TwoD9T => TierStack::two_d(Library::nine_track()),
            Config::TwoD12T => TierStack::two_d(Library::twelve_track()),
            Config::ThreeD9T => TierStack::homogeneous_3d(Library::nine_track()),
            Config::ThreeD12T => TierStack::homogeneous_3d(Library::twelve_track()),
            Config::Hetero3d => TierStack::heterogeneous(),
        }
    }

    /// The configuration's stack with every library characterized at
    /// `corner` ([`Corner::Typical`] reproduces [`Config::stack`] bit
    /// for bit).
    #[must_use]
    pub fn stack_at(self, corner: Corner) -> TierStack {
        match self {
            Config::TwoD9T => TierStack::two_d(Library::nine_track_at(corner)),
            Config::TwoD12T => TierStack::two_d(Library::twelve_track_at(corner)),
            Config::ThreeD9T => TierStack::homogeneous_3d(Library::nine_track_at(corner)),
            Config::ThreeD12T => TierStack::homogeneous_3d(Library::twelve_track_at(corner)),
            Config::Hetero3d => TierStack::heterogeneous_at(corner),
        }
    }

    /// The stack the optimization pipeline runs on under `tech`:
    /// typical-corner libraries (sign-off corners are additional
    /// analyses, not different implementations) with the scenario's
    /// inter-tier via bound. The default scenario reproduces
    /// [`Config::stack`] exactly.
    #[must_use]
    pub fn stack_for(self, tech: &TechContext) -> TierStack {
        self.stack().with_stacking(tech.stacking)
    }

    /// Returns `true` for the two-tier configurations.
    #[must_use]
    pub fn is_3d(self) -> bool {
        matches!(
            self,
            Config::ThreeD9T | Config::ThreeD12T | Config::Hetero3d
        )
    }

    /// Returns `true` for the heterogeneous configuration.
    #[must_use]
    pub fn is_heterogeneous(self) -> bool {
        self == Config::Hetero3d
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Config::TwoD9T => "2D 9-Track",
            Config::TwoD12T => "2D 12-Track",
            Config::ThreeD9T => "M3D 9-Track",
            Config::ThreeD12T => "M3D 12-Track",
            Config::Hetero3d => "Hetero 3D (9+12)",
        };
        f.write_str(s)
    }
}

/// Knobs of a flow run.
///
/// The three `enable_*` flags distinguish the Pin-3-D baseline from the
/// enhanced heterogeneous flow (Table V): the baseline runs with all three
/// disabled, the Hetero-Pin-3-D flow with all three enabled.
#[derive(Clone, PartialEq)]
pub struct FlowOptions {
    /// Target standard-cell utilization.
    pub utilization: f64,
    /// Seed forwarded to placement/partitioning.
    pub seed: u64,
    /// Global-placement parameters. Behind an `Arc`: forked options (fmax
    /// rungs, comparison jobs) share one copy instead of cloning it per
    /// branch; mutate through [`FlowOptions::placer_mut`].
    pub placer: Arc<PlacerConfig>,
    /// Global-routing parameters (shared; [`FlowOptions::route_mut`]).
    pub route: Arc<RouteConfig>,
    /// CTS parameters (shared; [`FlowOptions::cts_mut`]).
    pub cts: Arc<CtsConfig>,
    /// Fraction of cell area the timing-based partitioner may lock to the
    /// fast tier (the paper uses 20–30 %).
    pub timing_partition_cap: f64,
    /// Enable timing-based partitioning (heterogeneous enhancement #1).
    pub enable_timing_partition: bool,
    /// Enable 3-D (COVER-cell) clock tree synthesis (enhancement #2).
    pub enable_3d_cts: bool,
    /// Enable the repartitioning ECO (enhancement #3, Algorithm 1).
    pub enable_repartition: bool,
    /// Toggle rate at primary inputs for power analysis.
    pub input_activity: f64,
    /// Fanout cap for pre-placement buffering.
    pub max_fanout: usize,
    /// Placement-bin count per axis for bin-based FM.
    pub partition_bins: usize,
    /// Timing-met tolerance: |WNS| within this fraction of the period.
    pub wns_tolerance: f64,
    /// Worker threads for the parallel flow engine. `0` defers to the
    /// process-global setting (`m3d_par::set_threads`), which itself falls
    /// back to `HETERO3D_THREADS` and then the machine's parallelism.
    /// Results are identical at any value; `1` forces the sequential path.
    pub threads: usize,
    /// Telemetry sink for the run. Disabled by default (every record is
    /// one branch); attach [`Obs::enabled`] to collect spans and counters
    /// into a manifest. Equality is handle identity, so two options
    /// structs feeding the same collector still compare equal.
    pub obs: Obs,
    /// The technology scenario: stacking style + sign-off corners.
    /// Defaults to monolithic/typical, which reproduces the
    /// pre-scenario flow (and its fingerprints) bit for bit.
    pub tech: TechContext,
}

/// Hand-rolled to render exactly like the pre-`tech` derived `Debug`
/// when the scenario is the default: [`FlowOptions::fingerprint`]
/// hashes this rendering, and every existing checkpoint/cache key and
/// committed benchmark baseline was minted from the field list below.
/// The `tech` field is appended only when it deviates from the
/// default, so new scenarios get new fingerprints and the default
/// scenario keeps the historical ones.
impl fmt::Debug for FlowOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("FlowOptions");
        d.field("utilization", &self.utilization)
            .field("seed", &self.seed)
            .field("placer", &self.placer)
            .field("route", &self.route)
            .field("cts", &self.cts)
            .field("timing_partition_cap", &self.timing_partition_cap)
            .field("enable_timing_partition", &self.enable_timing_partition)
            .field("enable_3d_cts", &self.enable_3d_cts)
            .field("enable_repartition", &self.enable_repartition)
            .field("input_activity", &self.input_activity)
            .field("max_fanout", &self.max_fanout)
            .field("partition_bins", &self.partition_bins)
            .field("wns_tolerance", &self.wns_tolerance)
            .field("threads", &self.threads)
            .field("obs", &self.obs);
        if !self.tech.is_default() {
            d.field("tech", &self.tech);
        }
        d.finish()
    }
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            utilization: 0.7,
            seed: 1,
            placer: Arc::new(PlacerConfig::default()),
            route: Arc::new(RouteConfig::default()),
            cts: Arc::new(CtsConfig::default()),
            timing_partition_cap: 0.28,
            enable_timing_partition: true,
            enable_3d_cts: true,
            enable_repartition: true,
            input_activity: 0.15,
            max_fanout: 24,
            partition_bins: 8,
            wns_tolerance: 0.07,
            threads: 0,
            obs: Obs::disabled(),
            tech: TechContext::default(),
        }
    }
}

impl FlowOptions {
    /// The Pin-3-D baseline: min-cut partitioning only, legacy clock tree,
    /// no repartitioning — the left column of Table V.
    #[must_use]
    pub fn pin3d_baseline() -> Self {
        FlowOptions {
            enable_timing_partition: false,
            enable_3d_cts: false,
            enable_repartition: false,
            ..Default::default()
        }
    }

    /// Mutable access to the placer parameters (copy-on-write: a shared
    /// copy is cloned once on first mutation).
    pub fn placer_mut(&mut self) -> &mut PlacerConfig {
        Arc::make_mut(&mut self.placer)
    }

    /// Mutable access to the routing parameters (copy-on-write).
    pub fn route_mut(&mut self) -> &mut RouteConfig {
        Arc::make_mut(&mut self.route)
    }

    /// Mutable access to the CTS parameters (copy-on-write).
    pub fn cts_mut(&mut self) -> &mut CtsConfig {
        Arc::make_mut(&mut self.cts)
    }

    /// Forks the options for one concurrent branch: identical knobs (the
    /// sub-configs stay `Arc`-shared, nothing is deep-copied) with the
    /// telemetry handle re-scoped under `scope` so concurrent branches
    /// never share a manifest key.
    #[must_use]
    pub fn fork_for(&self, scope: &str) -> FlowOptions {
        FlowOptions {
            obs: self.obs.scope(scope),
            ..self.clone()
        }
    }

    /// Stable fingerprint of the result-affecting knobs, as 16 hex
    /// digits. The thread count and the telemetry handle are excluded:
    /// by the determinism contract neither may change results, so two
    /// runs comparable for bit-identity fingerprint identically.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut canon = self.clone();
        canon.threads = 0;
        canon.obs = Obs::disabled();
        // FNV-1a over the debug rendering.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{canon:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        format!("{h:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_map_to_expected_stacks() {
        assert!(!Config::TwoD9T.stack().is_3d());
        assert!(Config::ThreeD12T.stack().is_3d());
        assert!(!Config::ThreeD12T.stack().is_heterogeneous());
        assert!(Config::Hetero3d.stack().is_heterogeneous());
        assert_eq!(
            Config::TwoD9T.stack().library(m3d_tech::Tier::Bottom).vdd,
            0.81
        );
    }

    #[test]
    fn baseline_disables_all_enhancements() {
        let b = FlowOptions::pin3d_baseline();
        assert!(!b.enable_timing_partition);
        assert!(!b.enable_3d_cts);
        assert!(!b.enable_repartition);
        let full = FlowOptions::default();
        assert!(full.enable_timing_partition && full.enable_3d_cts && full.enable_repartition);
    }

    #[test]
    fn fingerprint_ignores_threads_and_telemetry() {
        let a = FlowOptions::default();
        let b = FlowOptions {
            threads: 4,
            obs: Obs::enabled(),
            ..Default::default()
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = FlowOptions {
            seed: 2,
            ..Default::default()
        };
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fork_shares_subconfigs_copy_on_write() {
        let mut o = FlowOptions::default();
        o.placer_mut().iterations = 9;
        let f = o.fork_for("cfg/test");
        assert!(
            Arc::ptr_eq(&o.placer, &f.placer),
            "fork must share, not copy"
        );
        assert_eq!(o.fingerprint(), f.fingerprint());
        let mut g = f.clone();
        g.placer_mut().iterations = 10;
        assert_eq!(f.placer.iterations, 9, "mutating a fork must not leak back");
        assert_eq!(g.placer.iterations, 10);
    }

    #[test]
    fn default_scenario_keeps_the_historical_debug_rendering() {
        // The fingerprint hashes the Debug rendering; the default
        // scenario must not mention `tech` at all, so every cache key
        // and committed baseline minted before the scenario axis
        // existed stays valid.
        let d = FlowOptions::default();
        let rendered = format!("{d:?}");
        assert!(
            !rendered.contains("tech"),
            "default options must render without the tech field: {rendered}"
        );
        let scenario = FlowOptions {
            tech: TechContext {
                stacking: m3d_tech::StackingStyle::F2fHybridBond,
                corners: m3d_tech::CornerSet::Worst,
            },
            ..Default::default()
        };
        assert!(format!("{scenario:?}").contains("tech"));
        assert_ne!(d.fingerprint(), scenario.fingerprint());
        // Corner-set and stacking each get distinct fingerprints.
        let worst_only = FlowOptions {
            tech: TechContext {
                corners: m3d_tech::CornerSet::Worst,
                ..Default::default()
            },
            ..Default::default()
        };
        assert_ne!(scenario.fingerprint(), worst_only.fingerprint());
        assert_ne!(d.fingerprint(), worst_only.fingerprint());
    }

    #[test]
    fn corner_stacks_reproduce_the_default_at_typical() {
        for config in Config::ALL {
            let typ = config.stack_at(Corner::Typical);
            let base = config.stack();
            assert_eq!(
                typ.library(m3d_tech::Tier::Bottom).name,
                base.library(m3d_tech::Tier::Bottom).name
            );
            assert_eq!(typ.metal, base.metal);
            let scenario = config.stack_for(&TechContext::default());
            assert_eq!(scenario.metal, base.metal);
            // Slow corner lowers every supply.
            let slow = config.stack_at(Corner::Slow);
            assert!(slow.vdd_high() < base.vdd_high());
        }
        let f2f = Config::Hetero3d.stack_for(&TechContext {
            stacking: m3d_tech::StackingStyle::F2fHybridBond,
            ..Default::default()
        });
        assert_eq!(f2f.metal.miv, m3d_tech::StackingStyle::F2fHybridBond.via());
    }

    #[test]
    fn display_names_are_distinct() {
        let mut names: Vec<String> = Config::ALL.iter().map(|c| c.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
