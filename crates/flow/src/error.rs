//! Typed flow errors.
//!
//! Every stage of the pipeline reports failure through [`FlowError`]
//! instead of panicking: input validation ([`FlowError::InvalidNetlist`],
//! [`FlowError::InvalidFrequency`]), the fallible substrate passes
//! ([`FlowError::Legalize`], [`FlowError::Extract`]) and the pipeline's
//! own sequencing invariants ([`FlowError::MissingStageOutput`],
//! [`FlowError::MissingImplementation`]). Every entry point — the
//! `try_*` free functions, [`FlowSession`](crate::FlowSession) commands
//! and the wire layer — surfaces these errors instead of panicking.

use crate::config::Config;
use m3d_netlist::ValidateNetlistError;
use m3d_place::LegalizeError;
use m3d_route::ExtractError;
use std::fmt;

/// Everything that can go wrong while implementing a configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The target frequency was zero, negative or non-finite.
    InvalidFrequency {
        /// The rejected target, GHz.
        frequency_ghz: f64,
    },
    /// The input netlist failed structural validation.
    InvalidNetlist(ValidateNetlistError),
    /// Legalization rejected its inputs.
    Legalize(LegalizeError),
    /// Parasitic extraction rejected its inputs.
    Extract(ExtractError),
    /// A stage ran before the artifact it consumes was produced — a
    /// pipeline-sequencing bug, not a data problem.
    MissingStageOutput {
        /// The stage that found the hole.
        stage: &'static str,
        /// The artifact it needed.
        what: &'static str,
    },
    /// A comparison job's implementation never arrived (the parallel
    /// fan-out returned fewer results than configurations).
    MissingImplementation(Config),
    /// A Pareto sweep's frequency grid was malformed: non-finite or
    /// non-positive bounds, an inverted range, or a step count outside
    /// `1..=MAX_PARETO_STEPS`.
    InvalidSweep {
        /// Lower frequency bound, GHz.
        freq_min_ghz: f64,
        /// Upper frequency bound, GHz.
        freq_max_ghz: f64,
        /// Requested grid size.
        freq_steps: usize,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::InvalidFrequency { frequency_ghz } => {
                write!(
                    f,
                    "target frequency must be positive, got {frequency_ghz} GHz"
                )
            }
            FlowError::InvalidNetlist(e) => write!(f, "input netlist failed validation: {e}"),
            FlowError::Legalize(e) => write!(f, "legalization failed: {e}"),
            FlowError::Extract(e) => write!(f, "parasitic extraction failed: {e}"),
            FlowError::MissingStageOutput { stage, what } => {
                write!(
                    f,
                    "stage `{stage}` needs `{what}`, which no earlier stage produced"
                )
            }
            FlowError::MissingImplementation(config) => {
                write!(f, "no implementation was produced for {config}")
            }
            FlowError::InvalidSweep {
                freq_min_ghz,
                freq_max_ghz,
                freq_steps,
            } => {
                write!(
                    f,
                    "invalid pareto sweep: {freq_steps} steps over \
                     [{freq_min_ghz}, {freq_max_ghz}] GHz (bounds must be \
                     positive and finite with max >= min, steps in 1..={})",
                    crate::pareto::MAX_PARETO_STEPS
                )
            }
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::InvalidNetlist(e) => Some(e),
            FlowError::Legalize(e) => Some(e),
            FlowError::Extract(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateNetlistError> for FlowError {
    fn from(e: ValidateNetlistError) -> Self {
        FlowError::InvalidNetlist(e)
    }
}

impl From<LegalizeError> for FlowError {
    fn from(e: LegalizeError) -> Self {
        FlowError::Legalize(e)
    }
}

impl From<ExtractError> for FlowError {
    fn from(e: ExtractError) -> Self {
        FlowError::Extract(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_failure() {
        let e = FlowError::InvalidFrequency {
            frequency_ghz: -1.0,
        };
        assert!(e.to_string().contains("-1"));
        let e = FlowError::MissingStageOutput {
            stage: "route",
            what: "placement",
        };
        assert!(e.to_string().contains("route") && e.to_string().contains("placement"));
        let e = FlowError::MissingImplementation(Config::Hetero3d);
        assert!(e.to_string().contains("Hetero"));
    }
}
