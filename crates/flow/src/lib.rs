//! The Hetero-Pin-3-D flow: RTL-to-GDS-equivalent implementation of the
//! paper's five design configurations and its enhanced heterogeneous flow.
//!
//! This crate is the paper's primary contribution, assembled from the
//! workspace substrates:
//!
//! * the five configurations of Fig. 1 ([`Config`]): 9-track 2-D,
//!   12-track 2-D, 9-track 3-D, 12-track 3-D, and the heterogeneous
//!   9+12-track 3-D,
//! * the **pseudo-3-D stage** (flat 2-D implementation in the fast
//!   technology at the halved 3-D footprint),
//! * **timing-based partitioning** + bin-based FM min-cut,
//! * tier legalization, 3-D global routing, COVER-cell 3-D CTS,
//! * post-route optimization (upsizing to close timing, downsizing
//!   non-critical cells for power),
//! * the **repartitioning ECO** (Algorithm 1),
//! * sign-off STA/power and the PPAC roll-up ([`Ppac`]) including die
//!   cost, PDP and PPC,
//! * the fmax sweep used to set the iso-performance target
//!   ([`try_find_fmax`]), and five-way comparison helpers
//!   ([`try_compare_configs`]).
//!
//! # Examples
//!
//! The primary entry point is a [`FlowSession`]: one netlist + one
//! option set, validated and buffered once, queried many times (every
//! command forks the session's shared checkpoints). The free functions
//! [`try_run_flow`]/[`try_find_fmax`]/[`try_compare_configs`] are thin
//! one-shot adapters over it.
//!
//! ```no_run
//! use m3d_flow::{Config, FlowOptions, FlowSession};
//! use m3d_netgen::Benchmark;
//!
//! let netlist = Benchmark::Aes.generate(0.1, 1);
//! let session = FlowSession::builder(&netlist)
//!     .options(FlowOptions::default())
//!     .build()?;
//! let imp = session.run(Config::Hetero3d, 1.5)?;
//! let ppac = imp.ppac(&m3d_cost::CostModel::default());
//! println!("PPC = {:.3}", ppac.ppc);
//! # Ok::<(), m3d_flow::FlowError>(())
//! ```

mod compare;
mod config;
mod error;
#[allow(clippy::module_inception)]
mod flow;
mod pareto;
mod ppac;
mod session;
mod stage;
mod sweep;
mod wire;

pub use compare::{pin3d_baseline_comparison, try_compare_configs, BaselineComparison, Comparison};
pub use config::{Config, FlowOptions};
pub use error::FlowError;
pub use flow::{try_find_fmax, try_run_flow, Implementation};
pub use pareto::{pareto_from_base, ParetoPoint, ParetoSummary, MAX_PARETO_STEPS};
pub use ppac::{percent_delta, DeltaRow, Ppac};
pub use session::{FlowSession, FlowSessionBuilder};
pub use stage::{
    prepare_base, pseudo_checkpoint, run_from_base, BaseDesign, Cts, FlowState, Partition,
    PseudoCheckpoint, PseudoThreeD, Route, SignOff, Size, Stage, TierLegalize,
};
pub use sweep::{sweep_from_base, SweepPoint, SweepSpec, MAX_SWEEP_POINTS};
pub use wire::{
    ComparisonSummary, FlowCommand, FlowReport, FlowRequest, NetlistSpec, PpacSummary, Proto,
};
