//! The Hetero-Pin-3-D flow: RTL-to-GDS-equivalent implementation of the
//! paper's five design configurations and its enhanced heterogeneous flow.
//!
//! This crate is the paper's primary contribution, assembled from the
//! workspace substrates:
//!
//! * the five configurations of Fig. 1 ([`Config`]): 9-track 2-D,
//!   12-track 2-D, 9-track 3-D, 12-track 3-D, and the heterogeneous
//!   9+12-track 3-D,
//! * the **pseudo-3-D stage** (flat 2-D implementation in the fast
//!   technology at the halved 3-D footprint),
//! * **timing-based partitioning** + bin-based FM min-cut,
//! * tier legalization, 3-D global routing, COVER-cell 3-D CTS,
//! * post-route optimization (upsizing to close timing, downsizing
//!   non-critical cells for power),
//! * the **repartitioning ECO** (Algorithm 1),
//! * sign-off STA/power and the PPAC roll-up ([`Ppac`]) including die
//!   cost, PDP and PPC,
//! * the fmax sweep used to set the iso-performance target
//!   ([`find_fmax`]), and five-way comparison helpers
//!   ([`compare_configs`]).
//!
//! # Examples
//!
//! ```no_run
//! use m3d_flow::{run_flow, Config, FlowOptions};
//! use m3d_netgen::Benchmark;
//!
//! let netlist = Benchmark::Aes.generate(0.1, 1);
//! let imp = run_flow(&netlist, Config::Hetero3d, 1.5, &FlowOptions::default());
//! let ppac = imp.ppac(&m3d_cost::CostModel::default());
//! println!("PPC = {:.3}", ppac.ppc);
//! ```

mod compare;
mod config;
mod error;
#[allow(clippy::module_inception)]
mod flow;
mod ppac;
mod stage;

pub use compare::{
    compare_configs, pin3d_baseline_comparison, try_compare_configs, BaselineComparison, Comparison,
};
pub use config::{Config, FlowOptions};
pub use error::FlowError;
pub use flow::{find_fmax, run_flow, try_find_fmax, try_run_flow, Implementation};
pub use ppac::{percent_delta, DeltaRow, Ppac};
pub use stage::{
    prepare_base, pseudo_checkpoint, run_from_base, BaseDesign, Cts, FlowState, Partition,
    PseudoCheckpoint, PseudoThreeD, Route, SignOff, Size, Stage, TierLegalize,
};
