use crate::config::{Config, FlowOptions};
use crate::error::FlowError;
use crate::flow::{fmax_from_base, try_run_flow, Implementation};
use crate::ppac::{percent_delta, DeltaRow, Ppac};
use crate::stage::{prepare_base, pseudo_checkpoint, run_from_base};
use m3d_cost::CostModel;
use m3d_netlist::Netlist;

/// Five-way comparison of one netlist across all configurations at the
/// iso-performance target (Tables VI and VII).
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Design name.
    pub design: String,
    /// The iso-performance frequency target (the 12-track 2-D fmax), GHz.
    pub target_ghz: f64,
    /// The heterogeneous implementation's metrics (Table VI).
    pub hetero: Ppac,
    /// Metrics of every homogeneous configuration.
    pub homogeneous: Vec<Ppac>,
    /// Table VII columns: hetero vs each homogeneous configuration.
    pub deltas: Vec<DeltaRow>,
    /// The heterogeneous implementation itself (for deep-dive reports).
    pub hetero_implementation: Implementation,
    /// The homogeneous implementations (same order as `homogeneous`).
    pub implementations: Vec<Implementation>,
}

/// Takes `config`'s implementation out of the parallel fan-out's result
/// pool (`pool[i]` holds job `jobs[i]`'s result until consumed).
fn take_implementation(
    jobs: &[Config],
    pool: &mut [Option<Implementation>],
    config: Config,
) -> Result<Implementation, FlowError> {
    jobs.iter()
        .position(|&c| c == config)
        .and_then(|i| pool.get_mut(i).and_then(Option::take))
        .ok_or(FlowError::MissingImplementation(config))
}

/// Runs the full evaluation methodology on one netlist:
///
/// 1. sweep the 12-track 2-D implementation to its fmax,
/// 2. implement all five configurations at that frequency,
/// 3. compute PPAC and the Table VII percent deltas.
///
/// This is the expensive entry point — a full run executes the flow seven
/// or more times, but the shared prefixes are computed exactly once: one
/// buffered base netlist feeds every run, and one pseudo-3-D checkpoint
/// feeds all three 3-D configurations (the `flow/pseudo3d_runs` counter
/// records exactly 1). Independent configurations are implemented
/// concurrently (`options.threads` workers); results are assembled back
/// in Fig. 1 order, so the output is identical at any thread count.
///
/// # Errors
///
/// Propagates the first [`FlowError`] the sweep or any configuration job
/// reports.
pub fn try_compare_configs(
    netlist: &Netlist,
    options: &FlowOptions,
    cost: &CostModel,
) -> Result<Comparison, FlowError> {
    let base = prepare_base(netlist, options)?;
    let pseudo = pseudo_checkpoint(&base, options)?;
    compare_from_base(&base, &pseudo, options, cost)
}

/// [`try_compare_configs`] over already-prepared checkpoints: the shared
/// entry for sessions, which hold the base and the pseudo-3-D snapshot
/// across many commands (and many service requests).
pub(crate) fn compare_from_base(
    base: &crate::stage::BaseDesign,
    pseudo: &crate::stage::PseudoCheckpoint,
    options: &FlowOptions,
    cost: &CostModel,
) -> Result<Comparison, FlowError> {
    let compare_span = options.obs.span("compare_configs");
    let (target_ghz, base_imp) = fmax_from_base(base, None, Config::TwoD12T, options, 1.0)?;

    // One job per configuration that still needs an implementation: the
    // homogeneous configurations other than 12-track 2-D (which reuses the
    // fmax sweep's implementation) plus the heterogeneous proposal. Every
    // job forks the shared base; the 3-D jobs additionally fork the one
    // pseudo-3-D checkpoint. Each `run_from_base` is a pure function of
    // its arguments, so running them concurrently and reading results back
    // in job order is deterministic. Each job writes its telemetry under
    // its own `cfg/<name>` prefix, so concurrent jobs never share a
    // manifest key.
    let jobs: Vec<Config> = Config::HOMOGENEOUS
        .iter()
        .copied()
        .filter(|&c| c != Config::TwoD12T)
        .chain(std::iter::once(Config::Hetero3d))
        .collect();
    let job_options: Vec<FlowOptions> = jobs
        .iter()
        .map(|&config| options.fork_for(&format!("cfg/{config:?}")))
        .collect();
    let results = m3d_par::par_invoke(
        options.threads,
        jobs.iter()
            .zip(&job_options)
            .map(|(&config, o)| {
                let pseudo = config.is_3d().then_some(pseudo);
                move || run_from_base(base, pseudo, config, target_ghz, o)
            })
            .collect(),
    );
    let mut pool: Vec<Option<Implementation>> = Vec::with_capacity(results.len());
    for r in results {
        pool.push(Some(r?));
    }
    let hetero_implementation = take_implementation(&jobs, &mut pool, Config::Hetero3d)?;
    let mut homogeneous = Vec::with_capacity(Config::HOMOGENEOUS.len());
    let mut implementations = Vec::with_capacity(Config::HOMOGENEOUS.len());
    for config in Config::HOMOGENEOUS {
        let imp = if config == Config::TwoD12T {
            base_imp.clone()
        } else {
            take_implementation(&jobs, &mut pool, config)?
        };
        homogeneous.push(imp.ppac(cost));
        implementations.push(imp);
    }
    let hetero = hetero_implementation.ppac(cost);
    let deltas = homogeneous
        .iter()
        .map(|h| percent_delta(&hetero, h))
        .collect();
    drop(compare_span);

    Ok(Comparison {
        design: base.netlist.name.clone(),
        target_ghz,
        hetero,
        homogeneous,
        deltas,
        hetero_implementation,
        implementations,
    })
}

/// Table V: the same heterogeneous design through the Pin-3-D baseline
/// flow and the enhanced Hetero-Pin-3-D flow.
#[derive(Debug, Clone)]
pub struct BaselineComparison {
    /// Frequency both flows ran at, GHz.
    pub frequency_ghz: f64,
    /// Metrics from the unmodified Pin-3-D flow.
    pub pin3d: Ppac,
    /// Metrics from the enhanced flow.
    pub hetero_pin3d: Ppac,
    /// The baseline implementation.
    pub pin3d_implementation: Implementation,
    /// The enhanced implementation.
    pub hetero_implementation: Implementation,
}

/// Runs the Table V experiment: heterogeneous configuration under the
/// baseline flow (no timing partitioning, legacy CTS, no ECO) vs the
/// enhanced flow, at the same frequency.
#[must_use]
pub fn pin3d_baseline_comparison(
    netlist: &Netlist,
    frequency_ghz: f64,
    options: &FlowOptions,
    cost: &CostModel,
) -> BaselineComparison {
    let baseline_options = FlowOptions {
        enable_timing_partition: false,
        enable_3d_cts: false,
        enable_repartition: false,
        ..options.clone()
    };
    let pin3d_implementation =
        try_run_flow(netlist, Config::Hetero3d, frequency_ghz, &baseline_options)
            .unwrap_or_else(|e| panic!("pin3d baseline flow failed: {e}"));
    let hetero_implementation = try_run_flow(netlist, Config::Hetero3d, frequency_ghz, options)
        .unwrap_or_else(|e| panic!("hetero flow failed: {e}"));
    BaselineComparison {
        frequency_ghz,
        pin3d: pin3d_implementation.ppac(cost),
        hetero_pin3d: hetero_implementation.ppac(cost),
        pin3d_implementation,
        hetero_implementation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netgen::Benchmark;

    fn quick_options() -> FlowOptions {
        let mut o = FlowOptions::default();
        o.placer_mut().iterations = 6;
        o
    }

    #[test]
    fn baseline_comparison_shows_enhancement_value() {
        // Table V's experiment: at a frequency where the plain Pin-3-D
        // flow misses timing, the enhanced flow recovers most of the WNS
        // and cuts power.
        let n = Benchmark::Cpu.generate(0.015, 1);
        let cmp = pin3d_baseline_comparison(&n, 1.6, &quick_options(), &CostModel::default());
        assert!(
            cmp.pin3d.wns_ns < -0.02,
            "baseline should violate at 1.6 GHz: {}",
            cmp.pin3d.wns_ns
        );
        assert!(
            cmp.hetero_pin3d.wns_ns > cmp.pin3d.wns_ns + 0.02,
            "enhanced WNS {} vs baseline {}",
            cmp.hetero_pin3d.wns_ns,
            cmp.pin3d.wns_ns
        );
        assert!(
            cmp.hetero_pin3d.total_power_mw < cmp.pin3d.total_power_mw,
            "enhanced power {} vs baseline {}",
            cmp.hetero_pin3d.total_power_mw,
            cmp.pin3d.total_power_mw
        );
        assert_eq!(cmp.frequency_ghz, 1.6);
    }

    #[test]
    fn five_way_comparison_produces_all_rows() {
        let n = Benchmark::Aes.generate(0.012, 41);
        let cmp = try_compare_configs(&n, &quick_options(), &CostModel::default()).expect("flow");
        assert_eq!(cmp.homogeneous.len(), 4);
        assert_eq!(cmp.deltas.len(), 4);
        assert!(cmp.target_ghz > 0.0);
        assert_eq!(cmp.hetero.config, Config::Hetero3d);
        // Iso-performance: every implementation ran at the same target.
        for p in &cmp.homogeneous {
            assert!((p.frequency_ghz - cmp.target_ghz).abs() < 1e-9);
        }
    }

    #[test]
    fn missing_hetero_job_surfaces_as_typed_error() {
        let jobs = [Config::TwoD9T, Config::ThreeD9T];
        let mut pool: Vec<Option<Implementation>> = vec![None, None];
        let err = take_implementation(&jobs, &mut pool, Config::Hetero3d).unwrap_err();
        assert_eq!(err, FlowError::MissingImplementation(Config::Hetero3d));
    }

    #[test]
    fn consumed_job_slot_surfaces_as_typed_error() {
        // A pool slot can only be taken once; a second claim for the same
        // configuration reports the missing implementation instead of
        // panicking.
        let n = Benchmark::Aes.generate(0.05, 7);
        let imp = try_run_flow(&n, Config::TwoD9T, 0.8, &quick_options()).expect("flow");
        let jobs = [Config::TwoD9T];
        let mut pool = vec![Some(imp)];
        assert!(take_implementation(&jobs, &mut pool, Config::TwoD9T).is_ok());
        let err = take_implementation(&jobs, &mut pool, Config::TwoD9T).unwrap_err();
        assert_eq!(err, FlowError::MissingImplementation(Config::TwoD9T));
    }
}
