//! The stage pipeline: an explicit [`Stage`] sequence over one shared
//! [`DesignDb`].
//!
//! Every configuration is implemented by threading a [`FlowState`]
//! through a fixed list of stages — `PseudoThreeD → Partition →
//! TierLegalize → Route → Cts → Size → SignOff` for the 3-D
//! configurations, `TierLegalize → Route → Cts → Size → SignOff` per
//! pass for the 2-D ones. Each stage reads copy-on-write snapshots out
//! of the database, computes, and writes its artifacts back; the
//! database's change journal is drained between stages into
//! `db/journal/<stage>` counters, so the manifest records exactly how
//! much state each stage touched.
//!
//! Two checkpoints make the expensive prefixes shareable:
//!
//! * [`BaseDesign`] — the validated, fanout-buffered netlist. Built once
//!   by [`prepare_base`]; every configuration, fmax rung and comparison
//!   job forks its database off this one `Arc`.
//! * [`PseudoCheckpoint`] — the pseudo-3-D stage's output (flat placement
//!   and parasitics on the halved footprint, in the canonical 12-track
//!   technology). Period-independent, so [`pseudo_checkpoint`] computes
//!   it once and every 3-D run forks from it; a run without one computes
//!   its own through the [`PseudoThreeD`] stage. The `flow/pseudo3d_runs`
//!   counter records each computation — the five-way comparison must show
//!   exactly one.

use crate::config::{Config, FlowOptions};
use crate::error::FlowError;
use crate::flow::Implementation;
use m3d_cts::{synthesize, ClockTree, CtsMode};
use m3d_db::{DesignDb, DesignEdit};
use m3d_geom::{Point, Rect};
use m3d_netlist::{CellClass, CellId, Netlist};
use m3d_obs::{Obs, Span};
use m3d_opt::DriveEdit;
use m3d_partition::{
    bin_min_cut_with_stats, repartition_eco_with, timing_driven_assignment, EcoConfig, EcoOutcome,
    EcoStop, EcoTimingView, PartitionConfig, TimingAssignment,
};
use m3d_place::{global_place, try_legalize_with_stats, Floorplan, LegalStats, Placement};
use m3d_power::{analyze_power, PowerConfig};
use m3d_route::{global_route, try_extract_parasitics_with_stats, ExtractStats, RoutingResult};
use m3d_sta::{
    analyze, worst_paths, ClockSpec, CornerResults, MultiCornerTimer, Parasitics, StaResult, Timer,
    TimingContext, TimingEdit,
};
use m3d_tech::{Corner, Library, Tier, TierStack};
use std::sync::Arc;

/// The flow's immutable starting point: the validated, fanout-buffered
/// netlist every configuration implements. Cheap to clone (one `Arc`).
#[derive(Debug, Clone)]
pub struct BaseDesign {
    /// The buffered netlist, shared by every run forked from this base.
    pub netlist: Arc<Netlist>,
}

/// The pseudo-3-D stage's output: a flat 2-D implementation in the
/// canonical (12-track) technology on the halved 3-D footprint. Both
/// artifacts are period-independent, so one checkpoint seeds every 3-D
/// run of the same netlist — fmax rungs and comparison jobs alike.
#[derive(Debug, Clone)]
pub struct PseudoCheckpoint {
    /// The (overlapping, Shrunk-2D style) flat placement.
    pub placement: Arc<Placement>,
    /// Pre-route parasitics of that placement.
    pub parasitics: Arc<Parasitics>,
    /// The shrunk die the placement lives in.
    pub die: Rect,
    /// The canonical flat stack the pseudo implementation used.
    pub stack: Arc<TierStack>,
}

/// Mutable pipeline state threaded through the stages of one run.
///
/// Owns the copy-on-write [`DesignDb`] plus the bits of context that are
/// not design data: the persistent incremental [`Timer`] (reset at each
/// pass boundary), the pseudo-3-D checkpoint and the per-pass control
/// flags.
pub struct FlowState {
    pub(crate) config: Config,
    pub(crate) period_ns: f64,
    pub(crate) db: DesignDb,
    pub(crate) pseudo: Option<PseudoCheckpoint>,
    pub(crate) timing_assignment: Option<TimingAssignment>,
    pub(crate) eco: Option<EcoOutcome>,
    /// Whether the [`Size`] stage should run in the current pass. The
    /// main 3-D finish pass defers sizing to the post-ECO re-finish when
    /// the repartitioning ECO is enabled (move first, size the residue).
    pub(crate) reoptimize: bool,
    /// Cells the last [`Size`] stage changed (drives the 2-D
    /// re-implementation heuristic).
    pub(crate) sizing_changed: usize,
    pub(crate) timer: Timer,
}

impl FlowState {
    /// The configuration being implemented.
    #[must_use]
    pub fn config(&self) -> Config {
        self.config
    }

    /// The clock period the run targets, ns.
    #[must_use]
    pub fn period_ns(&self) -> f64 {
        self.period_ns
    }

    /// The design database the stages read from and write to.
    #[must_use]
    pub fn db(&self) -> &DesignDb {
        &self.db
    }
}

/// One step of the implementation pipeline.
///
/// Contract: a stage reads its inputs from `state.db` (returning
/// [`FlowError::MissingStageOutput`] when a required artifact is
/// absent), computes, and writes its outputs back through the journaling
/// setters. It must be a pure function of `(state, options)` — no
/// ambient randomness, no wall-clock — so a pipeline is bit-identical at
/// any thread count. `span` is the stage's own telemetry span; child
/// spans mark interesting sub-steps.
pub trait Stage {
    /// Stable stage name: the telemetry span and the journal-traffic
    /// counter (`db/journal/<name>`) key.
    fn name(&self) -> &'static str;
    /// Runs the stage against the shared state.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] when a required input artifact is missing
    /// or a substrate pass rejects its inputs.
    fn run(
        &self,
        state: &mut FlowState,
        options: &FlowOptions,
        span: &Span,
    ) -> Result<(), FlowError>;
}

/// Runs `stages` in order under `parent`, draining the database journal
/// into a `db/journal/<stage>` counter after each one.
pub(crate) fn run_stages(
    state: &mut FlowState,
    options: &FlowOptions,
    parent: &Span,
    stages: &[&dyn Stage],
) -> Result<(), FlowError> {
    for stage in stages {
        {
            let span = parent.child(stage.name());
            stage.run(state, options, &span)?;
        }
        let journal = state.db.take_journal();
        if options.obs.is_enabled() && !journal.is_empty() {
            options.obs.counter_add(
                &format!("db/journal/{}", stage.name()),
                journal.len() as u64,
            );
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// shared helpers (one definition each; every stage goes through these)
// ---------------------------------------------------------------------

/// Per-cell area under `lib`-per-tier binding (gates only; macros and
/// ports are zero — their area is handled by the floorplan).
fn cell_areas(netlist: &Netlist, stack: &TierStack, tiers: &[Tier]) -> Vec<f64> {
    netlist
        .cells()
        .map(|(id, c)| match &c.class {
            CellClass::Gate { kind, drive } => stack
                .library(tiers[id.index()])
                .cell(*kind, *drive)
                .map_or(0.0, |m| m.area_um2),
            _ => 0.0,
        })
        .collect()
}

/// Content-based netlist fingerprint in manifest/cache-key form (shared
/// with the serve-layer checkpoint cache via [`m3d_db`]).
fn netlist_fingerprint(netlist: &Netlist) -> String {
    m3d_db::fingerprint_hex(m3d_db::netlist_fingerprint(netlist))
}

/// Publishes a persistent [`Timer`]'s lifetime counters: the propagation
/// work (deterministic — dirty sets depend only on the edit sequence)
/// as counters, the scheduling-dependent arc-cache tallies as
/// performance-only entries, per shard and in total.
pub(crate) fn record_timer(obs: &Obs, timer: &Timer) {
    if !obs.is_enabled() {
        return;
    }
    let st = timer.stats();
    obs.counter_add("sta/full_rebuilds", st.full_rebuilds);
    obs.counter_add("sta/incremental_updates", st.incremental_updates);
    obs.counter_add("sta/load_evals", st.load_evals);
    obs.counter_add("sta/launch_evals", st.launch_evals);
    obs.counter_add("sta/forward_evals", st.forward_evals);
    obs.counter_add("sta/endpoint_evals", st.endpoint_evals);
    obs.counter_add("sta/backward_evals", st.backward_evals);
    obs.counter_add("sta/launch_required_evals", st.launch_required_evals);
    obs.counter_add("sta/propagated_evals", st.propagated_evals());
    let cache = timer.delay_cache();
    obs.perf_add("sta/cache_hits", cache.hits());
    obs.perf_add("sta/cache_misses", cache.misses());
    for (i, (hits, misses)) in cache.shard_stats().into_iter().enumerate() {
        obs.perf_add(&format!("sta/cache_shard{i:02}_hits"), hits);
        obs.perf_add(&format!("sta/cache_shard{i:02}_misses"), misses);
    }
}

/// Publishes a routing result's deterministic totals.
fn record_routing(obs: &Obs, routing: &RoutingResult) {
    if !obs.is_enabled() {
        return;
    }
    obs.counter_add("route/mivs", routing.total_mivs as u64);
    obs.counter_add("route/overflow_edges", routing.overflow_edges as u64);
    obs.gauge_add("route/wirelength_um", routing.total_wirelength_um);
    obs.gauge_add("route/prim_wirelength_um", routing.prim_wirelength_um);
}

/// Publishes an extraction pass's deterministic totals.
fn record_extract(obs: &Obs, stats: &ExtractStats) {
    if !obs.is_enabled() {
        return;
    }
    obs.counter_add("extract/rc_segments", stats.rc_segments);
    obs.gauge_add("extract/length_um", stats.total_length_um);
    obs.gauge_add("extract/wire_cap_ff", stats.total_wire_cap_ff);
}

/// Publishes a legalization run's deterministic displacement figures.
fn record_legalize(obs: &Obs, stats: &LegalStats) {
    if !obs.is_enabled() {
        return;
    }
    obs.counter_add("legalize/moved_cells", stats.moved_cells);
    obs.gauge_add(
        "legalize/total_displacement_um",
        stats.total_displacement_um,
    );
    obs.gauge_set("legalize/max_displacement_um", stats.max_displacement_um);
}

/// The one place a [`TimingContext`] is assembled in this crate: every
/// cold `analyze`, every sizing/ECO evaluate closure and every
/// [`Timer`] update goes through here, so parasitics/clock wiring cannot
/// drift between call sites.
fn timing_context<'a>(
    netlist: &'a Netlist,
    stack: &'a TierStack,
    tiers: &'a [Tier],
    parasitics: &'a Parasitics,
    clock: ClockSpec,
) -> TimingContext<'a> {
    TimingContext {
        netlist,
        stack,
        tiers,
        parasitics,
        clock,
    }
}

/// Assembles STA inputs and runs the engine (one-shot cold pass; loops
/// use the state's persistent [`Timer`] instead).
fn run_sta(
    netlist: &Netlist,
    stack: &TierStack,
    tiers: &[Tier],
    parasitics: &Parasitics,
    period_ns: f64,
    latency: Option<&ClockTree>,
) -> StaResult {
    analyze(&timing_context(
        netlist,
        stack,
        tiers,
        parasitics,
        clock_spec(period_ns, latency),
    ))
}

/// Clock constraints for sign-off: propagated register latencies plus a
/// virtual I/O clock at the network's mean insertion delay.
fn clock_spec(period_ns: f64, latency: Option<&ClockTree>) -> ClockSpec {
    let mut clock = ClockSpec::with_period(period_ns);
    if let Some(tree) = latency {
        clock.latency_ns = tree.sink_latency.clone();
        let lats = tree.latencies();
        if !lats.is_empty() {
            clock.virtual_io_latency_ns = lats.iter().sum::<f64>() / lats.len() as f64;
        }
    }
    clock
}

fn missing(stage: &'static str, what: &'static str) -> FlowError {
    FlowError::MissingStageOutput { stage, what }
}

// ---------------------------------------------------------------------
// entry points
// ---------------------------------------------------------------------

/// Validates and fanout-buffers the input netlist into the shared
/// [`BaseDesign`] every run forks from.
///
/// # Errors
///
/// Returns [`FlowError::InvalidNetlist`] when the input fails structural
/// validation.
pub fn prepare_base(netlist: &Netlist, options: &FlowOptions) -> Result<BaseDesign, FlowError> {
    netlist.validate()?;
    let mut netlist = netlist.clone();
    let mut scratch_positions = vec![Point::ORIGIN; netlist.cell_count()];
    {
        let _s = options.obs.span("buffering");
        let _ = m3d_opt::insert_buffers(&mut netlist, &mut scratch_positions, options.max_fanout);
    }
    Ok(BaseDesign {
        netlist: Arc::new(netlist),
    })
}

/// Runs the pseudo-3-D stage once, standalone, producing a checkpoint
/// that any number of 3-D runs of the same base can fork from.
///
/// # Errors
///
/// Returns [`FlowError::Extract`] when pre-route extraction rejects the
/// pseudo placement.
pub fn pseudo_checkpoint(
    base: &BaseDesign,
    options: &FlowOptions,
) -> Result<PseudoCheckpoint, FlowError> {
    let span = options.obs.span("pseudo3d");
    compute_pseudo(&base.netlist, options, &span)
}

/// Implements `config` at `frequency_ghz`, forking off `base` (and off
/// `pseudo`, when given, skipping the pseudo-3-D stage).
///
/// # Errors
///
/// Returns [`FlowError::InvalidFrequency`] for a non-positive or
/// non-finite target and propagates any stage failure.
pub fn run_from_base(
    base: &BaseDesign,
    pseudo: Option<&PseudoCheckpoint>,
    config: Config,
    frequency_ghz: f64,
    options: &FlowOptions,
) -> Result<Implementation, FlowError> {
    if !frequency_ghz.is_finite() || frequency_ghz <= 0.0 {
        return Err(FlowError::InvalidFrequency { frequency_ghz });
    }
    let period = 1.0 / frequency_ghz;
    let obs = options.obs.clone();
    let run_span = obs.span("run_flow");
    if obs.is_enabled() {
        obs.label_set("input/netlist", &base.netlist.name);
        obs.label_set("input/netlist_fp", &netlist_fingerprint(&base.netlist));
        obs.label_set("input/options_fp", &options.fingerprint());
        obs.label_set("input/config", &config.to_string());
        obs.perf_add("threads_resolved", m3d_par::resolve(options.threads) as u64);
    }
    let mut state = FlowState {
        config,
        period_ns: period,
        db: DesignDb::from_shared(
            base.netlist.clone(),
            config.stack_for(&options.tech),
            period,
        )
        .with_tech(options.tech),
        pseudo: pseudo.cloned(),
        timing_assignment: None,
        eco: None,
        reoptimize: true,
        sizing_changed: 0,
        timer: Timer::new(),
    };
    if config.is_3d() {
        run_3d(&mut state, options, &run_span)?;
    } else {
        run_2d(&mut state, options, &run_span)?;
    }
    drop(run_span);
    Implementation::from_state(&state, options)
}

// ---------------------------------------------------------------------
// pipeline drivers
// ---------------------------------------------------------------------

/// 3-D pipeline: pseudo-3-D + partitioning, one finish pass, then the
/// repartitioning ECO loop for the enhanced heterogeneous flow.
fn run_3d(state: &mut FlowState, options: &FlowOptions, run_span: &Span) -> Result<(), FlowError> {
    run_stages(state, options, run_span, &[&PseudoThreeD, &Partition])?;
    // When the repartitioning ECO will run, defer sizing until after it:
    // critical cells should first be *moved* to the fast tier; only the
    // residue is then upsized (this preserves the heterogeneous area win).
    let eco_enabled = state.config.is_heterogeneous() && options.enable_repartition;
    state.reoptimize = !eco_enabled;
    {
        let finish_span = run_span.child("finish3d");
        state.timer = Timer::new();
        run_stages(
            state,
            options,
            &finish_span,
            &[
                &TierLegalize,
                &Route,
                &Cts,
                &Size {
                    timing_rounds: 4,
                    power_rounds: 3,
                    power_margin: 0.15,
                },
                &SignOff,
            ],
        )?;
    }
    if eco_enabled {
        run_eco(state, options, run_span)?;
    }
    Ok(())
}

/// The 2-D flow with one re-implementation pass when sizing grew the
/// design (the paper's 9-track "over-correction" effect).
fn run_2d(state: &mut FlowState, options: &FlowOptions, run_span: &Span) -> Result<(), FlowError> {
    let gate_count = state.db.netlist().gate_count();
    state.reoptimize = true;
    let mut pass = 0;
    loop {
        pass += 1;
        let pass_span = run_span.child("impl2d");
        state.timer = Timer::new();
        run_stages(
            state,
            options,
            &pass_span,
            &[
                &TierLegalize,
                &Route,
                &Cts,
                &Size {
                    timing_rounds: 4,
                    power_rounds: 2,
                    power_margin: 0.25,
                },
            ],
        )?;
        // Re-implement once if sizing moved a meaningful chunk of area;
        // otherwise sign off this pass.
        if pass == 1 && state.sizing_changed > gate_count / 20 {
            record_timer(&options.obs, &state.timer);
            continue;
        }
        run_stages(state, options, &pass_span, &[&SignOff])?;
        return Ok(());
    }
}

/// Repartitioning ECO outer loop: after each ECO round the design is
/// incrementally re-finished (routing, CTS, sizing), which can expose new
/// critical paths through the slow tier; repeat until timing is met or
/// the ECO stops moving cells.
fn run_eco(state: &mut FlowState, options: &FlowOptions, run_span: &Span) -> Result<(), FlowError> {
    let obs = &options.obs;
    let eco_span = run_span.child("eco");
    let initial = state
        .db
        .sta_arc()
        .ok_or(missing("eco", "sign-off timing"))?;
    let mut total = EcoOutcome {
        iterations: 0,
        cells_moved: 0,
        rounds_undone: 0,
        initial_wns: initial.wns,
        final_wns: initial.wns,
        final_tns: initial.tns,
        stop_reason: EcoStop::Converged,
    };
    for _outer in 0..3 {
        let round_span = eco_span.child("round");
        let netlist = state.db.netlist_arc();
        let stack = state.db.stack_arc();
        let placement = state
            .db
            .placement_arc()
            .ok_or(missing("eco", "placement"))?;
        let routing = state.db.routing_arc().ok_or(missing("eco", "routing"))?;
        let clock_tree = state
            .db
            .clock_tree_arc()
            .ok_or(missing("eco", "clock tree"))?;
        let areas = cell_areas(&netlist, &stack, state.db.tiers());
        let fast = stack.fast_tier();
        let (parasitics, eco_px) =
            try_extract_parasitics_with_stats(&netlist, &placement, &stack, Some(&routing))?;
        record_extract(obs, &eco_px);
        let clock_template = clock_spec(state.period_ns, Some(&clock_tree));
        let mut tiers_work = state.db.tiers().to_vec();
        // One persistent timer per ECO round, fed by the move journal:
        // every candidate batch (and every undo carry, which restores
        // already-cached arcs) re-propagates only the cone of the
        // reported cells — no full-design diff scan per probe.
        let mut timer = Timer::new();
        let outcome = repartition_eco_with(
            &mut tiers_work,
            &areas,
            fast,
            &EcoConfig::default(),
            |t, moved| {
                let edits: Vec<TimingEdit> =
                    moved.iter().map(|&c| TimingEdit::SwapTier(c)).collect();
                let ctx = timing_context(&netlist, &stack, t, &parasitics, clock_template.clone());
                let result = timer.update_journaled(&ctx, &edits);
                let paths = worst_paths(&ctx, &result, EcoConfig::default().n0);
                EcoTimingView {
                    wns: result.wns,
                    tns: result.tns,
                    critical_paths: paths
                        .iter()
                        .map(|p| p.stages.iter().map(|s| (s.cell, s.cell_delay_ns)).collect())
                        .collect(),
                }
            },
        );
        record_timer(obs, &timer);
        if obs.is_enabled() {
            obs.counter_add("eco/iterations", outcome.iterations as u64);
            obs.counter_add("eco/cells_moved", outcome.cells_moved as u64);
        }
        state.db.set_tiers(tiers_work);
        let journal = state.db.take_journal();
        if obs.is_enabled() && !journal.is_empty() {
            obs.counter_add("db/journal/eco", journal.len() as u64);
        }
        total.iterations += outcome.iterations;
        total.cells_moved += outcome.cells_moved;
        total.rounds_undone += outcome.rounds_undone;
        total.stop_reason = outcome.stop_reason;
        let moved = outcome.cells_moved;
        if moved > 0 {
            refinish(state, options, &round_span)?;
        }
        let sta = state
            .db
            .sta_arc()
            .ok_or(missing("eco", "sign-off timing"))?;
        total.final_wns = sta.wns;
        total.final_tns = sta.tns;
        drop(round_span);
        if moved == 0 || sta.timing_met(options.wns_tolerance) {
            break;
        }
    }
    state.eco = Some(total);
    Ok(())
}

/// Incremental ECO placement + re-sign-off: moved cells keep their (x, y)
/// and only snap onto the nearest row of their new tier (real ECO flows
/// resolve the residual overlap in detailed placement, which is below
/// this model's fidelity). Routing, CTS, a short sizing pass and
/// STA/power are refreshed through the regular stages.
fn refinish(state: &mut FlowState, options: &FlowOptions, parent: &Span) -> Result<(), FlowError> {
    let span = parent.child("eco_refinish");
    let netlist = state.db.netlist_arc();
    let stack = state.db.stack_arc();
    let tiers = state.db.tiers_arc();
    let mut placement = (*state
        .db
        .placement_arc()
        .ok_or(missing("eco_refinish", "placement"))?)
    .clone();
    let die = placement.die;
    for i in 0..netlist.cell_count() {
        let t = tiers[i];
        let row_h = stack.library(t).cell_height_um;
        let n_rows = ((die.height() / row_h).floor() as i64).max(1);
        let y = placement.positions[i].y;
        let row = (((y - die.lly()) / row_h).floor() as i64).clamp(0, n_rows - 1);
        placement.positions[i].y = die.lly() + (row as f64 + 0.5) * row_h;
    }
    placement.clamp_to_die();
    state.db.set_placement(placement);
    state.timer = Timer::new();
    state.reoptimize = true;
    run_stages(
        state,
        options,
        &span,
        &[
            &Route,
            &Cts,
            &Size {
                timing_rounds: 3,
                power_rounds: 2,
                power_margin: 0.15,
            },
            &SignOff,
        ],
    )
}

// ---------------------------------------------------------------------
// stages
// ---------------------------------------------------------------------

/// Pseudo-3-D: flat 2-D implementation in the canonical technology on
/// the halved 3-D footprint (cells may overlap — Shrunk-2D style).
/// Skipped when the state was forked from a shared [`PseudoCheckpoint`].
pub struct PseudoThreeD;

impl Stage for PseudoThreeD {
    fn name(&self) -> &'static str {
        "pseudo3d"
    }

    fn run(
        &self,
        state: &mut FlowState,
        options: &FlowOptions,
        span: &Span,
    ) -> Result<(), FlowError> {
        if state.pseudo.is_some() {
            return Ok(());
        }
        let netlist = state.db.netlist_arc();
        state.pseudo = Some(compute_pseudo(&netlist, options, span)?);
        Ok(())
    }
}

/// The pseudo-3-D computation itself. Counts one `flow/pseudo3d_runs`:
/// the prefix-reuse metric is this counter summed over a whole manifest.
fn compute_pseudo(
    netlist: &Netlist,
    options: &FlowOptions,
    span: &Span,
) -> Result<PseudoCheckpoint, FlowError> {
    options.obs.counter_add("flow/pseudo3d_runs", 1);
    // Canonical stack: every 3-D configuration shares the 12-track flat
    // technology here, which is what makes the checkpoint shareable
    // across configurations in the five-way comparison.
    let stack = Arc::new(TierStack::two_d(Library::twelve_track()));
    let tiers = vec![Tier::Bottom; netlist.cell_count()];
    let fp_full = Floorplan::new(netlist, &stack, &tiers, options.utilization);
    let shrink = 0.5_f64.sqrt();
    let pseudo_die = Rect::new(
        fp_full.die.llx(),
        fp_full.die.lly(),
        fp_full.die.llx() + fp_full.die.width() * shrink,
        fp_full.die.lly() + fp_full.die.height() * shrink,
    );
    let mut fp_pseudo = fp_full;
    fp_pseudo.die = pseudo_die;
    // Macros keep their lower-left anchoring; clamp into the shrunk die.
    for (_, _, r) in &mut fp_pseudo.macros {
        if !pseudo_die.contains_rect(r) {
            let w = r.width().min(pseudo_die.width());
            let h = r.height().min(pseudo_die.height());
            *r = Rect::with_size(pseudo_die.clamp_point(Point::new(r.llx(), r.lly())), w, h);
        }
    }
    let placement = {
        let _s = span.child("global_place");
        global_place(netlist, &fp_pseudo, &options.placer)
    };
    let (parasitics, px) = {
        let _s = span.child("extract");
        try_extract_parasitics_with_stats(netlist, &placement, &stack, None)?
    };
    record_extract(&options.obs, &px);
    Ok(PseudoCheckpoint {
        placement: Arc::new(placement),
        parasitics: Arc::new(parasitics),
        die: pseudo_die,
        stack,
    })
}

/// Tier partitioning: optional timing-driven locking (heterogeneous
/// enhancement #1) followed by placement-driven bin-based FM min-cut.
/// Balance accounting includes macro area (macros are locked to the
/// bottom tier, so FM shifts logic toward the top to compensate).
pub struct Partition;

impl Stage for Partition {
    fn name(&self) -> &'static str {
        "partition"
    }

    fn run(
        &self,
        state: &mut FlowState,
        options: &FlowOptions,
        span: &Span,
    ) -> Result<(), FlowError> {
        let obs = &options.obs;
        let pseudo = state
            .pseudo
            .clone()
            .ok_or(missing("partition", "pseudo-3-D checkpoint"))?;
        let netlist = state.db.netlist_arc();
        let stack = state.db.stack_arc();
        let n = netlist.cell_count();
        let mut tiers = state.db.tiers().to_vec();
        let mut pseudo_areas = cell_areas(&netlist, &pseudo.stack, &tiers);
        for (id, cell) in netlist.cells() {
            if let CellClass::Macro(spec) = &cell.class {
                pseudo_areas[id.index()] = spec.area_um2();
            }
        }
        let mut locked = vec![false; n];
        // Macros and ports stay on the bottom tier.
        for (id, cell) in netlist.cells() {
            if cell.class.is_macro() || cell.class.is_port() {
                locked[id.index()] = true;
                tiers[id.index()] = Tier::Bottom;
            }
        }
        let timing_assignment =
            if state.config.is_heterogeneous() && options.enable_timing_partition {
                let pseudo_sta = {
                    let _s = span.child("sta");
                    run_sta(
                        &netlist,
                        &pseudo.stack,
                        &tiers,
                        &pseudo.parasitics,
                        state.period_ns,
                        None,
                    )
                };
                let criticality: Vec<f64> = (0..n)
                    .map(|i| pseudo_sta.cell_criticality(CellId::from_index(i)))
                    .collect();
                // Macros already occupy the fast/bottom tier; shrink the
                // lockable budget so locked cells + macros still fit in the
                // bottom's half of the shared outline (otherwise the footprint
                // must grow and the heterogeneous area win evaporates).
                let macro_total: f64 = netlist
                    .cells()
                    .filter(|(_, c)| c.class.is_macro())
                    .map(|(id, _)| pseudo_areas[id.index()])
                    .sum();
                let comb_total: f64 = netlist
                    .cells()
                    .filter(|(_, c)| c.class.is_gate())
                    .map(|(id, _)| pseudo_areas[id.index()])
                    .sum();
                let headroom = ((comb_total + macro_total) * 0.5 - macro_total).max(0.0)
                    / comb_total.max(1e-9);
                let cap = options.timing_partition_cap.min(headroom);
                let assignment = timing_driven_assignment(
                    &netlist,
                    &criticality,
                    &pseudo_areas,
                    cap,
                    stack.fast_tier(),
                    &mut tiers,
                );
                for id in &assignment.locked_cells {
                    locked[id.index()] = true;
                }
                Some(assignment)
            } else {
                None
            };
        let (_cut, fm_stats) = bin_min_cut_with_stats(
            &netlist,
            &pseudo.placement.positions,
            pseudo.die,
            options.partition_bins,
            &pseudo_areas,
            &locked,
            &mut tiers,
            &PartitionConfig {
                seed: options.seed,
                ..Default::default()
            },
        );
        if obs.is_enabled() {
            obs.counter_add("partition/fm_passes", fm_stats.passes);
            obs.counter_add("partition/fm_moves", fm_stats.moves);
            obs.counter_add("partition/final_cut", fm_stats.cut);
        }
        state.timing_assignment = timing_assignment;
        state.db.set_tiers(tiers);
        Ok(())
    }
}

/// Floorplan + placement under the current tier assignment. 3-D runs
/// transfer the pseudo placement into the (possibly resized) die, heal
/// the displacement with a short warm-start refinement and legalize onto
/// the per-tier rows; 2-D runs place from scratch.
pub struct TierLegalize;

impl Stage for TierLegalize {
    fn name(&self) -> &'static str {
        "tier_legalize"
    }

    fn run(
        &self,
        state: &mut FlowState,
        options: &FlowOptions,
        span: &Span,
    ) -> Result<(), FlowError> {
        let netlist = state.db.netlist_arc();
        let stack = state.db.stack_arc();
        let tiers = state.db.tiers_arc();
        let fp = Floorplan::new(&netlist, &stack, &tiers, options.utilization);
        let global_placement = if state.config.is_3d() {
            let pseudo = state
                .pseudo
                .clone()
                .ok_or(missing("tier_legalize", "pseudo-3-D checkpoint"))?;
            // Transfer the seed placement into the (possibly resized) die.
            let sx = fp.die.width() / pseudo.die.width();
            let sy = fp.die.height() / pseudo.die.height();
            let mut placement = Placement::centered(&netlist, fp.die);
            for i in 0..netlist.cell_count() {
                let p = pseudo.placement.positions[i];
                placement.positions[i] = Point::new(
                    fp.die.llx() + (p.x - pseudo.die.llx()) * sx,
                    fp.die.lly() + (p.y - pseudo.die.lly()) * sy,
                );
            }
            // Fixed cells to their floorplan slots.
            for (id, _, rect) in &fp.macros {
                placement.positions[id.index()] = rect.center();
            }
            let ports: Vec<usize> = netlist
                .cells()
                .filter(|(_, c)| c.class.is_port())
                .map(|(id, _)| id.index())
                .collect();
            for (k, &i) in ports.iter().enumerate() {
                placement.positions[i] = fp.io_position(k, ports.len());
            }
            let _s = span.child("refine_place");
            m3d_place::refine_place(&netlist, &fp, &placement, &options.placer, 4)
        } else {
            let _s = span.child("global_place");
            global_place(&netlist, &fp, &options.placer)
        };
        let (placement, legal_stats) = {
            let _s = span.child("legalize");
            try_legalize_with_stats(&netlist, &global_placement, &fp, &stack, &tiers)?
        };
        record_legalize(&options.obs, &legal_stats);
        state.db.set_floorplan(fp);
        state.db.set_global_placement(global_placement);
        state.db.set_placement(placement);
        Ok(())
    }
}

/// Global routing + parasitic extraction.
pub struct Route;

impl Stage for Route {
    fn name(&self) -> &'static str {
        "route"
    }

    fn run(
        &self,
        state: &mut FlowState,
        options: &FlowOptions,
        span: &Span,
    ) -> Result<(), FlowError> {
        let netlist = state.db.netlist_arc();
        let stack = state.db.stack_arc();
        let tiers = state.db.tiers_arc();
        let placement = state
            .db
            .placement_arc()
            .ok_or(missing("route", "placement"))?;
        let routing = global_route(&netlist, &placement, &tiers, &stack, &options.route);
        record_routing(&options.obs, &routing);
        let (parasitics, px) = {
            let _s = span.child("extract");
            try_extract_parasitics_with_stats(&netlist, &placement, &stack, Some(&routing))?
        };
        record_extract(&options.obs, &px);
        state.db.set_routing(routing);
        state.db.set_parasitics(parasitics);
        Ok(())
    }
}

/// Clock tree synthesis: flat for 2-D, COVER-cell (or legacy, per the
/// baseline flow) for 3-D.
pub struct Cts;

impl Stage for Cts {
    fn name(&self) -> &'static str {
        "cts"
    }

    fn run(
        &self,
        state: &mut FlowState,
        options: &FlowOptions,
        _span: &Span,
    ) -> Result<(), FlowError> {
        let netlist = state.db.netlist_arc();
        let stack = state.db.stack_arc();
        let tiers = state.db.tiers_arc();
        let placement = state
            .db
            .placement_arc()
            .ok_or(missing("cts", "placement"))?;
        let mode = if state.config.is_3d() {
            if options.enable_3d_cts {
                CtsMode::Cover3d
            } else {
                CtsMode::Legacy3d
            }
        } else {
            CtsMode::Flat2d
        };
        let clock_tree = synthesize(&netlist, &placement, &tiers, &stack, mode, &options.cts);
        options
            .obs
            .counter_add("cts/buffers", clock_tree.buffer_count() as u64);
        state.db.set_clock_tree(clock_tree);
        Ok(())
    }
}

/// Timing closure: upsize violating cells, then recover power on the
/// comfortable ones. Every applied (and rolled-back) drive change is
/// journaled, and the persistent timer consumes those edits directly —
/// no full-design diff scan per evaluate.
pub struct Size {
    /// Rounds of slack-driven upsizing.
    pub timing_rounds: usize,
    /// Rounds of power-recovery downsizing.
    pub power_rounds: usize,
    /// Slack margin for downsizing, as a fraction of the period.
    pub power_margin: f64,
}

impl Stage for Size {
    fn name(&self) -> &'static str {
        "sizing"
    }

    fn run(
        &self,
        state: &mut FlowState,
        _options: &FlowOptions,
        _span: &Span,
    ) -> Result<(), FlowError> {
        if !state.reoptimize {
            return Ok(());
        }
        let stack = state.db.stack_arc();
        let tiers = state.db.tiers_arc();
        let parasitics = state
            .db
            .parasitics_arc()
            .ok_or(missing("sizing", "parasitics"))?;
        let clock_tree = state
            .db
            .clock_tree_arc()
            .ok_or(missing("sizing", "clock tree"))?;
        let clock_template = clock_spec(state.period_ns, Some(&clock_tree));
        let period = state.period_ns;
        let timing_rounds = self.timing_rounds;
        let power_rounds = self.power_rounds;
        let power_margin = self.power_margin;
        let timer = &mut state.timer;
        let changed = state.db.with_netlist_mut(|nl, journal| {
            let mut eval = |nl: &Netlist, edits: &[DriveEdit]| {
                let mut timing_edits = Vec::with_capacity(edits.len());
                for &(cell, from, to) in edits {
                    journal.push(DesignEdit::ResizeCell { cell, from, to });
                    timing_edits.push(TimingEdit::ResizeCell(cell));
                }
                timer.update_journaled(
                    &timing_context(nl, &stack, &tiers, &parasitics, clock_template.clone()),
                    &timing_edits,
                )
            };
            let up = m3d_opt::resize_for_timing_with(nl, 0.0, timing_rounds, &mut eval);
            let down =
                m3d_opt::resize_for_power_with(nl, period * power_margin, power_rounds, &mut eval);
            up.cells_changed + down.cells_changed
        });
        state.sizing_changed = changed;
        Ok(())
    }
}

/// Sign-off STA and power from the database's current artifacts.
pub struct SignOff;

impl Stage for SignOff {
    fn name(&self) -> &'static str {
        "sta_signoff"
    }

    fn run(
        &self,
        state: &mut FlowState,
        options: &FlowOptions,
        _span: &Span,
    ) -> Result<(), FlowError> {
        let netlist = state.db.netlist_arc();
        let stack = state.db.stack_arc();
        let tiers = state.db.tiers_arc();
        let parasitics = state
            .db
            .parasitics_arc()
            .ok_or(missing("sta_signoff", "parasitics"))?;
        let clock_tree = state
            .db
            .clock_tree_arc()
            .ok_or(missing("sta_signoff", "clock tree"))?;
        let sta = state.timer.update_journaled(
            &timing_context(
                &netlist,
                &stack,
                &tiers,
                &parasitics,
                clock_spec(state.period_ns, Some(&clock_tree)),
            ),
            &[],
        );
        record_timer(&options.obs, &state.timer);
        let sta = if options.tech.corners.is_typical_only() {
            sta
        } else {
            worst_corner_sta(
                state,
                options,
                sta,
                &netlist,
                &tiers,
                &parasitics,
                &clock_tree,
            )
        };
        let power = analyze_power(
            &netlist,
            &stack,
            &tiers,
            &parasitics,
            Some(&clock_tree),
            &PowerConfig {
                input_activity: options.input_activity,
                frequency_ghz: 1.0 / state.period_ns,
                input_probability: 0.5,
            },
        );
        state.db.set_sta(sta);
        state.db.set_power(power);
        Ok(())
    }
}

/// Re-analyzes the signed-off artifacts at every corner of the
/// configured set and returns the worst (minimum-WNS) result.
///
/// Each extra corner gets its own derated stack ([`Config::stack_at`])
/// with the scenario's stacking style applied; the netlist, tier
/// assignment, parasitics and clock tree are shared — a process corner
/// moves cell timing, not wires. The typical result computed by the
/// flow's incremental timer is reused verbatim, so the default
/// scenario's numbers are untouched; the extra corners run on a fresh
/// [`MultiCornerTimer`], whose first update is bit-identical to a cold
/// analysis at any thread count. Power sign-off stays at the typical
/// corner: the paper's Table IV comparisons are typical-corner power,
/// and only the timing sign-off is corner-dependent.
#[allow(clippy::too_many_arguments)]
fn worst_corner_sta(
    state: &FlowState,
    options: &FlowOptions,
    typical: StaResult,
    netlist: &Netlist,
    tiers: &[Tier],
    parasitics: &Parasitics,
    clock_tree: &ClockTree,
) -> StaResult {
    let corners = options.tech.corners.corners();
    let extra: Vec<Corner> = corners
        .iter()
        .copied()
        .filter(|&c| c != Corner::Typical)
        .collect();
    let stacks: Vec<(Corner, TierStack)> = extra
        .iter()
        .map(|&c| {
            (
                c,
                state
                    .config
                    .stack_at(c)
                    .with_stacking(options.tech.stacking),
            )
        })
        .collect();
    let clock = clock_spec(state.period_ns, Some(clock_tree));
    let ctxs: Vec<(Corner, TimingContext)> = stacks
        .iter()
        .map(|(c, stack)| {
            (
                *c,
                timing_context(netlist, stack, tiers, parasitics, clock.clone()),
            )
        })
        .collect();
    let mut timers = MultiCornerTimer::new(&extra);
    let analyzed = timers.update_journaled(&ctxs, &[]);
    options
        .obs
        .counter_add("sta/corner_analyses", extra.len() as u64);
    let mut results = Vec::with_capacity(corners.len());
    for &corner in corners {
        if corner == Corner::Typical {
            results.push((corner, typical.clone()));
        } else {
            let r = analyzed
                .get(corner)
                .expect("every non-typical corner was analyzed")
                .clone();
            results.push((corner, r));
        }
    }
    CornerResults::new(results).into_worst().1
}
