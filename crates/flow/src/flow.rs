use crate::config::{Config, FlowOptions};
use crate::ppac::Ppac;
use m3d_cost::CostModel;
use m3d_cts::{synthesize, ClockTree, CtsMode};
use m3d_geom::{Point, Rect};
use m3d_netlist::{CellClass, CellId, Netlist};
use m3d_obs::Obs;
use m3d_partition::{
    bin_min_cut_with_stats, repartition_eco, timing_driven_assignment, EcoConfig, EcoOutcome,
    PartitionConfig, TimingAssignment,
};
use m3d_place::{global_place, legalize_with_stats, Floorplan, LegalStats, Placement};
use m3d_power::{analyze_power, PowerConfig, PowerResult};
use m3d_route::{extract_parasitics_with_stats, global_route, ExtractStats, RoutingResult};
use m3d_sta::{analyze, worst_paths, ClockSpec, Parasitics, StaResult, Timer, TimingContext};
use m3d_tech::{Tier, TierStack};

/// A finished implementation of one configuration: the full database the
/// reports are derived from.
#[derive(Debug, Clone)]
pub struct Implementation {
    /// Which configuration this is.
    pub config: Config,
    /// Target clock frequency, GHz.
    pub frequency_ghz: f64,
    /// The (optimized: buffered + resized) netlist.
    pub netlist: Netlist,
    /// Technology binding.
    pub stack: TierStack,
    /// Tier of every cell.
    pub tiers: Vec<Tier>,
    /// Die outline and macro slots.
    pub floorplan: Floorplan,
    /// Legalized placement.
    pub placement: Placement,
    /// The pre-legalization (refined global) placement — the seed used
    /// for incremental re-finish passes.
    pub global_placement: Placement,
    /// Routing result.
    pub routing: RoutingResult,
    /// Synthesized clock tree.
    pub clock_tree: ClockTree,
    /// Sign-off timing.
    pub sta: StaResult,
    /// Sign-off power.
    pub power: PowerResult,
    /// Target utilization the floorplans were sized for.
    pub utilization: f64,
    /// Repartitioning outcome (heterogeneous flow only).
    pub eco: Option<EcoOutcome>,
    /// Timing-based partitioning outcome (heterogeneous flow only).
    pub timing_assignment: Option<TimingAssignment>,
}

impl Implementation {
    /// Rolls the implementation up into the paper's PPAC metric set.
    #[must_use]
    pub fn ppac(&self, cost: &CostModel) -> Ppac {
        Ppac::from_implementation(self, cost)
    }
}

/// Per-cell area under `lib`-per-tier binding (gates only; macros and
/// ports are zero — their area is handled by the floorplan).
fn cell_areas(netlist: &Netlist, stack: &TierStack, tiers: &[Tier]) -> Vec<f64> {
    netlist
        .cells()
        .map(|(id, c)| match &c.class {
            CellClass::Gate { kind, drive } => stack
                .library(tiers[id.index()])
                .cell(*kind, *drive)
                .map_or(0.0, |m| m.area_um2),
            _ => 0.0,
        })
        .collect()
}

/// Cheap structural fingerprint of the input netlist (FNV-1a over the
/// name and coarse size/connectivity figures), for the manifest's
/// input-identity label.
fn netlist_fingerprint(netlist: &Netlist) -> String {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let eat_u64 = |h: &mut u64, v: u64| {
        for b in v.to_le_bytes() {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(PRIME);
        }
    };
    for b in netlist.name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    eat_u64(&mut h, netlist.cell_count() as u64);
    eat_u64(&mut h, netlist.net_count() as u64);
    eat_u64(&mut h, netlist.gate_count() as u64);
    let degree_sum: u64 = netlist.nets().map(|(_, n)| n.degree() as u64).sum();
    eat_u64(&mut h, degree_sum);
    format!("{h:016x}")
}

/// Publishes a persistent [`Timer`]'s lifetime counters: the propagation
/// work (deterministic — dirty sets depend only on the edit sequence)
/// as counters, the scheduling-dependent arc-cache tallies as
/// performance-only entries, per shard and in total.
fn record_timer(obs: &Obs, timer: &Timer) {
    if !obs.is_enabled() {
        return;
    }
    let st = timer.stats();
    obs.counter_add("sta/full_rebuilds", st.full_rebuilds);
    obs.counter_add("sta/incremental_updates", st.incremental_updates);
    obs.counter_add("sta/load_evals", st.load_evals);
    obs.counter_add("sta/launch_evals", st.launch_evals);
    obs.counter_add("sta/forward_evals", st.forward_evals);
    obs.counter_add("sta/endpoint_evals", st.endpoint_evals);
    obs.counter_add("sta/backward_evals", st.backward_evals);
    obs.counter_add("sta/launch_required_evals", st.launch_required_evals);
    obs.counter_add("sta/propagated_evals", st.propagated_evals());
    let cache = timer.delay_cache();
    obs.perf_add("sta/cache_hits", cache.hits());
    obs.perf_add("sta/cache_misses", cache.misses());
    for (i, (hits, misses)) in cache.shard_stats().into_iter().enumerate() {
        obs.perf_add(&format!("sta/cache_shard{i:02}_hits"), hits);
        obs.perf_add(&format!("sta/cache_shard{i:02}_misses"), misses);
    }
}

/// Publishes a routing result's deterministic totals.
fn record_routing(obs: &Obs, routing: &RoutingResult) {
    if !obs.is_enabled() {
        return;
    }
    obs.counter_add("route/mivs", routing.total_mivs as u64);
    obs.counter_add("route/overflow_edges", routing.overflow_edges as u64);
    obs.gauge_add("route/wirelength_um", routing.total_wirelength_um);
    obs.gauge_add("route/prim_wirelength_um", routing.prim_wirelength_um);
}

/// Publishes an extraction pass's deterministic totals.
fn record_extract(obs: &Obs, stats: &ExtractStats) {
    if !obs.is_enabled() {
        return;
    }
    obs.counter_add("extract/rc_segments", stats.rc_segments);
    obs.gauge_add("extract/length_um", stats.total_length_um);
    obs.gauge_add("extract/wire_cap_ff", stats.total_wire_cap_ff);
}

/// Publishes a legalization run's deterministic displacement figures.
fn record_legalize(obs: &Obs, stats: &LegalStats) {
    if !obs.is_enabled() {
        return;
    }
    obs.counter_add("legalize/moved_cells", stats.moved_cells);
    obs.gauge_add(
        "legalize/total_displacement_um",
        stats.total_displacement_um,
    );
    obs.gauge_set("legalize/max_displacement_um", stats.max_displacement_um);
}

/// The one place a [`TimingContext`] is assembled in this crate: every
/// cold `analyze`, every sizing/ECO evaluate closure and every
/// [`Timer::update`] goes through here, so parasitics/clock wiring cannot
/// drift between call sites.
fn timing_context<'a>(
    netlist: &'a Netlist,
    stack: &'a TierStack,
    tiers: &'a [Tier],
    parasitics: &'a Parasitics,
    clock: ClockSpec,
) -> TimingContext<'a> {
    TimingContext {
        netlist,
        stack,
        tiers,
        parasitics,
        clock,
    }
}

/// Assembles STA inputs and runs the engine (one-shot cold pass; loops
/// use a persistent [`Timer`] instead).
fn run_sta(
    netlist: &Netlist,
    stack: &TierStack,
    tiers: &[Tier],
    parasitics: &Parasitics,
    period_ns: f64,
    latency: Option<&ClockTree>,
) -> StaResult {
    analyze(&timing_context(
        netlist,
        stack,
        tiers,
        parasitics,
        clock_spec(period_ns, latency),
    ))
}

/// Clock constraints for sign-off: propagated register latencies plus a
/// virtual I/O clock at the network's mean insertion delay.
fn clock_spec(period_ns: f64, latency: Option<&ClockTree>) -> ClockSpec {
    let mut clock = ClockSpec::with_period(period_ns);
    if let Some(tree) = latency {
        clock.latency_ns = tree.sink_latency.clone();
        let lats = tree.latencies();
        if !lats.is_empty() {
            clock.virtual_io_latency_ns = lats.iter().sum::<f64>() / lats.len() as f64;
        }
    }
    clock
}

/// Runs the complete flow for one configuration at a target frequency.
///
/// 2-D configurations go through floorplan → place → route → CTS → STA →
/// sizing (and a re-implementation pass when sizing grew the design).
/// 3-D configurations add the pseudo-3-D stage, (optionally timing-based)
/// partitioning, tier legalization, 3-D CTS and (optionally) the
/// repartitioning ECO.
///
/// # Panics
///
/// Panics if `frequency_ghz` is not positive or the netlist fails
/// validation.
#[must_use]
pub fn run_flow(
    netlist: &Netlist,
    config: Config,
    frequency_ghz: f64,
    options: &FlowOptions,
) -> Implementation {
    assert!(frequency_ghz > 0.0, "frequency must be positive");
    netlist.validate().expect("input netlist must validate");
    let period = 1.0 / frequency_ghz;
    let stack = config.stack();

    let obs = options.obs.clone();
    let run_span = obs.span("run_flow");
    if obs.is_enabled() {
        obs.label_set("input/netlist", &netlist.name);
        obs.label_set("input/netlist_fp", &netlist_fingerprint(netlist));
        obs.label_set("input/options_fp", &options.fingerprint());
        obs.label_set("input/config", &config.to_string());
        obs.perf_add("threads_resolved", m3d_par::resolve(options.threads) as u64);
    }

    // Pre-placement fanout buffering (netlist becomes fixed-size after
    // this point; every per-cell vector below is sized once).
    let mut netlist = netlist.clone();
    let mut scratch_positions = vec![Point::ORIGIN; netlist.cell_count()];
    {
        let _s = run_span.child("buffering");
        let _ = m3d_opt::insert_buffers(&mut netlist, &mut scratch_positions, options.max_fanout);
    }
    let n = netlist.cell_count();
    let mut tiers = vec![Tier::Bottom; n];

    if !config.is_3d() {
        return implement_2d(netlist, config, stack, tiers, period, options);
    }

    // ---------------- pseudo-3-D stage ---------------------------------
    // Flat 2-D implementation in the configuration's fast technology, on
    // the halved 3-D footprint (cells may overlap — Shrunk-2D style).
    let pseudo_span = run_span.child("pseudo3d");
    let fast_lib = stack.library(stack.fast_tier()).clone();
    let pseudo_stack = TierStack::two_d(fast_lib);
    let fp_full = Floorplan::new(&netlist, &pseudo_stack, &tiers, options.utilization);
    let shrink = 0.5_f64.sqrt();
    let pseudo_die = Rect::new(
        fp_full.die.llx(),
        fp_full.die.lly(),
        fp_full.die.llx() + fp_full.die.width() * shrink,
        fp_full.die.lly() + fp_full.die.height() * shrink,
    );
    let mut fp_pseudo = fp_full.clone();
    fp_pseudo.die = pseudo_die;
    // Macros keep their lower-left anchoring; clamp into the shrunk die.
    for (_, _, r) in &mut fp_pseudo.macros {
        if !pseudo_die.contains_rect(r) {
            let w = r.width().min(pseudo_die.width());
            let h = r.height().min(pseudo_die.height());
            *r = Rect::with_size(pseudo_die.clamp_point(Point::new(r.llx(), r.lly())), w, h);
        }
    }
    let pseudo_placement = {
        let _s = pseudo_span.child("global_place");
        global_place(&netlist, &fp_pseudo, &options.placer)
    };
    let (pseudo_parasitics, pseudo_px) = {
        let _s = pseudo_span.child("extract");
        extract_parasitics_with_stats(&netlist, &pseudo_placement, &pseudo_stack, None)
    };
    record_extract(&obs, &pseudo_px);
    let pseudo_sta = {
        let _s = pseudo_span.child("sta");
        run_sta(
            &netlist,
            &pseudo_stack,
            &tiers,
            &pseudo_parasitics,
            period,
            None,
        )
    };
    drop(pseudo_span);

    // ---------------- partitioning -------------------------------------
    // Balance accounting includes macro area (macros are locked to the
    // bottom tier, so FM shifts logic toward the top to compensate).
    let partition_span = run_span.child("partition");
    let mut pseudo_areas = cell_areas(&netlist, &pseudo_stack, &tiers);
    for (id, cell) in netlist.cells() {
        if let m3d_netlist::CellClass::Macro(spec) = &cell.class {
            pseudo_areas[id.index()] = spec.area_um2();
        }
    }
    let mut locked = vec![false; n];
    // Macros and ports stay on the bottom tier.
    for (id, cell) in netlist.cells() {
        if cell.class.is_macro() || cell.class.is_port() {
            locked[id.index()] = true;
            tiers[id.index()] = Tier::Bottom;
        }
    }
    let timing_assignment = if config.is_heterogeneous() && options.enable_timing_partition {
        let criticality: Vec<f64> = (0..n)
            .map(|i| pseudo_sta.cell_criticality(CellId::from_index(i)))
            .collect();
        // Macros already occupy the fast/bottom tier; shrink the lockable
        // budget so locked cells + macros still fit in the bottom's half
        // of the shared outline (otherwise the footprint must grow and the
        // heterogeneous area win evaporates).
        let macro_total: f64 = netlist
            .cells()
            .filter(|(_, c)| c.class.is_macro())
            .map(|(id, _)| pseudo_areas[id.index()])
            .sum();
        let comb_total: f64 = netlist
            .cells()
            .filter(|(_, c)| c.class.is_gate())
            .map(|(id, _)| pseudo_areas[id.index()])
            .sum();
        let headroom =
            ((comb_total + macro_total) * 0.5 - macro_total).max(0.0) / comb_total.max(1e-9);
        let cap = options.timing_partition_cap.min(headroom);
        let assignment = timing_driven_assignment(
            &netlist,
            &criticality,
            &pseudo_areas,
            cap,
            stack.fast_tier(),
            &mut tiers,
        );
        for id in &assignment.locked_cells {
            locked[id.index()] = true;
        }
        Some(assignment)
    } else {
        None
    };
    let (_cut, fm_stats) = bin_min_cut_with_stats(
        &netlist,
        &pseudo_placement.positions,
        pseudo_die,
        options.partition_bins,
        &pseudo_areas,
        &locked,
        &mut tiers,
        &PartitionConfig {
            seed: options.seed,
            ..Default::default()
        },
    );
    if obs.is_enabled() {
        obs.counter_add("partition/fm_passes", fm_stats.passes);
        obs.counter_add("partition/fm_moves", fm_stats.moves);
        obs.counter_add("partition/final_cut", fm_stats.cut);
    }
    drop(partition_span);

    // ---------------- 3-D implementation --------------------------------
    // When the repartitioning ECO will run, defer sizing until after it:
    // critical cells should first be *moved* to the fast tier; only the
    // residue is then upsized (this preserves the heterogeneous area win).
    let eco_enabled = config.is_heterogeneous() && options.enable_repartition;
    let mut imp = finish_3d(
        netlist,
        config,
        stack,
        tiers,
        &pseudo_placement,
        pseudo_die,
        period,
        options,
        !eco_enabled,
    );
    imp.timing_assignment = timing_assignment;

    // ---------------- repartitioning ECO --------------------------------
    // Outer loop: after each ECO round the design is incrementally
    // re-finished (routing, CTS, sizing), which can expose new critical
    // paths through the slow tier; repeat until timing is met or the ECO
    // stops moving cells.
    if config.is_heterogeneous() && options.enable_repartition {
        let eco_span = run_span.child("eco");
        let mut total = EcoOutcome {
            iterations: 0,
            cells_moved: 0,
            rounds_undone: 0,
            initial_wns: imp.sta.wns,
            final_wns: imp.sta.wns,
            final_tns: imp.sta.tns,
            stop_reason: m3d_partition::EcoStop::Converged,
        };
        for _outer in 0..3 {
            let round_span = eco_span.child("round");
            let areas = cell_areas(&imp.netlist, &imp.stack, &imp.tiers);
            let fast = imp.stack.fast_tier();
            let netlist_ref = &imp.netlist;
            let stack_ref = &imp.stack;
            let (parasitics, eco_px) = extract_parasitics_with_stats(
                netlist_ref,
                &imp.placement,
                stack_ref,
                Some(&imp.routing),
            );
            record_extract(&obs, &eco_px);
            let clock_template = clock_spec(period, Some(&imp.clock_tree));
            let mut tiers_work = imp.tiers.clone();
            // One persistent timer per ECO round: every candidate move (and
            // every undo, which restores already-cached arcs) re-propagates
            // only the cone of the swapped cells.
            let mut timer = Timer::new();
            let outcome =
                repartition_eco(&mut tiers_work, &areas, fast, &EcoConfig::default(), |t| {
                    let ctx = timing_context(
                        netlist_ref,
                        stack_ref,
                        t,
                        &parasitics,
                        clock_template.clone(),
                    );
                    let result = timer.update(&ctx);
                    let paths = worst_paths(&ctx, &result, EcoConfig::default().n0);
                    m3d_partition::EcoTimingView {
                        wns: result.wns,
                        tns: result.tns,
                        critical_paths: paths
                            .iter()
                            .map(|p| p.stages.iter().map(|s| (s.cell, s.cell_delay_ns)).collect())
                            .collect(),
                    }
                });
            record_timer(&obs, &timer);
            if obs.is_enabled() {
                obs.counter_add("eco/iterations", outcome.iterations as u64);
                obs.counter_add("eco/cells_moved", outcome.cells_moved as u64);
            }
            imp.tiers = tiers_work;
            total.iterations += outcome.iterations;
            total.cells_moved += outcome.cells_moved;
            total.rounds_undone += outcome.rounds_undone;
            total.stop_reason = outcome.stop_reason;
            let moved = outcome.cells_moved;
            if moved > 0 {
                eco_refinish(&mut imp, period, options);
            }
            total.final_wns = imp.sta.wns;
            total.final_tns = imp.sta.tns;
            drop(round_span);
            if moved == 0 || imp.sta.timing_met(options.wns_tolerance) {
                break;
            }
        }
        imp.eco = Some(total);
    }
    imp
}

/// Incremental ECO placement + re-sign-off: moved cells keep their (x, y)
/// and only snap onto the nearest row of their new tier (real ECO flows
/// resolve the residual overlap in detailed placement, which is below this
/// model's fidelity). Routing, CTS, a short sizing pass and STA/power are
/// refreshed.
fn eco_refinish(imp: &mut Implementation, period: f64, options: &FlowOptions) {
    let obs = options.obs.clone();
    let refinish_span = obs.span("eco_refinish");
    let die = imp.placement.die;
    for i in 0..imp.netlist.cell_count() {
        let t = imp.tiers[i];
        let row_h = imp.stack.library(t).cell_height_um;
        let n_rows = ((die.height() / row_h).floor() as i64).max(1);
        let y = imp.placement.positions[i].y;
        let row = (((y - die.lly()) / row_h).floor() as i64).clamp(0, n_rows - 1);
        imp.placement.positions[i].y = die.lly() + (row as f64 + 0.5) * row_h;
    }
    imp.placement.clamp_to_die();
    let routing = {
        let _s = refinish_span.child("route");
        global_route(
            &imp.netlist,
            &imp.placement,
            &imp.tiers,
            &imp.stack,
            &options.route,
        )
    };
    record_routing(&obs, &routing);
    let (parasitics, px) = {
        let _s = refinish_span.child("extract");
        extract_parasitics_with_stats(&imp.netlist, &imp.placement, &imp.stack, Some(&routing))
    };
    record_extract(&obs, &px);
    let cts_mode = if options.enable_3d_cts {
        CtsMode::Cover3d
    } else {
        CtsMode::Legacy3d
    };
    let clock_tree = {
        let _s = refinish_span.child("cts");
        synthesize(
            &imp.netlist,
            &imp.placement,
            &imp.tiers,
            &imp.stack,
            cts_mode,
            &options.cts,
        )
    };
    obs.counter_add("cts/buffers", clock_tree.buffer_count() as u64);
    // Post-ECO closure: size the residual violations (the ECO already
    // moved the worst offenders to the fast tier) and recover power. The
    // timer persists through both sizing passes and the sign-off, so only
    // the first evaluation pays for a full propagation.
    let mut timer = Timer::new();
    {
        let _s = refinish_span.child("sizing");
        let stack_ref = &imp.stack;
        let tiers_ref = &imp.tiers;
        let parasitics_ref = &parasitics;
        let clock_template = clock_spec(period, Some(&clock_tree));
        let mut eval = |nl: &Netlist| {
            timer.update(&timing_context(
                nl,
                stack_ref,
                tiers_ref,
                parasitics_ref,
                clock_template.clone(),
            ))
        };
        let _ = m3d_opt::resize_for_timing(&mut imp.netlist, 0.0, 3, &mut eval);
        let _ = m3d_opt::resize_for_power(&mut imp.netlist, period * 0.15, 2, &mut eval);
    }
    imp.sta = {
        let _s = refinish_span.child("sta_signoff");
        timer.update(&timing_context(
            &imp.netlist,
            &imp.stack,
            &imp.tiers,
            &parasitics,
            clock_spec(period, Some(&clock_tree)),
        ))
    };
    record_timer(&obs, &timer);
    imp.power = analyze_power(
        &imp.netlist,
        &imp.stack,
        &imp.tiers,
        &parasitics,
        Some(&clock_tree),
        &PowerConfig {
            input_activity: options.input_activity,
            frequency_ghz: 1.0 / period,
            input_probability: 0.5,
        },
    );
    imp.routing = routing;
    imp.clock_tree = clock_tree;
}

/// The 3-D back half: floorplan under the tier assignment, placement
/// transfer + legalization, routing, CTS, sizing and sign-off.
#[allow(clippy::too_many_arguments)]
fn finish_3d(
    mut netlist: Netlist,
    config: Config,
    stack: TierStack,
    tiers: Vec<Tier>,
    seed_placement: &Placement,
    seed_die: Rect,
    period: f64,
    options: &FlowOptions,
    reoptimize: bool,
) -> Implementation {
    let obs = options.obs.clone();
    let finish_span = obs.span("finish3d");
    let fp = Floorplan::new(&netlist, &stack, &tiers, options.utilization);
    // Transfer the seed placement into the (possibly resized) die.
    let sx = fp.die.width() / seed_die.width();
    let sy = fp.die.height() / seed_die.height();
    let mut placement = Placement::centered(&netlist, fp.die);
    for i in 0..netlist.cell_count() {
        let p = seed_placement.positions[i];
        placement.positions[i] = Point::new(
            fp.die.llx() + (p.x - seed_die.llx()) * sx,
            fp.die.lly() + (p.y - seed_die.lly()) * sy,
        );
    }
    // Fixed cells to their floorplan slots.
    for (id, _, rect) in &fp.macros {
        placement.positions[id.index()] = rect.center();
    }
    let ports: Vec<usize> = netlist
        .cells()
        .filter(|(_, c)| c.class.is_port())
        .map(|(id, _)| id.index())
        .collect();
    for (k, &i) in ports.iter().enumerate() {
        placement.positions[i] = fp.io_position(k, ports.len());
    }
    // Heal partition/transfer displacement with a short warm-start
    // refinement, then legalize onto the per-tier rows.
    let global_placement = {
        let _s = finish_span.child("refine_place");
        m3d_place::refine_place(&netlist, &fp, &placement, &options.placer, 4)
    };
    let (placement, legal_stats) = {
        let _s = finish_span.child("legalize");
        legalize_with_stats(&netlist, &global_placement, &fp, &stack, &tiers)
    };
    record_legalize(&obs, &legal_stats);

    let routing = {
        let _s = finish_span.child("route");
        global_route(&netlist, &placement, &tiers, &stack, &options.route)
    };
    record_routing(&obs, &routing);
    let (parasitics, px) = {
        let _s = finish_span.child("extract");
        extract_parasitics_with_stats(&netlist, &placement, &stack, Some(&routing))
    };
    record_extract(&obs, &px);
    let cts_mode = if options.enable_3d_cts {
        CtsMode::Cover3d
    } else {
        CtsMode::Legacy3d
    };
    let clock_tree = {
        let _s = finish_span.child("cts");
        synthesize(&netlist, &placement, &tiers, &stack, cts_mode, &options.cts)
    };
    obs.counter_add("cts/buffers", clock_tree.buffer_count() as u64);

    // Timing closure: upsize violating cells, then recover power on the
    // comfortable ones. Skipped on incremental re-finish passes (the
    // netlist was already optimized; re-running would compound area). One
    // persistent timer carries the timing database through both sizing
    // passes into the sign-off below — rejected sizing batches are rolled
    // back by re-propagating the same (cached) cones.
    let mut timer = Timer::new();
    if reoptimize {
        let _s = finish_span.child("sizing");
        let stack_ref = &stack;
        let tiers_ref = &tiers;
        let parasitics_ref = &parasitics;
        let clock_template = clock_spec(period, Some(&clock_tree));
        let mut eval = |nl: &Netlist| {
            timer.update(&timing_context(
                nl,
                stack_ref,
                tiers_ref,
                parasitics_ref,
                clock_template.clone(),
            ))
        };
        let _ = m3d_opt::resize_for_timing(&mut netlist, 0.0, 4, &mut eval);
        let _ = m3d_opt::resize_for_power(&mut netlist, period * 0.15, 3, &mut eval);
    }

    let sta = {
        let _s = finish_span.child("sta_signoff");
        timer.update(&timing_context(
            &netlist,
            &stack,
            &tiers,
            &parasitics,
            clock_spec(period, Some(&clock_tree)),
        ))
    };
    record_timer(&obs, &timer);
    let power = analyze_power(
        &netlist,
        &stack,
        &tiers,
        &parasitics,
        Some(&clock_tree),
        &PowerConfig {
            input_activity: options.input_activity,
            frequency_ghz: 1.0 / period,
            input_probability: 0.5,
        },
    );

    Implementation {
        config,
        frequency_ghz: 1.0 / period,
        netlist,
        stack,
        tiers,
        floorplan: fp,
        placement,
        global_placement,
        routing,
        clock_tree,
        sta,
        power,
        utilization: options.utilization,
        eco: None,
        timing_assignment: None,
    }
}

/// The 2-D flow with one re-implementation pass when sizing grew the
/// design (the paper's 9-track "over-correction" effect).
fn implement_2d(
    mut netlist: Netlist,
    config: Config,
    stack: TierStack,
    tiers: Vec<Tier>,
    period: f64,
    options: &FlowOptions,
) -> Implementation {
    let obs = options.obs.clone();
    let mut pass = 0;
    loop {
        pass += 1;
        let pass_span = obs.span("impl2d");
        let fp = Floorplan::new(&netlist, &stack, &tiers, options.utilization);
        let global_placement = {
            let _s = pass_span.child("global_place");
            global_place(&netlist, &fp, &options.placer)
        };
        let (placement, legal_stats) = {
            let _s = pass_span.child("legalize");
            legalize_with_stats(&netlist, &global_placement, &fp, &stack, &tiers)
        };
        record_legalize(&obs, &legal_stats);
        let routing = {
            let _s = pass_span.child("route");
            global_route(&netlist, &placement, &tiers, &stack, &options.route)
        };
        record_routing(&obs, &routing);
        let (parasitics, px) = {
            let _s = pass_span.child("extract");
            extract_parasitics_with_stats(&netlist, &placement, &stack, Some(&routing))
        };
        record_extract(&obs, &px);
        let clock_tree = {
            let _s = pass_span.child("cts");
            synthesize(
                &netlist,
                &placement,
                &tiers,
                &stack,
                CtsMode::Flat2d,
                &options.cts,
            )
        };
        obs.counter_add("cts/buffers", clock_tree.buffer_count() as u64);
        let mut timer = Timer::new();
        let changed = {
            let _s = pass_span.child("sizing");
            let stack_ref = &stack;
            let tiers_ref = &tiers;
            let parasitics_ref = &parasitics;
            let clock_template = clock_spec(period, Some(&clock_tree));
            let mut eval = |nl: &Netlist| {
                timer.update(&timing_context(
                    nl,
                    stack_ref,
                    tiers_ref,
                    parasitics_ref,
                    clock_template.clone(),
                ))
            };
            let up = m3d_opt::resize_for_timing(&mut netlist, 0.0, 4, &mut eval);
            let down = m3d_opt::resize_for_power(&mut netlist, period * 0.25, 2, &mut eval);
            up.cells_changed + down.cells_changed
        };

        // Re-implement once if sizing moved a meaningful chunk of area;
        // otherwise sign off this pass.
        if pass == 1 && changed > netlist.gate_count() / 20 {
            record_timer(&obs, &timer);
            continue;
        }

        let sta = {
            let _s = pass_span.child("sta_signoff");
            timer.update(&timing_context(
                &netlist,
                &stack,
                &tiers,
                &parasitics,
                clock_spec(period, Some(&clock_tree)),
            ))
        };
        record_timer(&obs, &timer);
        let power = analyze_power(
            &netlist,
            &stack,
            &tiers,
            &parasitics,
            Some(&clock_tree),
            &PowerConfig {
                input_activity: options.input_activity,
                frequency_ghz: 1.0 / period,
                input_probability: 0.5,
            },
        );
        return Implementation {
            config,
            frequency_ghz: 1.0 / period,
            netlist,
            stack,
            tiers,
            floorplan: fp,
            placement,
            global_placement,
            routing,
            clock_tree,
            sta,
            power,
            utilization: options.utilization,
            eco: None,
            timing_assignment: None,
        };
    }
}

/// Fixed ladder of period multipliers evaluated around the Newton
/// estimate during the fmax sweep. Constant (never derived from the
/// worker count) so the candidate set — and with it the sweep's result —
/// is identical at any thread count.
const FMAX_LADDER: [f64; 5] = [1.18, 1.08, 1.0, 0.92, 0.85];

/// Sweeps the clock target to find the maximum achievable frequency of a
/// configuration — the paper's criterion: WNS no worse than ~`tolerance ×
/// period` (5–7 %).
///
/// Structure: one sequential probe run at `start_ghz` yields a Newton
/// period estimate (`period - 0.85 × WNS`); a fixed ladder of candidate
/// periods around that estimate is then implemented **concurrently**
/// (`options.threads` workers). The winner is the highest-frequency
/// candidate that met timing, chosen by scanning candidates in ladder
/// order — a rule that depends only on the (deterministic) per-candidate
/// results, never on completion order.
///
/// Returns `(fmax_ghz, implementation_at_fmax)`.
#[must_use]
pub fn find_fmax(
    netlist: &Netlist,
    config: Config,
    options: &FlowOptions,
    start_ghz: f64,
) -> (f64, Implementation) {
    let obs = &options.obs;
    let fmax_span = obs.span("find_fmax");
    let start_period = 1.0 / start_ghz.max(0.05);
    // Each concurrent branch gets its own key prefix, so manifests never
    // mix (or race on) entries from different rungs.
    let probe_options = FlowOptions {
        obs: obs.scope("fmax/probe"),
        ..options.clone()
    };
    let probe = run_flow(netlist, config, 1.0 / start_period, &probe_options);
    let estimate = (start_period - probe.sta.wns * 0.85).max(0.02);

    let periods: Vec<f64> = FMAX_LADDER
        .iter()
        .map(|m| (estimate * m).max(0.02))
        .collect();
    let rung_options: Vec<FlowOptions> = (0..periods.len())
        .map(|i| FlowOptions {
            obs: obs.scope(&format!("fmax/rung{i}")),
            ..options.clone()
        })
        .collect();
    let rungs = m3d_par::par_invoke(
        options.threads,
        periods
            .iter()
            .zip(&rung_options)
            .map(|(&p, o)| move || run_flow(netlist, config, 1.0 / p, o))
            .collect(),
    );

    // Highest met frequency among the probe and the ladder. Candidate
    // order is fixed, and ties are impossible (all periods differ), so the
    // selection is thread-count invariant.
    let mut best: Option<Implementation> = None;
    for imp in rungs.iter().chain(std::iter::once(&probe)) {
        if imp.sta.timing_met(options.wns_tolerance)
            && best
                .as_ref()
                .is_none_or(|b| imp.frequency_ghz > b.frequency_ghz)
        {
            best = Some(imp.clone());
        }
    }
    drop(fmax_span);
    match best {
        Some(imp) => (imp.frequency_ghz, imp),
        None => {
            // Never met: take one more Newton step from the most relaxed
            // rung and report that attempt (mirrors the paper's "report
            // the most relaxed implementation" behaviour).
            let relaxed = (periods[0] - rungs[0].sta.wns * 0.85).max(0.02);
            let relaxed_options = FlowOptions {
                obs: obs.scope("fmax/relaxed"),
                ..options.clone()
            };
            let imp = run_flow(netlist, config, 1.0 / relaxed, &relaxed_options);
            (1.0 / relaxed, imp)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netgen::Benchmark;

    fn quick_options() -> FlowOptions {
        let mut o = FlowOptions::default();
        o.placer.iterations = 8;
        o
    }

    #[test]
    fn two_d_flow_produces_complete_implementation() {
        let n = Benchmark::Aes.generate(0.02, 31);
        let imp = run_flow(&n, Config::TwoD12T, 1.0, &quick_options());
        assert!(imp.sta.endpoints > 0);
        assert!(imp.power.total_mw() > 0.0);
        assert!(imp.routing.total_wirelength_um > 0.0);
        assert_eq!(imp.routing.total_mivs, 0);
        assert!(imp.clock_tree.buffer_count() > 0);
        assert!(imp.floorplan.die.area() > 0.0);
    }

    #[test]
    fn hetero_flow_uses_both_tiers_and_mivs() {
        let n = Benchmark::Aes.generate(0.02, 31);
        let imp = run_flow(&n, Config::Hetero3d, 1.0, &quick_options());
        let top = imp.tiers.iter().filter(|t| **t == Tier::Top).count();
        let bottom = imp.tiers.iter().filter(|t| **t == Tier::Bottom).count();
        assert!(top > 0 && bottom > 0, "top {top} bottom {bottom}");
        assert!(imp.routing.total_mivs > 0);
        assert!(imp.timing_assignment.is_some());
        assert!(imp.eco.is_some());
    }

    #[test]
    fn hetero_footprint_smaller_than_2d() {
        let n = Benchmark::Aes.generate(0.02, 31);
        let d2 = run_flow(&n, Config::TwoD12T, 1.0, &quick_options());
        let h3 = run_flow(&n, Config::Hetero3d, 1.0, &quick_options());
        assert!(
            h3.floorplan.die.area() < 0.75 * d2.floorplan.die.area(),
            "hetero {} vs 2d {}",
            h3.floorplan.die.area(),
            d2.floorplan.die.area()
        );
    }

    #[test]
    fn twelve_track_meets_tighter_timing_than_nine() {
        let n = Benchmark::Aes.generate(0.02, 31);
        let f = 1.2;
        let fast = run_flow(&n, Config::TwoD12T, f, &quick_options());
        let slow = run_flow(&n, Config::TwoD9T, f, &quick_options());
        assert!(
            fast.sta.wns > slow.sta.wns,
            "12T wns {} vs 9T wns {}",
            fast.sta.wns,
            slow.sta.wns
        );
    }

    #[test]
    fn find_fmax_returns_met_implementation() {
        let n = Benchmark::Aes.generate(0.015, 31);
        let (f, imp) = find_fmax(&n, Config::TwoD12T, &quick_options(), 1.0);
        assert!(f > 0.0);
        assert!(
            imp.sta.timing_met(FlowOptions::default().wns_tolerance) || imp.sta.wns > -0.2,
            "fmax implementation should be near-met (wns {})",
            imp.sta.wns
        );
    }
}
