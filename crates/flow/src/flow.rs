use crate::config::{Config, FlowOptions};
use crate::error::FlowError;
use crate::ppac::Ppac;
use crate::stage::{run_from_base, BaseDesign, FlowState, PseudoCheckpoint};
use m3d_cost::CostModel;
use m3d_cts::ClockTree;
use m3d_netlist::Netlist;
use m3d_partition::{EcoOutcome, TimingAssignment};
use m3d_place::{Floorplan, Placement};
use m3d_power::PowerResult;
use m3d_route::RoutingResult;
use m3d_sta::StaResult;
use m3d_tech::{TechContext, Tier, TierStack};
use std::sync::Arc;

/// A finished implementation of one configuration: a read-only view over
/// the final [`m3d_db::DesignDb`] snapshot the pipeline produced. Every
/// artifact is behind an `Arc`, so cloning an implementation (the fmax
/// sweep keeps several alive) is O(1).
#[derive(Debug, Clone)]
pub struct Implementation {
    /// Which configuration this is.
    pub config: Config,
    /// The technology scenario (stacking style and corner set) the
    /// run was signed off under.
    pub tech: TechContext,
    /// Target clock frequency, GHz.
    pub frequency_ghz: f64,
    /// The (optimized: buffered + resized) netlist.
    pub netlist: Arc<Netlist>,
    /// Technology binding.
    pub stack: Arc<TierStack>,
    /// Tier of every cell.
    pub tiers: Arc<Vec<Tier>>,
    /// Die outline and macro slots.
    pub floorplan: Arc<Floorplan>,
    /// Legalized placement.
    pub placement: Arc<Placement>,
    /// The pre-legalization (refined global) placement — the seed used
    /// for incremental re-finish passes.
    pub global_placement: Arc<Placement>,
    /// Routing result.
    pub routing: Arc<RoutingResult>,
    /// Synthesized clock tree.
    pub clock_tree: Arc<ClockTree>,
    /// Sign-off timing.
    pub sta: Arc<StaResult>,
    /// Sign-off power.
    pub power: Arc<PowerResult>,
    /// Target utilization the floorplans were sized for.
    pub utilization: f64,
    /// Repartitioning outcome (heterogeneous flow only).
    pub eco: Option<EcoOutcome>,
    /// Timing-based partitioning outcome (heterogeneous flow only).
    pub timing_assignment: Option<TimingAssignment>,
}

impl Implementation {
    /// Rolls the implementation up into the paper's PPAC metric set.
    #[must_use]
    pub fn ppac(&self, cost: &CostModel) -> Ppac {
        Ppac::from_implementation(self, cost)
    }

    /// Assembles the read-only view from a finished pipeline state,
    /// sharing every artifact with the database (no copies).
    pub(crate) fn from_state(
        state: &FlowState,
        options: &FlowOptions,
    ) -> Result<Implementation, FlowError> {
        fn need<T>(v: Option<T>, what: &'static str) -> Result<T, FlowError> {
            v.ok_or(FlowError::MissingStageOutput {
                stage: "assemble",
                what,
            })
        }
        let db = state.db();
        Ok(Implementation {
            config: state.config(),
            tech: options.tech,
            frequency_ghz: 1.0 / state.period_ns(),
            netlist: db.netlist_arc(),
            stack: db.stack_arc(),
            tiers: db.tiers_arc(),
            floorplan: need(db.floorplan_arc(), "floorplan")?,
            placement: need(db.placement_arc(), "placement")?,
            global_placement: need(db.global_placement_arc(), "global placement")?,
            routing: need(db.routing_arc(), "routing")?,
            clock_tree: need(db.clock_tree_arc(), "clock tree")?,
            sta: need(db.sta_arc(), "sign-off timing")?,
            power: need(db.power_arc(), "sign-off power")?,
            utilization: options.utilization,
            eco: state.eco.clone(),
            timing_assignment: state.timing_assignment.clone(),
        })
    }
}

/// Runs the complete flow for one configuration at a target frequency,
/// reporting failures as typed [`FlowError`]s.
///
/// 2-D configurations go through floorplan → place → route → CTS → STA →
/// sizing (and a re-implementation pass when sizing grew the design).
/// 3-D configurations add the pseudo-3-D stage, (optionally timing-based)
/// partitioning, tier legalization, 3-D CTS and (optionally) the
/// repartitioning ECO.
///
/// This is a thin adapter over [`crate::FlowSession`]: callers running
/// more than one command against the same netlist should build a session
/// once and query it, so the expensive prefix work is shared.
///
/// # Errors
///
/// Returns [`FlowError::InvalidFrequency`] / [`FlowError::InvalidNetlist`]
/// for bad inputs and propagates any stage failure.
pub fn try_run_flow(
    netlist: &Netlist,
    config: Config,
    frequency_ghz: f64,
    options: &FlowOptions,
) -> Result<Implementation, FlowError> {
    if !frequency_ghz.is_finite() || frequency_ghz <= 0.0 {
        return Err(FlowError::InvalidFrequency { frequency_ghz });
    }
    crate::FlowSession::builder(netlist)
        .options(options.clone())
        .build()?
        .run(config, frequency_ghz)
}

/// Fixed ladder of period multipliers evaluated around the Newton
/// estimate during the fmax sweep. Constant (never derived from the
/// worker count) so the candidate set — and with it the sweep's result —
/// is identical at any thread count.
const FMAX_LADDER: [f64; 5] = [1.18, 1.08, 1.0, 0.92, 0.85];

/// [`try_find_fmax`] over an already-prepared base (and, for 3-D
/// configurations, an already-computed pseudo checkpoint): the probe and
/// every ladder rung fork from the same snapshots instead of redoing the
/// shared prefix.
pub(crate) fn fmax_from_base(
    base: &BaseDesign,
    pseudo: Option<&PseudoCheckpoint>,
    config: Config,
    options: &FlowOptions,
    start_ghz: f64,
) -> Result<(f64, Implementation), FlowError> {
    let obs = &options.obs;
    let fmax_span = obs.span("find_fmax");
    let start_period = 1.0 / start_ghz.max(0.05);
    // Each concurrent branch gets its own key prefix, so manifests never
    // mix (or race on) entries from different rungs.
    let probe_options = options.fork_for("fmax/probe");
    let probe = run_from_base(base, pseudo, config, 1.0 / start_period, &probe_options)?;
    let estimate = (start_period - probe.sta.wns * 0.85).max(0.02);

    let periods: Vec<f64> = FMAX_LADDER
        .iter()
        .map(|m| (estimate * m).max(0.02))
        .collect();
    let rung_options: Vec<FlowOptions> = (0..periods.len())
        .map(|i| options.fork_for(&format!("fmax/rung{i}")))
        .collect();
    let rung_results = m3d_par::par_invoke(
        options.threads,
        periods
            .iter()
            .zip(&rung_options)
            .map(|(&p, o)| move || run_from_base(base, pseudo, config, 1.0 / p, o))
            .collect(),
    );
    let mut rungs = Vec::with_capacity(rung_results.len());
    for r in rung_results {
        rungs.push(r?);
    }

    // Highest met frequency among the probe and the ladder. Candidate
    // order is fixed, and ties are impossible (all periods differ), so the
    // selection is thread-count invariant.
    let mut best: Option<&Implementation> = None;
    for imp in rungs.iter().chain(std::iter::once(&probe)) {
        if imp.sta.timing_met(options.wns_tolerance)
            && best.is_none_or(|b| imp.frequency_ghz > b.frequency_ghz)
        {
            best = Some(imp);
        }
    }
    let best = best.cloned();
    drop(fmax_span);
    match best {
        Some(imp) => Ok((imp.frequency_ghz, imp)),
        None => {
            // Never met: take one more Newton step from the most relaxed
            // rung and report that attempt (mirrors the paper's "report
            // the most relaxed implementation" behaviour).
            let relaxed = (periods[0] - rungs[0].sta.wns * 0.85).max(0.02);
            let relaxed_options = options.fork_for("fmax/relaxed");
            let imp = run_from_base(base, pseudo, config, 1.0 / relaxed, &relaxed_options)?;
            Ok((1.0 / relaxed, imp))
        }
    }
}

/// Sweeps the clock target to find the maximum achievable frequency of a
/// configuration — the paper's criterion: WNS no worse than ~`tolerance ×
/// period` (5–7 %).
///
/// Structure: the base (and, for 3-D configurations, the pseudo-3-D
/// checkpoint) is prepared once; one sequential probe run at `start_ghz`
/// yields a Newton period estimate (`period - 0.85 × WNS`); a fixed
/// ladder of candidate periods around that estimate is then implemented
/// **concurrently** (`options.threads` workers), every rung forking from
/// the same snapshots. The winner is the highest-frequency candidate that
/// met timing, chosen by scanning candidates in ladder order — a rule
/// that depends only on the (deterministic) per-candidate results, never
/// on completion order.
///
/// Returns `(fmax_ghz, implementation_at_fmax)`.
///
/// # Errors
///
/// Propagates the first [`FlowError`] any probe or rung reports.
pub fn try_find_fmax(
    netlist: &Netlist,
    config: Config,
    options: &FlowOptions,
    start_ghz: f64,
) -> Result<(f64, Implementation), FlowError> {
    crate::FlowSession::builder(netlist)
        .options(options.clone())
        .build()?
        .fmax(config, start_ghz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{prepare_base, pseudo_checkpoint};
    use m3d_netgen::Benchmark;

    fn quick_options() -> FlowOptions {
        let mut o = FlowOptions::default();
        o.placer_mut().iterations = 8;
        o
    }

    fn run(n: &Netlist, c: Config, f: f64, o: &FlowOptions) -> Implementation {
        try_run_flow(n, c, f, o).expect("flow")
    }

    #[test]
    fn two_d_flow_produces_complete_implementation() {
        let n = Benchmark::Aes.generate(0.02, 31);
        let imp = run(&n, Config::TwoD12T, 1.0, &quick_options());
        assert!(imp.sta.endpoints > 0);
        assert!(imp.power.total_mw() > 0.0);
        assert!(imp.routing.total_wirelength_um > 0.0);
        assert_eq!(imp.routing.total_mivs, 0);
        assert!(imp.clock_tree.buffer_count() > 0);
        assert!(imp.floorplan.die.area() > 0.0);
    }

    #[test]
    fn hetero_flow_uses_both_tiers_and_mivs() {
        let n = Benchmark::Aes.generate(0.02, 31);
        let imp = run(&n, Config::Hetero3d, 1.0, &quick_options());
        let top = imp.tiers.iter().filter(|t| **t == Tier::Top).count();
        let bottom = imp.tiers.iter().filter(|t| **t == Tier::Bottom).count();
        assert!(top > 0 && bottom > 0, "top {top} bottom {bottom}");
        assert!(imp.routing.total_mivs > 0);
        assert!(imp.timing_assignment.is_some());
        assert!(imp.eco.is_some());
    }

    #[test]
    fn hetero_footprint_smaller_than_2d() {
        let n = Benchmark::Aes.generate(0.02, 31);
        let d2 = run(&n, Config::TwoD12T, 1.0, &quick_options());
        let h3 = run(&n, Config::Hetero3d, 1.0, &quick_options());
        assert!(
            h3.floorplan.die.area() < 0.75 * d2.floorplan.die.area(),
            "hetero {} vs 2d {}",
            h3.floorplan.die.area(),
            d2.floorplan.die.area()
        );
    }

    #[test]
    fn twelve_track_meets_tighter_timing_than_nine() {
        let n = Benchmark::Aes.generate(0.02, 31);
        let f = 1.2;
        let fast = run(&n, Config::TwoD12T, f, &quick_options());
        let slow = run(&n, Config::TwoD9T, f, &quick_options());
        assert!(
            fast.sta.wns > slow.sta.wns,
            "12T wns {} vs 9T wns {}",
            fast.sta.wns,
            slow.sta.wns
        );
    }

    #[test]
    fn find_fmax_returns_met_implementation() {
        let n = Benchmark::Aes.generate(0.015, 31);
        let (f, imp) = try_find_fmax(&n, Config::TwoD12T, &quick_options(), 1.0).expect("fmax");
        assert!(f > 0.0);
        assert!(
            imp.sta.timing_met(FlowOptions::default().wns_tolerance) || imp.sta.wns > -0.2,
            "fmax implementation should be near-met (wns {})",
            imp.sta.wns
        );
    }

    #[test]
    fn try_run_flow_rejects_nonpositive_frequency() {
        let n = Benchmark::Aes.generate(0.02, 31);
        for bad in [0.0, -1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = try_run_flow(&n, Config::TwoD12T, bad, &quick_options()).unwrap_err();
            assert!(
                matches!(err, FlowError::InvalidFrequency { .. }),
                "{bad} should be rejected as a frequency"
            );
        }
    }

    #[test]
    fn shared_checkpoints_reproduce_the_standalone_run() {
        // A run forked from an externally computed base + pseudo
        // checkpoint must be bit-identical to the self-contained one.
        let n = Benchmark::Aes.generate(0.02, 31);
        let options = quick_options();
        let solo = run(&n, Config::Hetero3d, 1.0, &options);
        let base = prepare_base(&n, &options).expect("valid netlist");
        let pseudo = pseudo_checkpoint(&base, &options).expect("pseudo stage");
        let forked = run_from_base(&base, Some(&pseudo), Config::Hetero3d, 1.0, &options)
            .expect("forked run");
        assert_eq!(solo.tiers, forked.tiers);
        assert_eq!(solo.sta.wns.to_bits(), forked.sta.wns.to_bits());
        assert_eq!(solo.sta.tns.to_bits(), forked.sta.tns.to_bits());
        assert_eq!(
            solo.power.total_mw().to_bits(),
            forked.power.total_mw().to_bits()
        );
        assert_eq!(solo.placement.positions, forked.placement.positions);
    }
}
