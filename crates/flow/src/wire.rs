//! Wire-format types: the serializable request/response vocabulary of
//! the flow service.
//!
//! Everything here round-trips through [`m3d_json`] losslessly: floats
//! are written in shortest-roundtrip form (parse back bit for bit),
//! enums as lowercase wire names, and integers exactly up to 2^53 (JSON
//! numbers are doubles on the wire). The one deliberate exception is
//! [`FlowOptions::obs`]: a telemetry handle is process state, not
//! request state, so it never crosses the wire and deserializes as
//! [`m3d_obs::Obs::disabled`] — which compares equal to any other
//! disabled handle.

use crate::compare::Comparison;
use crate::config::{Config, FlowOptions};
use crate::pareto::{ParetoPoint, ParetoSummary, MAX_PARETO_STEPS};
use crate::ppac::{DeltaRow, Ppac};
use crate::sweep::SweepSpec;
use m3d_json::borrow;
use m3d_json::{Cur, DecodeError, FromJson, FromJsonBorrowed, Obj, ToJson, Value};
use m3d_netgen::Benchmark;
use m3d_netlist::Netlist;
use m3d_tech::{Corner, CornerSet, Drive, StackingStyle, TechContext};

// ---------------------------------------------------------------------
// leaf enums
// ---------------------------------------------------------------------
//
// Each enum has one name table shared by three surfaces: the writer,
// the owned decoder, and the borrowed (zero-copy) decoder the service
// uses on request lines.

fn config_wire_name(c: Config) -> &'static str {
    match c {
        Config::TwoD9T => "2d9t",
        Config::TwoD12T => "2d12t",
        Config::ThreeD9T => "3d9t",
        Config::ThreeD12T => "3d12t",
        Config::Hetero3d => "hetero3d",
    }
}

fn config_from_name(name: &str) -> Option<Config> {
    match name {
        "2d9t" => Some(Config::TwoD9T),
        "2d12t" => Some(Config::TwoD12T),
        "3d9t" => Some(Config::ThreeD9T),
        "3d12t" => Some(Config::ThreeD12T),
        "hetero3d" => Some(Config::Hetero3d),
        _ => None,
    }
}

const CONFIG_EXPECTED: &str = "a configuration (2d9t|2d12t|3d9t|3d12t|hetero3d)";

fn config_from_wire(cur: &Cur<'_>) -> Result<Config, DecodeError> {
    config_from_name(cur.str()?).ok_or_else(|| DecodeError::new(cur.path(), CONFIG_EXPECTED))
}

fn config_from_borrowed(cur: &borrow::Cur<'_, '_>) -> Result<Config, DecodeError> {
    config_from_name(cur.str()?).ok_or_else(|| cur.err(CONFIG_EXPECTED))
}

impl ToJson for Config {
    fn to_json(&self) -> Value {
        Value::Str(config_wire_name(*self).to_string())
    }
}

impl FromJson for Config {
    fn from_json(cur: Cur<'_>) -> Result<Self, DecodeError> {
        config_from_wire(&cur)
    }
}

fn drive_wire_name(d: Drive) -> &'static str {
    match d {
        Drive::X1 => "x1",
        Drive::X2 => "x2",
        Drive::X4 => "x4",
        Drive::X8 => "x8",
        Drive::X16 => "x16",
    }
}

fn drive_from_name(name: &str) -> Option<Drive> {
    match name {
        "x1" => Some(Drive::X1),
        "x2" => Some(Drive::X2),
        "x4" => Some(Drive::X4),
        "x8" => Some(Drive::X8),
        "x16" => Some(Drive::X16),
        _ => None,
    }
}

const DRIVE_EXPECTED: &str = "a drive (x1|x2|x4|x8|x16)";

fn drive_from_wire(cur: &Cur<'_>) -> Result<Drive, DecodeError> {
    drive_from_name(cur.str()?).ok_or_else(|| DecodeError::new(cur.path(), DRIVE_EXPECTED))
}

fn drive_from_borrowed(cur: &borrow::Cur<'_, '_>) -> Result<Drive, DecodeError> {
    drive_from_name(cur.str()?).ok_or_else(|| cur.err(DRIVE_EXPECTED))
}

fn stacking_wire_name(s: StackingStyle) -> &'static str {
    match s {
        StackingStyle::Monolithic => "monolithic",
        StackingStyle::F2fHybridBond => "f2f",
    }
}

fn stacking_from_name(name: &str) -> Option<StackingStyle> {
    match name {
        "monolithic" => Some(StackingStyle::Monolithic),
        "f2f" => Some(StackingStyle::F2fHybridBond),
        _ => None,
    }
}

const STACKING_EXPECTED: &str = "a stacking style (monolithic|f2f)";

fn stacking_from_wire(cur: &Cur<'_>) -> Result<StackingStyle, DecodeError> {
    stacking_from_name(cur.str()?).ok_or_else(|| DecodeError::new(cur.path(), STACKING_EXPECTED))
}

fn stacking_from_borrowed(cur: &borrow::Cur<'_, '_>) -> Result<StackingStyle, DecodeError> {
    stacking_from_name(cur.str()?).ok_or_else(|| cur.err(STACKING_EXPECTED))
}

fn corner_wire_name(c: Corner) -> &'static str {
    match c {
        Corner::Slow => "slow",
        Corner::Typical => "typical",
        Corner::Fast => "fast",
    }
}

fn corner_from_name(name: &str) -> Option<Corner> {
    match name {
        "slow" => Some(Corner::Slow),
        "typical" => Some(Corner::Typical),
        "fast" => Some(Corner::Fast),
        _ => None,
    }
}

const CORNER_EXPECTED: &str = "a corner (slow|typical|fast)";

fn corner_from_wire(cur: &Cur<'_>) -> Result<Corner, DecodeError> {
    corner_from_name(cur.str()?).ok_or_else(|| DecodeError::new(cur.path(), CORNER_EXPECTED))
}

fn corner_from_borrowed(cur: &borrow::Cur<'_, '_>) -> Result<Corner, DecodeError> {
    corner_from_name(cur.str()?).ok_or_else(|| cur.err(CORNER_EXPECTED))
}

/// A corner *set* collapses to one word: the two multi-corner modes plus
/// the single-corner scenarios ([`CornerSet::single`] normalizes
/// `Single(Typical)` to `Typical`, so the mapping is a bijection).
fn corner_set_wire_name(s: CornerSet) -> &'static str {
    match s {
        CornerSet::Typical => "typical",
        CornerSet::Worst => "worst",
        CornerSet::Single(c) => corner_wire_name(c),
    }
}

fn corner_set_from_name(name: &str) -> Option<CornerSet> {
    match name {
        "typical" => Some(CornerSet::Typical),
        "worst" => Some(CornerSet::Worst),
        "slow" => Some(CornerSet::Single(Corner::Slow)),
        "fast" => Some(CornerSet::Single(Corner::Fast)),
        _ => None,
    }
}

const CORNER_SET_EXPECTED: &str = "a corner set (typical|worst|slow|fast)";

fn corner_set_from_wire(cur: &Cur<'_>) -> Result<CornerSet, DecodeError> {
    corner_set_from_name(cur.str()?)
        .ok_or_else(|| DecodeError::new(cur.path(), CORNER_SET_EXPECTED))
}

fn corner_set_from_borrowed(cur: &borrow::Cur<'_, '_>) -> Result<CornerSet, DecodeError> {
    corner_set_from_name(cur.str()?).ok_or_else(|| cur.err(CORNER_SET_EXPECTED))
}

// `TechContext` lives in `m3d_tech` and the JSON traits in `m3d_json`,
// so the orphan rule forces free functions here instead of trait impls.
fn tech_to_json(tech: &TechContext) -> Value {
    Obj::new()
        .put("stacking", stacking_wire_name(tech.stacking))
        .put("corners", corner_set_wire_name(tech.corners))
        .build()
}

fn tech_from_wire(cur: &Cur<'_>) -> Result<TechContext, DecodeError> {
    Ok(TechContext {
        stacking: stacking_from_wire(&cur.get("stacking")?)?,
        corners: corner_set_from_wire(&cur.get("corners")?)?,
    })
}

fn tech_from_borrowed(cur: &borrow::Cur<'_, '_>) -> Result<TechContext, DecodeError> {
    Ok(TechContext {
        stacking: stacking_from_borrowed(&cur.get("stacking")?)?,
        corners: corner_set_from_borrowed(&cur.get("corners")?)?,
    })
}

fn benchmark_wire_name(b: Benchmark) -> &'static str {
    match b {
        Benchmark::Aes => "aes",
        Benchmark::Ldpc => "ldpc",
        Benchmark::Netcard => "netcard",
        Benchmark::Cpu => "cpu",
    }
}

fn benchmark_from_name(name: &str) -> Option<Benchmark> {
    match name {
        "aes" => Some(Benchmark::Aes),
        "ldpc" => Some(Benchmark::Ldpc),
        "netcard" => Some(Benchmark::Netcard),
        "cpu" => Some(Benchmark::Cpu),
        _ => None,
    }
}

const BENCHMARK_EXPECTED: &str = "a benchmark (aes|ldpc|netcard|cpu)";

fn benchmark_from_wire(cur: &Cur<'_>) -> Result<Benchmark, DecodeError> {
    benchmark_from_name(cur.str()?).ok_or_else(|| DecodeError::new(cur.path(), BENCHMARK_EXPECTED))
}

fn benchmark_from_borrowed(cur: &borrow::Cur<'_, '_>) -> Result<Benchmark, DecodeError> {
    benchmark_from_name(cur.str()?).ok_or_else(|| cur.err(BENCHMARK_EXPECTED))
}

// ---------------------------------------------------------------------
// requests
// ---------------------------------------------------------------------

/// The wire-protocol version a request speaks.
///
/// The version rides on the request as an optional `proto` field that is
/// **omitted when v1** — the same compatibility trick as the options'
/// `tech` key: every request minted before the field existed decodes
/// (and renders, and hashes) unchanged, and v1 rendered requests stay
/// byte-identical. Protocol v2 adds the streaming
/// [`FlowCommand::Sweep`]; unknown versions are rejected at decode with
/// a typed error at path `proto`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Proto {
    /// The original single-shot request/response protocol.
    #[default]
    V1,
    /// Adds the streaming design-space sweep.
    V2,
}

const PROTO_EXPECTED: &str = "a protocol version (1|2)";

fn proto_from_u64(v: u64) -> Option<Proto> {
    match v {
        1 => Some(Proto::V1),
        2 => Some(Proto::V2),
        _ => None,
    }
}

/// A netlist named *by recipe* rather than by value: benchmark generator
/// plus its scale/seed parameters. The generators are deterministic, so
/// a spec pins down the exact circuit — two services materializing the
/// same spec hold bit-identical netlists (and equal cache keys).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetlistSpec {
    /// Which generator.
    pub benchmark: Benchmark,
    /// Size relative to the workspace defaults.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
}

impl NetlistSpec {
    /// Largest accepted [`scale`](NetlistSpec::scale). 64 × the
    /// workspace default is ≈ 2 M gates — far past paper-class sizes;
    /// anything larger is a resource-exhaustion request, not a design
    /// (an unbounded scale saturates the generator's f64 → usize casts
    /// and dies allocating).
    pub const MAX_SCALE: f64 = 64.0;

    /// Runs the generator.
    #[must_use]
    pub fn materialize(&self) -> Netlist {
        self.benchmark.generate(self.scale, self.seed)
    }

    /// Checks the generator parameters against the bounds the wire
    /// decoder and the service enforce before any netlist is built.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] at `netlist/scale` when the scale is
    /// not a finite value in `(0, MAX_SCALE]`.
    pub fn validate(&self) -> Result<(), DecodeError> {
        if self.scale.is_finite() && self.scale > 0.0 && self.scale <= Self::MAX_SCALE {
            Ok(())
        } else {
            Err(DecodeError::new(
                "netlist/scale",
                format!("a finite scale in (0, {}]", Self::MAX_SCALE),
            ))
        }
    }
}

impl ToJson for NetlistSpec {
    fn to_json(&self) -> Value {
        Obj::new()
            .put("benchmark", benchmark_wire_name(self.benchmark))
            .put("scale", self.scale)
            .put("seed", self.seed)
            .build()
    }
}

impl FromJson for NetlistSpec {
    fn from_json(cur: Cur<'_>) -> Result<Self, DecodeError> {
        Ok(NetlistSpec {
            benchmark: benchmark_from_wire(&cur.get("benchmark")?)?,
            scale: cur.get("scale")?.f64()?,
            seed: cur.get("seed")?.u64()?,
        })
    }
}

impl FromJsonBorrowed for NetlistSpec {
    fn from_json_borrowed(cur: &borrow::Cur<'_, '_>) -> Result<Self, DecodeError> {
        Ok(NetlistSpec {
            benchmark: benchmark_from_borrowed(&cur.get("benchmark")?)?,
            scale: cur.get("scale")?.f64()?,
            seed: cur.get("seed")?.u64()?,
        })
    }
}

/// What a request asks the flow to do — the service-side mirror of the
/// library entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowCommand {
    /// Implement one configuration at a fixed target frequency.
    RunFlow {
        /// Which configuration.
        config: Config,
        /// Target clock, GHz.
        frequency_ghz: f64,
    },
    /// Sweep one configuration to its maximum met frequency.
    FindFmax {
        /// Which configuration.
        config: Config,
        /// Sweep starting point, GHz.
        start_ghz: f64,
    },
    /// Run the five-way iso-performance comparison (Tables VI/VII).
    CompareConfigs,
    /// Sweep one configuration over stacking style × sign-off corner ×
    /// frequency and return the power–performance–cost frontier.
    Pareto {
        /// Which configuration.
        config: Config,
        /// Lower frequency bound, GHz.
        freq_min_ghz: f64,
        /// Upper frequency bound, GHz.
        freq_max_ghz: f64,
        /// Grid size (1..=[`MAX_PARETO_STEPS`], endpoints inclusive).
        freq_steps: usize,
    },
    /// Sweep a design-space grid (protocol v2): the cross product of
    /// configurations × stacking styles × corners × frequencies, served
    /// as individually streamed points (see [`SweepSpec`]).
    Sweep {
        /// The grid description.
        spec: SweepSpec,
    },
}

impl FlowCommand {
    /// Validates the command's own numeric bounds (the Pareto and Sweep
    /// grids — the other commands carry no resource-shaping parameters
    /// beyond what [`FlowOptions::validate_bounds`] covers).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] naming the out-of-range member.
    pub fn validate(&self) -> Result<(), DecodeError> {
        match self {
            FlowCommand::Pareto {
                freq_min_ghz,
                freq_max_ghz,
                freq_steps,
                ..
            } => {
                let bounds_ok = freq_min_ghz.is_finite()
                    && freq_max_ghz.is_finite()
                    && *freq_min_ghz > 0.0
                    && freq_max_ghz >= freq_min_ghz;
                if !bounds_ok {
                    return Err(DecodeError::new(
                        "command/freq_min_ghz",
                        "positive finite bounds with freq_max_ghz >= freq_min_ghz",
                    ));
                }
                if !(1..=MAX_PARETO_STEPS).contains(freq_steps) {
                    return Err(DecodeError::new(
                        "command/freq_steps",
                        format!("an integer in 1..={MAX_PARETO_STEPS}"),
                    ));
                }
                Ok(())
            }
            FlowCommand::Sweep { spec } => spec.validate(),
            _ => Ok(()),
        }
    }
}

impl ToJson for FlowCommand {
    fn to_json(&self) -> Value {
        match self {
            FlowCommand::RunFlow {
                config,
                frequency_ghz,
            } => Obj::new()
                .put("op", "run_flow")
                .put("config", config.to_json())
                .put("frequency_ghz", *frequency_ghz)
                .build(),
            FlowCommand::FindFmax { config, start_ghz } => Obj::new()
                .put("op", "find_fmax")
                .put("config", config.to_json())
                .put("start_ghz", *start_ghz)
                .build(),
            FlowCommand::CompareConfigs => Obj::new().put("op", "compare_configs").build(),
            FlowCommand::Pareto {
                config,
                freq_min_ghz,
                freq_max_ghz,
                freq_steps,
            } => Obj::new()
                .put("op", "pareto")
                .put("config", config.to_json())
                .put("freq_min_ghz", *freq_min_ghz)
                .put("freq_max_ghz", *freq_max_ghz)
                .put("freq_steps", *freq_steps)
                .build(),
            FlowCommand::Sweep { spec } => Obj::new()
                .put("op", "sweep")
                .put(
                    "configs",
                    Value::Arr(spec.configs.iter().map(ToJson::to_json).collect()),
                )
                .put(
                    "stacking",
                    Value::Arr(
                        spec.stacking
                            .iter()
                            .map(|&s| Value::Str(stacking_wire_name(s).to_string()))
                            .collect(),
                    ),
                )
                .put(
                    "corners",
                    Value::Arr(
                        spec.corners
                            .iter()
                            .map(|&c| Value::Str(corner_wire_name(c).to_string()))
                            .collect(),
                    ),
                )
                .put("freq_min_ghz", spec.freq_min_ghz)
                .put("freq_max_ghz", spec.freq_max_ghz)
                .put("freq_steps", spec.freq_steps)
                .build(),
        }
    }
}

impl FromJson for FlowCommand {
    fn from_json(cur: Cur<'_>) -> Result<Self, DecodeError> {
        let op = cur.get("op")?;
        match op.str()? {
            "run_flow" => Ok(FlowCommand::RunFlow {
                config: config_from_wire(&cur.get("config")?)?,
                frequency_ghz: cur.get("frequency_ghz")?.f64()?,
            }),
            "find_fmax" => Ok(FlowCommand::FindFmax {
                config: config_from_wire(&cur.get("config")?)?,
                start_ghz: cur.get("start_ghz")?.f64()?,
            }),
            "compare_configs" => Ok(FlowCommand::CompareConfigs),
            "pareto" => Ok(FlowCommand::Pareto {
                config: config_from_wire(&cur.get("config")?)?,
                freq_min_ghz: cur.get("freq_min_ghz")?.f64()?,
                freq_max_ghz: cur.get("freq_max_ghz")?.f64()?,
                freq_steps: cur.get("freq_steps")?.usize()?,
            }),
            "sweep" => Ok(FlowCommand::Sweep {
                spec: SweepSpec {
                    configs: cur
                        .get("configs")?
                        .arr()?
                        .iter()
                        .map(config_from_wire)
                        .collect::<Result<_, _>>()?,
                    stacking: cur
                        .get("stacking")?
                        .arr()?
                        .iter()
                        .map(stacking_from_wire)
                        .collect::<Result<_, _>>()?,
                    corners: cur
                        .get("corners")?
                        .arr()?
                        .iter()
                        .map(corner_from_wire)
                        .collect::<Result<_, _>>()?,
                    freq_min_ghz: cur.get("freq_min_ghz")?.f64()?,
                    freq_max_ghz: cur.get("freq_max_ghz")?.f64()?,
                    freq_steps: cur.get("freq_steps")?.usize()?,
                },
            }),
            _ => Err(DecodeError::new(
                op.path(),
                "an op (run_flow|find_fmax|compare_configs|pareto|sweep)",
            )),
        }
    }
}

impl FromJsonBorrowed for FlowCommand {
    fn from_json_borrowed(cur: &borrow::Cur<'_, '_>) -> Result<Self, DecodeError> {
        let op = cur.get("op")?;
        match op.str()? {
            "run_flow" => Ok(FlowCommand::RunFlow {
                config: config_from_borrowed(&cur.get("config")?)?,
                frequency_ghz: cur.get("frequency_ghz")?.f64()?,
            }),
            "find_fmax" => Ok(FlowCommand::FindFmax {
                config: config_from_borrowed(&cur.get("config")?)?,
                start_ghz: cur.get("start_ghz")?.f64()?,
            }),
            "compare_configs" => Ok(FlowCommand::CompareConfigs),
            "pareto" => Ok(FlowCommand::Pareto {
                config: config_from_borrowed(&cur.get("config")?)?,
                freq_min_ghz: cur.get("freq_min_ghz")?.f64()?,
                freq_max_ghz: cur.get("freq_max_ghz")?.f64()?,
                freq_steps: cur.get("freq_steps")?.usize()?,
            }),
            "sweep" => {
                let configs_cur = cur.get("configs")?;
                let configs = configs_cur
                    .arr()?
                    .iter()
                    .map(config_from_borrowed)
                    .collect::<Result<_, _>>()?;
                let stacking_cur = cur.get("stacking")?;
                let stacking = stacking_cur
                    .arr()?
                    .iter()
                    .map(stacking_from_borrowed)
                    .collect::<Result<_, _>>()?;
                let corners_cur = cur.get("corners")?;
                let corners = corners_cur
                    .arr()?
                    .iter()
                    .map(corner_from_borrowed)
                    .collect::<Result<_, _>>()?;
                Ok(FlowCommand::Sweep {
                    spec: SweepSpec {
                        configs,
                        stacking,
                        corners,
                        freq_min_ghz: cur.get("freq_min_ghz")?.f64()?,
                        freq_max_ghz: cur.get("freq_max_ghz")?.f64()?,
                        freq_steps: cur.get("freq_steps")?.usize()?,
                    },
                })
            }
            _ => Err(op.err("an op (run_flow|find_fmax|compare_configs|pareto|sweep)")),
        }
    }
}

/// One unit of service work: which netlist, which knobs, which command.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRequest {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The design to implement.
    pub netlist: NetlistSpec,
    /// Flow knobs (the checkpoint-cache key includes their fingerprint).
    pub options: FlowOptions,
    /// What to do.
    pub command: FlowCommand,
    /// Per-request deadline in milliseconds, measured from acceptance;
    /// a request still queued past its deadline is rejected, not run.
    pub deadline_ms: Option<u64>,
    /// Protocol version. Rendered only when ≥ v2, so v1 requests stay
    /// byte-identical to those minted before the field existed.
    pub proto: Proto,
}

impl ToJson for FlowRequest {
    fn to_json(&self) -> Value {
        let mut o = Obj::new()
            .put("id", self.id)
            .put("netlist", self.netlist.to_json())
            .put("options", self.options.to_json())
            .put("command", self.command.to_json());
        if let Some(d) = self.deadline_ms {
            o = o.put("deadline_ms", d);
        }
        if self.proto == Proto::V2 {
            o = o.put("proto", 2u64);
        }
        o.build()
    }
}

impl FlowRequest {
    /// Validates the numeric bounds the wire decoder and the service
    /// enforce at admission: generator parameters that would exhaust
    /// memory and option knobs that would size internal grids and
    /// worklists beyond anything the flow is designed for. Structural
    /// shape is the type system's job; this is the range half, and it
    /// runs on in-process requests too — a hand-built request is held
    /// to the same bounds as one off the wire.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] naming the out-of-range member.
    pub fn validate(&self) -> Result<(), DecodeError> {
        self.netlist.validate()?;
        self.options.validate_bounds()?;
        self.command.validate()?;
        if matches!(self.command, FlowCommand::Sweep { .. }) && self.proto == Proto::V1 {
            return Err(DecodeError::new("proto", "protocol version 2 for op sweep"));
        }
        Ok(())
    }

    /// Decomposes a v2 sweep into its equivalent v1 single-shot
    /// requests, one per grid point in point order. Each point request
    /// carries the parent's id, netlist and deadline; its options are
    /// the parent's with the point's technology scenario folded in —
    /// exactly what a v1 client exploring the grid by hand would send,
    /// so point cache keys, checkpoints and reports all match the
    /// single-shot path bit for bit.
    ///
    /// Returns `None` for non-sweep commands.
    #[must_use]
    pub fn decompose_sweep(&self) -> Option<Vec<FlowRequest>> {
        let FlowCommand::Sweep { spec } = &self.command else {
            return None;
        };
        Some(
            spec.points()
                .iter()
                .map(|p| {
                    let mut options = self.options.clone();
                    options.tech = p.tech();
                    FlowRequest {
                        id: self.id,
                        netlist: self.netlist,
                        options,
                        command: FlowCommand::RunFlow {
                            config: p.config,
                            frequency_ghz: p.frequency_ghz,
                        },
                        deadline_ms: self.deadline_ms,
                        proto: Proto::V1,
                    }
                })
                .collect(),
        )
    }
}

impl FromJson for FlowRequest {
    fn from_json(cur: Cur<'_>) -> Result<Self, DecodeError> {
        let request = FlowRequest {
            id: cur.get("id")?.u64()?,
            netlist: NetlistSpec::from_json(cur.get("netlist")?)?,
            options: FlowOptions::from_json(cur.get("options")?)?,
            command: FlowCommand::from_json(cur.get("command")?)?,
            deadline_ms: cur.opt("deadline_ms").map(|d| d.u64()).transpose()?,
            proto: match cur.opt("proto") {
                None => Proto::V1,
                Some(p) => proto_from_u64(p.u64()?)
                    .ok_or_else(|| DecodeError::new(p.path(), PROTO_EXPECTED))?,
            },
        };
        request.validate()?;
        Ok(request)
    }
}

/// The service's hot decode path: same shape, same validation, same
/// errors as the owned impl, but every string comparison reads straight
/// from the request buffer — no per-field allocation on success.
impl FromJsonBorrowed for FlowRequest {
    fn from_json_borrowed(cur: &borrow::Cur<'_, '_>) -> Result<Self, DecodeError> {
        let request = FlowRequest {
            id: cur.get("id")?.u64()?,
            netlist: NetlistSpec::from_json_borrowed(&cur.get("netlist")?)?,
            options: FlowOptions::from_json_borrowed(&cur.get("options")?)?,
            command: FlowCommand::from_json_borrowed(&cur.get("command")?)?,
            deadline_ms: cur.opt("deadline_ms").map(|d| d.u64()).transpose()?,
            proto: match cur.opt("proto") {
                None => Proto::V1,
                Some(p) => proto_from_u64(p.u64()?).ok_or_else(|| p.err(PROTO_EXPECTED))?,
            },
        };
        request.validate()?;
        Ok(request)
    }
}

// ---------------------------------------------------------------------
// options
// ---------------------------------------------------------------------

/// Largest bin count per axis any grid-shaped knob may request (grids
/// are `bins²`; 4096² cells is already far past every shipped config).
const MAX_BINS: usize = 4_096;
/// Cap on iteration/sweep counts (a worklist length, not a grid).
const MAX_SWEEPS: usize = 1 << 20;
/// Cap on fanout limits.
const MAX_FANOUT: usize = 1 << 20;
/// Cap on the per-request thread count.
const MAX_THREADS: usize = 1_024;

fn in_unit(path: &str, v: f64, zero_ok: bool) -> Result<(), DecodeError> {
    let ok = v.is_finite() && v <= 1.0 && (v > 0.0 || (zero_ok && v == 0.0));
    if ok {
        Ok(())
    } else {
        let lo = if zero_ok { "[0" } else { "(0" };
        Err(DecodeError::new(path, format!("a fraction in {lo}, 1]")))
    }
}

fn finite(path: &str, v: f64) -> Result<(), DecodeError> {
    if v.is_finite() {
        Ok(())
    } else {
        Err(DecodeError::new(path, "a finite number"))
    }
}

fn bounded(path: &str, v: usize, min: usize, max: usize) -> Result<(), DecodeError> {
    if (min..=max).contains(&v) {
        Ok(())
    } else {
        Err(DecodeError::new(
            path,
            format!("an integer in {min}..={max}"),
        ))
    }
}

impl FlowOptions {
    /// Checks every resource-shaping knob against the service bounds,
    /// reporting the first violation with its request-relative path
    /// (e.g. `options/placer/bins`). All shipped presets and every
    /// value the wire decoder accepts satisfy these; what they exclude
    /// is a request whose knobs would size an allocation past what the
    /// flow is designed for.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] naming the out-of-range member.
    pub fn validate_bounds(&self) -> Result<(), DecodeError> {
        in_unit("options/utilization", self.utilization, false)?;
        bounded(
            "options/placer/iterations",
            self.placer.iterations,
            0,
            MAX_SWEEPS,
        )?;
        bounded(
            "options/placer/relax_sweeps",
            self.placer.relax_sweeps,
            0,
            MAX_SWEEPS,
        )?;
        bounded("options/placer/bins", self.placer.bins, 1, MAX_BINS)?;
        in_unit("options/placer/target_fill", self.placer.target_fill, false)?;
        bounded("options/route/bins", self.route.bins, 1, MAX_BINS)?;
        finite(
            "options/route/congestion_exponent",
            self.route.congestion_exponent,
        )?;
        finite(
            "options/route/overflow_threshold",
            self.route.overflow_threshold,
        )?;
        bounded("options/cts/max_fanout", self.cts.max_fanout, 1, MAX_FANOUT)?;
        in_unit(
            "options/timing_partition_cap",
            self.timing_partition_cap,
            true,
        )?;
        in_unit("options/input_activity", self.input_activity, true)?;
        bounded("options/max_fanout", self.max_fanout, 1, MAX_FANOUT)?;
        bounded("options/partition_bins", self.partition_bins, 1, MAX_BINS)?;
        finite("options/wns_tolerance", self.wns_tolerance)?;
        bounded("options/threads", self.threads, 0, MAX_THREADS)?;
        Ok(())
    }
}

impl ToJson for FlowOptions {
    fn to_json(&self) -> Value {
        // The `tech` key is omitted for the default scenario, mirroring
        // the fingerprint's Debug rendering: requests minted before the
        // technology axis existed decode (and hash) unchanged, and the
        // default scenario's rendered requests stay byte-identical.
        let mut o = Obj::new()
            .put("utilization", self.utilization)
            .put("seed", self.seed)
            .put(
                "placer",
                Obj::new()
                    .put("iterations", self.placer.iterations)
                    .put("relax_sweeps", self.placer.relax_sweeps)
                    .put("bins", self.placer.bins)
                    .put("target_fill", self.placer.target_fill)
                    .put("seed", self.placer.seed)
                    .build(),
            )
            .put(
                "route",
                Obj::new()
                    .put("bins", self.route.bins)
                    .put("congestion_exponent", self.route.congestion_exponent)
                    .put("overflow_threshold", self.route.overflow_threshold)
                    .build(),
            )
            .put(
                "cts",
                Obj::new()
                    .put("max_fanout", self.cts.max_fanout)
                    .put("fast_drive", drive_wire_name(self.cts.fast_drive))
                    .put("slow_drive", drive_wire_name(self.cts.slow_drive))
                    .build(),
            )
            .put("timing_partition_cap", self.timing_partition_cap)
            .put("enable_timing_partition", self.enable_timing_partition)
            .put("enable_3d_cts", self.enable_3d_cts)
            .put("enable_repartition", self.enable_repartition)
            .put("input_activity", self.input_activity)
            .put("max_fanout", self.max_fanout)
            .put("partition_bins", self.partition_bins)
            .put("wns_tolerance", self.wns_tolerance)
            .put("threads", self.threads);
        if !self.tech.is_default() {
            o = o.put("tech", tech_to_json(&self.tech));
        }
        o.build()
    }
}

impl FromJson for FlowOptions {
    fn from_json(cur: Cur<'_>) -> Result<Self, DecodeError> {
        let mut out = FlowOptions {
            utilization: cur.get("utilization")?.f64()?,
            seed: cur.get("seed")?.u64()?,
            timing_partition_cap: cur.get("timing_partition_cap")?.f64()?,
            enable_timing_partition: cur.get("enable_timing_partition")?.bool()?,
            enable_3d_cts: cur.get("enable_3d_cts")?.bool()?,
            enable_repartition: cur.get("enable_repartition")?.bool()?,
            input_activity: cur.get("input_activity")?.f64()?,
            max_fanout: cur.get("max_fanout")?.usize()?,
            partition_bins: cur.get("partition_bins")?.usize()?,
            wns_tolerance: cur.get("wns_tolerance")?.f64()?,
            threads: cur.get("threads")?.usize()?,
            ..FlowOptions::default()
        };
        let placer = cur.get("placer")?;
        *out.placer_mut() = m3d_place::PlacerConfig {
            iterations: placer.get("iterations")?.usize()?,
            relax_sweeps: placer.get("relax_sweeps")?.usize()?,
            bins: placer.get("bins")?.usize()?,
            target_fill: placer.get("target_fill")?.f64()?,
            seed: placer.get("seed")?.u64()?,
        };
        let route = cur.get("route")?;
        *out.route_mut() = m3d_route::RouteConfig {
            bins: route.get("bins")?.usize()?,
            congestion_exponent: route.get("congestion_exponent")?.f64()?,
            overflow_threshold: route.get("overflow_threshold")?.f64()?,
        };
        let cts = cur.get("cts")?;
        *out.cts_mut() = m3d_cts::CtsConfig {
            max_fanout: cts.get("max_fanout")?.usize()?,
            fast_drive: drive_from_wire(&cts.get("fast_drive")?)?,
            slow_drive: drive_from_wire(&cts.get("slow_drive")?)?,
        };
        if let Some(tech) = cur.opt("tech") {
            out.tech = tech_from_wire(&tech)?;
        }
        Ok(out)
    }
}

impl FromJsonBorrowed for FlowOptions {
    fn from_json_borrowed(cur: &borrow::Cur<'_, '_>) -> Result<Self, DecodeError> {
        let mut out = FlowOptions {
            utilization: cur.get("utilization")?.f64()?,
            seed: cur.get("seed")?.u64()?,
            timing_partition_cap: cur.get("timing_partition_cap")?.f64()?,
            enable_timing_partition: cur.get("enable_timing_partition")?.bool()?,
            enable_3d_cts: cur.get("enable_3d_cts")?.bool()?,
            enable_repartition: cur.get("enable_repartition")?.bool()?,
            input_activity: cur.get("input_activity")?.f64()?,
            max_fanout: cur.get("max_fanout")?.usize()?,
            partition_bins: cur.get("partition_bins")?.usize()?,
            wns_tolerance: cur.get("wns_tolerance")?.f64()?,
            threads: cur.get("threads")?.usize()?,
            ..FlowOptions::default()
        };
        let placer = cur.get("placer")?;
        *out.placer_mut() = m3d_place::PlacerConfig {
            iterations: placer.get("iterations")?.usize()?,
            relax_sweeps: placer.get("relax_sweeps")?.usize()?,
            bins: placer.get("bins")?.usize()?,
            target_fill: placer.get("target_fill")?.f64()?,
            seed: placer.get("seed")?.u64()?,
        };
        let route = cur.get("route")?;
        *out.route_mut() = m3d_route::RouteConfig {
            bins: route.get("bins")?.usize()?,
            congestion_exponent: route.get("congestion_exponent")?.f64()?,
            overflow_threshold: route.get("overflow_threshold")?.f64()?,
        };
        let cts = cur.get("cts")?;
        *out.cts_mut() = m3d_cts::CtsConfig {
            max_fanout: cts.get("max_fanout")?.usize()?,
            fast_drive: drive_from_borrowed(&cts.get("fast_drive")?)?,
            slow_drive: drive_from_borrowed(&cts.get("slow_drive")?)?,
        };
        if let Some(tech) = cur.opt("tech") {
            out.tech = tech_from_borrowed(&tech)?;
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// reports
// ---------------------------------------------------------------------

/// The scalar PPAC roll-up of one implementation — everything a client
/// needs from Table VI, without the megabytes of placement/routing the
/// full [`crate::Implementation`] carries.
#[derive(Debug, Clone, PartialEq)]
pub struct PpacSummary {
    /// Configuration the metrics belong to.
    pub config: Config,
    /// Achieved/target clock frequency, GHz.
    pub frequency_ghz: f64,
    /// Die footprint, mm².
    pub footprint_mm2: f64,
    /// Total silicon area, mm².
    pub si_area_mm2: f64,
    /// Chip width, µm.
    pub chip_width_um: f64,
    /// Standard-cell density, %.
    pub density_pct: f64,
    /// Total signal wirelength, mm.
    pub wirelength_mm: f64,
    /// Monolithic inter-tier via count.
    pub mivs: usize,
    /// Net switching power, mW.
    pub switching_mw: f64,
    /// Cell-internal power, mW.
    pub internal_mw: f64,
    /// Leakage power, mW.
    pub leakage_mw: f64,
    /// Clock network power, mW.
    pub clock_mw: f64,
    /// Total power, mW.
    pub total_power_mw: f64,
    /// Worst negative slack, ns.
    pub wns_ns: f64,
    /// Total negative slack, ns.
    pub tns_ns: f64,
    /// Effective delay = period − WNS, ns.
    pub effective_delay_ns: f64,
    /// Power-delay product, pJ.
    pub pdp_pj: f64,
    /// Die cost, `10⁻⁶ C'`.
    pub die_cost_uc: f64,
    /// Cost per cm² of silicon, `10⁻⁶ C'/cm²`.
    pub cost_per_cm2_uc: f64,
    /// Performance per cost.
    pub ppc: f64,
}

impl From<&Ppac> for PpacSummary {
    fn from(p: &Ppac) -> Self {
        PpacSummary {
            config: p.config,
            frequency_ghz: p.frequency_ghz,
            footprint_mm2: p.footprint_mm2,
            si_area_mm2: p.si_area_mm2,
            chip_width_um: p.chip_width_um,
            density_pct: p.density_pct,
            wirelength_mm: p.wirelength_mm,
            mivs: p.mivs,
            switching_mw: p.power.switching_mw,
            internal_mw: p.power.internal_mw,
            leakage_mw: p.power.leakage_mw,
            clock_mw: p.power.clock_mw,
            total_power_mw: p.total_power_mw,
            wns_ns: p.wns_ns,
            tns_ns: p.tns_ns,
            effective_delay_ns: p.effective_delay_ns,
            pdp_pj: p.pdp_pj,
            die_cost_uc: p.die_cost_uc,
            cost_per_cm2_uc: p.cost_per_cm2_uc,
            ppc: p.ppc,
        }
    }
}

impl ToJson for PpacSummary {
    fn to_json(&self) -> Value {
        Obj::new()
            .put("config", self.config.to_json())
            .put("frequency_ghz", self.frequency_ghz)
            .put("footprint_mm2", self.footprint_mm2)
            .put("si_area_mm2", self.si_area_mm2)
            .put("chip_width_um", self.chip_width_um)
            .put("density_pct", self.density_pct)
            .put("wirelength_mm", self.wirelength_mm)
            .put("mivs", self.mivs)
            .put("switching_mw", self.switching_mw)
            .put("internal_mw", self.internal_mw)
            .put("leakage_mw", self.leakage_mw)
            .put("clock_mw", self.clock_mw)
            .put("total_power_mw", self.total_power_mw)
            .put("wns_ns", self.wns_ns)
            .put("tns_ns", self.tns_ns)
            .put("effective_delay_ns", self.effective_delay_ns)
            .put("pdp_pj", self.pdp_pj)
            .put("die_cost_uc", self.die_cost_uc)
            .put("cost_per_cm2_uc", self.cost_per_cm2_uc)
            .put("ppc", self.ppc)
            .build()
    }
}

impl FromJson for PpacSummary {
    fn from_json(cur: Cur<'_>) -> Result<Self, DecodeError> {
        Ok(PpacSummary {
            config: config_from_wire(&cur.get("config")?)?,
            frequency_ghz: cur.get("frequency_ghz")?.f64()?,
            footprint_mm2: cur.get("footprint_mm2")?.f64()?,
            si_area_mm2: cur.get("si_area_mm2")?.f64()?,
            chip_width_um: cur.get("chip_width_um")?.f64()?,
            density_pct: cur.get("density_pct")?.f64()?,
            wirelength_mm: cur.get("wirelength_mm")?.f64()?,
            mivs: cur.get("mivs")?.usize()?,
            switching_mw: cur.get("switching_mw")?.f64()?,
            internal_mw: cur.get("internal_mw")?.f64()?,
            leakage_mw: cur.get("leakage_mw")?.f64()?,
            clock_mw: cur.get("clock_mw")?.f64()?,
            total_power_mw: cur.get("total_power_mw")?.f64()?,
            wns_ns: cur.get("wns_ns")?.f64()?,
            tns_ns: cur.get("tns_ns")?.f64()?,
            effective_delay_ns: cur.get("effective_delay_ns")?.f64()?,
            pdp_pj: cur.get("pdp_pj")?.f64()?,
            die_cost_uc: cur.get("die_cost_uc")?.f64()?,
            cost_per_cm2_uc: cur.get("cost_per_cm2_uc")?.f64()?,
            ppc: cur.get("ppc")?.f64()?,
        })
    }
}

impl ToJson for DeltaRow {
    fn to_json(&self) -> Value {
        Obj::new()
            .put("config", self.config.to_json())
            .put("si_area", self.si_area)
            .put("density", self.density)
            .put("wirelength", self.wirelength)
            .put("total_power", self.total_power)
            .put("effective_delay", self.effective_delay)
            .put("pdp", self.pdp)
            .put("die_cost", self.die_cost)
            .put("cost_per_cm2", self.cost_per_cm2)
            .put("ppc", self.ppc)
            .put("width_um", self.width_um)
            .put("wns_ns", self.wns_ns)
            .put("tns_ns", self.tns_ns)
            .build()
    }
}

impl FromJson for DeltaRow {
    fn from_json(cur: Cur<'_>) -> Result<Self, DecodeError> {
        Ok(DeltaRow {
            config: config_from_wire(&cur.get("config")?)?,
            si_area: cur.get("si_area")?.f64()?,
            density: cur.get("density")?.f64()?,
            wirelength: cur.get("wirelength")?.f64()?,
            total_power: cur.get("total_power")?.f64()?,
            effective_delay: cur.get("effective_delay")?.f64()?,
            pdp: cur.get("pdp")?.f64()?,
            die_cost: cur.get("die_cost")?.f64()?,
            cost_per_cm2: cur.get("cost_per_cm2")?.f64()?,
            ppc: cur.get("ppc")?.f64()?,
            width_um: cur.get("width_um")?.f64()?,
            wns_ns: cur.get("wns_ns")?.f64()?,
            tns_ns: cur.get("tns_ns")?.f64()?,
        })
    }
}

/// The wire form of a [`Comparison`]: the metric tables without the full
/// implementations.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonSummary {
    /// Design name.
    pub design: String,
    /// Iso-performance target, GHz.
    pub target_ghz: f64,
    /// The heterogeneous row.
    pub hetero: PpacSummary,
    /// Every homogeneous configuration's row.
    pub homogeneous: Vec<PpacSummary>,
    /// Table VII columns.
    pub deltas: Vec<DeltaRow>,
}

impl From<&Comparison> for ComparisonSummary {
    fn from(c: &Comparison) -> Self {
        ComparisonSummary {
            design: c.design.clone(),
            target_ghz: c.target_ghz,
            hetero: PpacSummary::from(&c.hetero),
            homogeneous: c.homogeneous.iter().map(PpacSummary::from).collect(),
            deltas: c.deltas.clone(),
        }
    }
}

impl ToJson for ComparisonSummary {
    fn to_json(&self) -> Value {
        Obj::new()
            .put("design", self.design.as_str())
            .put("target_ghz", self.target_ghz)
            .put("hetero", self.hetero.to_json())
            .put(
                "homogeneous",
                Value::Arr(self.homogeneous.iter().map(ToJson::to_json).collect()),
            )
            .put(
                "deltas",
                Value::Arr(self.deltas.iter().map(ToJson::to_json).collect()),
            )
            .build()
    }
}

impl FromJson for ComparisonSummary {
    fn from_json(cur: Cur<'_>) -> Result<Self, DecodeError> {
        Ok(ComparisonSummary {
            design: cur.get("design")?.str()?.to_string(),
            target_ghz: cur.get("target_ghz")?.f64()?,
            hetero: PpacSummary::from_json(cur.get("hetero")?)?,
            homogeneous: cur
                .get("homogeneous")?
                .arr()?
                .into_iter()
                .map(PpacSummary::from_json)
                .collect::<Result<_, _>>()?,
            deltas: cur
                .get("deltas")?
                .arr()?
                .into_iter()
                .map(DeltaRow::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// A [`Comparison`] serializes as its summary (the implementations stay
/// on the server).
impl ToJson for Comparison {
    fn to_json(&self) -> Value {
        ComparisonSummary::from(self).to_json()
    }
}

impl ToJson for ParetoPoint {
    fn to_json(&self) -> Value {
        Obj::new()
            .put("stacking", stacking_wire_name(self.stacking))
            .put("corner", corner_wire_name(self.corner))
            .put("frequency_ghz", self.frequency_ghz)
            .put("total_power_mw", self.total_power_mw)
            .put("effective_delay_ns", self.effective_delay_ns)
            .put("die_cost_uc", self.die_cost_uc)
            .put("pdp_pj", self.pdp_pj)
            .put("ppc", self.ppc)
            .put("wns_ns", self.wns_ns)
            .put("timing_met", self.timing_met)
            .put("on_frontier", self.on_frontier)
            .build()
    }
}

impl FromJson for ParetoPoint {
    fn from_json(cur: Cur<'_>) -> Result<Self, DecodeError> {
        Ok(ParetoPoint {
            stacking: stacking_from_wire(&cur.get("stacking")?)?,
            corner: corner_from_wire(&cur.get("corner")?)?,
            frequency_ghz: cur.get("frequency_ghz")?.f64()?,
            total_power_mw: cur.get("total_power_mw")?.f64()?,
            effective_delay_ns: cur.get("effective_delay_ns")?.f64()?,
            die_cost_uc: cur.get("die_cost_uc")?.f64()?,
            pdp_pj: cur.get("pdp_pj")?.f64()?,
            ppc: cur.get("ppc")?.f64()?,
            wns_ns: cur.get("wns_ns")?.f64()?,
            timing_met: cur.get("timing_met")?.bool()?,
            on_frontier: cur.get("on_frontier")?.bool()?,
        })
    }
}

impl ToJson for ParetoSummary {
    fn to_json(&self) -> Value {
        Obj::new()
            .put("config", self.config.to_json())
            .put(
                "points",
                Value::Arr(self.points.iter().map(ToJson::to_json).collect()),
            )
            .build()
    }
}

impl FromJson for ParetoSummary {
    fn from_json(cur: Cur<'_>) -> Result<Self, DecodeError> {
        Ok(ParetoSummary {
            config: config_from_wire(&cur.get("config")?)?,
            points: cur
                .get("points")?
                .arr()?
                .into_iter()
                .map(ParetoPoint::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// What a successful request returns: one variant per [`FlowCommand`].
#[derive(Debug, Clone, PartialEq)]
pub enum FlowReport {
    /// Result of [`FlowCommand::RunFlow`].
    Run {
        /// PPAC roll-up of the implementation.
        ppac: PpacSummary,
    },
    /// Result of [`FlowCommand::FindFmax`].
    Fmax {
        /// Maximum met frequency, GHz.
        fmax_ghz: f64,
        /// PPAC roll-up at that frequency.
        ppac: PpacSummary,
    },
    /// Result of [`FlowCommand::CompareConfigs`].
    Compare {
        /// The five-way table.
        comparison: ComparisonSummary,
    },
    /// Result of [`FlowCommand::Pareto`].
    Pareto {
        /// The full swept point set, frontier membership marked.
        summary: ParetoSummary,
    },
    /// Result of [`FlowCommand::Sweep`] when executed in-process (the
    /// service streams the points individually instead).
    Sweep {
        /// One PPAC roll-up per grid point, in point order.
        points: Vec<PpacSummary>,
    },
}

impl FlowReport {
    /// One-line human summary — what a client prints per response when
    /// streaming results off the wire.
    #[must_use]
    pub fn headline(&self) -> String {
        match self {
            FlowReport::Run { ppac } => format!(
                "{} @ {:.2} GHz: {:.3} mW, WNS {:+.3} ns, PPC {:.2}",
                ppac.config, ppac.frequency_ghz, ppac.total_power_mw, ppac.wns_ns, ppac.ppc
            ),
            FlowReport::Fmax { fmax_ghz, ppac } => format!(
                "{} fmax {:.2} GHz: {:.3} mW, PPC {:.2}",
                ppac.config, fmax_ghz, ppac.total_power_mw, ppac.ppc
            ),
            FlowReport::Compare { comparison } => format!(
                "`{}` five-way comparison at {:.2} GHz iso-performance",
                comparison.design, comparison.target_ghz
            ),
            FlowReport::Pareto { summary } => format!(
                "{} pareto sweep: {} points, {} on the frontier",
                summary.config,
                summary.points.len(),
                summary.frontier().count()
            ),
            FlowReport::Sweep { points } => {
                format!("design-space sweep: {} points", points.len())
            }
        }
    }
}

impl ToJson for FlowReport {
    fn to_json(&self) -> Value {
        match self {
            FlowReport::Run { ppac } => Obj::new()
                .put("kind", "run")
                .put("ppac", ppac.to_json())
                .build(),
            FlowReport::Fmax { fmax_ghz, ppac } => Obj::new()
                .put("kind", "fmax")
                .put("fmax_ghz", *fmax_ghz)
                .put("ppac", ppac.to_json())
                .build(),
            FlowReport::Compare { comparison } => Obj::new()
                .put("kind", "compare")
                .put("comparison", comparison.to_json())
                .build(),
            FlowReport::Pareto { summary } => Obj::new()
                .put("kind", "pareto")
                .put("summary", summary.to_json())
                .build(),
            FlowReport::Sweep { points } => Obj::new()
                .put("kind", "sweep")
                .put(
                    "points",
                    Value::Arr(points.iter().map(ToJson::to_json).collect()),
                )
                .build(),
        }
    }
}

impl FromJson for FlowReport {
    fn from_json(cur: Cur<'_>) -> Result<Self, DecodeError> {
        let kind = cur.get("kind")?;
        match kind.str()? {
            "run" => Ok(FlowReport::Run {
                ppac: PpacSummary::from_json(cur.get("ppac")?)?,
            }),
            "fmax" => Ok(FlowReport::Fmax {
                fmax_ghz: cur.get("fmax_ghz")?.f64()?,
                ppac: PpacSummary::from_json(cur.get("ppac")?)?,
            }),
            "compare" => Ok(FlowReport::Compare {
                comparison: ComparisonSummary::from_json(cur.get("comparison")?)?,
            }),
            "pareto" => Ok(FlowReport::Pareto {
                summary: ParetoSummary::from_json(cur.get("summary")?)?,
            }),
            "sweep" => Ok(FlowReport::Sweep {
                points: cur
                    .get("points")?
                    .arr()?
                    .into_iter()
                    .map(PpacSummary::from_json)
                    .collect::<Result<_, _>>()?,
            }),
            _ => Err(DecodeError::new(
                kind.path(),
                "a kind (run|fmax|compare|pareto|sweep)",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_json::parse;

    fn roundtrip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(v: &T) {
        let text = v.to_json().render();
        let doc = parse(&text).expect("reparse");
        let back = T::from_json(Cur::root(&doc)).expect("decode");
        assert_eq!(&back, v, "wire round-trip must be lossless: {text}");
    }

    #[test]
    fn options_round_trip_default_and_modified() {
        roundtrip(&FlowOptions::default());
        let mut o = FlowOptions::pin3d_baseline();
        o.utilization = 0.65;
        o.seed = 99;
        o.placer_mut().iterations = 7;
        o.placer_mut().target_fill = 0.75;
        o.route_mut().congestion_exponent = 2.5;
        o.cts_mut().slow_drive = Drive::X8;
        o.threads = 4;
        roundtrip(&o);
    }

    #[test]
    fn request_and_report_round_trip() {
        let req = FlowRequest {
            id: 7,
            netlist: NetlistSpec {
                benchmark: Benchmark::Ldpc,
                scale: 0.013,
                seed: 11,
            },
            options: FlowOptions::default(),
            command: FlowCommand::FindFmax {
                config: Config::Hetero3d,
                start_ghz: 1.1,
            },
            deadline_ms: Some(30_000),
            proto: Proto::V1,
        };
        roundtrip(&req);
        for cfg in Config::ALL {
            roundtrip(&cfg);
        }
        let ppac = PpacSummary {
            config: Config::Hetero3d,
            frequency_ghz: 1.0 / 3.0,
            footprint_mm2: 0.123_456_789,
            si_area_mm2: 0.2,
            chip_width_um: 351.0,
            density_pct: 81.25,
            wirelength_mm: 5.5,
            mivs: 1234,
            switching_mw: 1.0,
            internal_mw: 2.0,
            leakage_mw: 0.5,
            clock_mw: 0.75,
            total_power_mw: 4.25,
            wns_ns: -0.012_345,
            tns_ns: -1.5,
            effective_delay_ns: 1.012,
            pdp_pj: 4.301,
            die_cost_uc: 3.21,
            cost_per_cm2_uc: 16.05,
            ppc: 0.072,
        };
        roundtrip(&ppac);
        roundtrip(&FlowReport::Fmax {
            fmax_ghz: 1.37,
            ppac: ppac.clone(),
        });
        let cmp = ComparisonSummary {
            design: "ldpc".into(),
            target_ghz: 1.2,
            hetero: ppac.clone(),
            homogeneous: vec![ppac.clone(), ppac],
            deltas: vec![],
        };
        roundtrip(&FlowReport::Compare { comparison: cmp });
    }

    #[test]
    fn default_options_render_without_a_tech_key() {
        // Backward compatibility: requests rendered before the
        // technology axis existed must stay byte-identical, so the
        // default scenario omits the key entirely.
        let text = FlowOptions::default().to_json().render();
        assert!(!text.contains("tech"), "default rendering leaked: {text}");
        let mut scenario = FlowOptions::default();
        scenario.tech.corners = CornerSet::Worst;
        assert!(scenario.to_json().render().contains("\"tech\""));
    }

    #[test]
    fn tech_scenarios_round_trip_owned_and_borrowed() {
        let scenarios = [
            TechContext::default(),
            TechContext {
                stacking: StackingStyle::F2fHybridBond,
                corners: CornerSet::Worst,
            },
            TechContext {
                stacking: StackingStyle::Monolithic,
                corners: CornerSet::single(Corner::Slow),
            },
            TechContext {
                stacking: StackingStyle::F2fHybridBond,
                corners: CornerSet::single(Corner::Fast),
            },
        ];
        for tech in scenarios {
            let options = FlowOptions {
                tech,
                ..FlowOptions::default()
            };
            roundtrip(&options);
            let req = FlowRequest {
                id: 3,
                netlist: NetlistSpec {
                    benchmark: Benchmark::Aes,
                    scale: 0.02,
                    seed: 5,
                },
                options,
                command: FlowCommand::Pareto {
                    config: Config::Hetero3d,
                    freq_min_ghz: 0.8,
                    freq_max_ghz: 1.4,
                    freq_steps: 4,
                },
                deadline_ms: None,
                proto: Proto::V1,
            };
            roundtrip(&req);
            let text = req.to_json().render();
            let borrowed: FlowRequest = m3d_json::decode_borrowed(&text).expect("borrowed");
            assert_eq!(borrowed, req);
        }
    }

    #[test]
    fn pareto_reports_round_trip_and_bad_sweeps_are_rejected() {
        let point = ParetoPoint {
            stacking: StackingStyle::F2fHybridBond,
            corner: Corner::Slow,
            frequency_ghz: 1.1,
            total_power_mw: 12.5,
            effective_delay_ns: 0.95,
            die_cost_uc: 7.4,
            pdp_pj: 11.875,
            ppc: 0.011,
            wns_ns: -0.04,
            timing_met: false,
            on_frontier: true,
        };
        roundtrip(&point);
        roundtrip(&FlowReport::Pareto {
            summary: ParetoSummary {
                config: Config::Hetero3d,
                points: vec![point],
            },
        });
        // Sweep bounds are enforced at request admission.
        for (lo, hi, steps) in [(0.0, 1.0, 4), (1.2, 0.8, 4), (0.8, 1.2, 0), (0.8, 1.2, 65)] {
            let cmd = FlowCommand::Pareto {
                config: Config::TwoD12T,
                freq_min_ghz: lo,
                freq_max_ghz: hi,
                freq_steps: steps,
            };
            assert!(cmd.validate().is_err(), "({lo}, {hi}, {steps})");
        }
    }

    #[test]
    fn bad_enum_values_name_their_path() {
        let doc = parse(r#"{"op": "run_flow", "config": "4d", "frequency_ghz": 1.0}"#).unwrap();
        let err = FlowCommand::from_json(Cur::root(&doc)).unwrap_err();
        assert_eq!(err.path, "config");
    }

    #[test]
    fn borrowed_request_decode_matches_owned() {
        let mut options = FlowOptions::pin3d_baseline();
        options.seed = 123;
        options.cts_mut().fast_drive = Drive::X8;
        let requests = [
            FlowRequest {
                id: 7,
                netlist: NetlistSpec {
                    benchmark: Benchmark::Ldpc,
                    scale: 0.013,
                    seed: 11,
                },
                options,
                command: FlowCommand::FindFmax {
                    config: Config::Hetero3d,
                    start_ghz: 1.1,
                },
                deadline_ms: Some(30_000),
                proto: Proto::V1,
            },
            FlowRequest {
                id: u64::MAX >> 12,
                netlist: NetlistSpec {
                    benchmark: Benchmark::Cpu,
                    scale: 1.0,
                    seed: 0,
                },
                options: FlowOptions::default(),
                command: FlowCommand::CompareConfigs,
                deadline_ms: None,
                proto: Proto::V1,
            },
        ];
        for req in &requests {
            let text = req.to_json().render();
            let owned: FlowRequest = m3d_json::decode(&text).expect("owned decode");
            let borrowed: FlowRequest = m3d_json::decode_borrowed(&text).expect("borrowed decode");
            assert_eq!(&owned, req);
            assert_eq!(borrowed, owned);
        }
    }

    fn sweep_request(proto: Proto) -> FlowRequest {
        FlowRequest {
            id: 42,
            netlist: NetlistSpec {
                benchmark: Benchmark::Aes,
                scale: 0.02,
                seed: 5,
            },
            options: FlowOptions::default(),
            command: FlowCommand::Sweep {
                spec: SweepSpec {
                    configs: vec![Config::Hetero3d, Config::TwoD12T],
                    stacking: vec![StackingStyle::Monolithic, StackingStyle::F2fHybridBond],
                    corners: vec![Corner::Typical, Corner::Slow],
                    freq_min_ghz: 0.8,
                    freq_max_ghz: 1.2,
                    freq_steps: 3,
                },
            },
            deadline_ms: None,
            proto,
        }
    }

    #[test]
    fn v2_sweep_requests_round_trip_owned_and_borrowed() {
        let req = sweep_request(Proto::V2);
        roundtrip(&req);
        let text = req.to_json().render();
        assert!(text.contains("\"proto\":2"), "v2 marker missing: {text}");
        let borrowed: FlowRequest = m3d_json::decode_borrowed(&text).expect("borrowed");
        assert_eq!(borrowed, req);
    }

    #[test]
    fn v1_requests_render_without_a_proto_key() {
        // Backward compatibility: v1 requests must stay byte-identical
        // to those minted before the version field existed.
        let req = FlowRequest {
            id: 9,
            netlist: NetlistSpec {
                benchmark: Benchmark::Ldpc,
                scale: 0.013,
                seed: 11,
            },
            options: FlowOptions::default(),
            command: FlowCommand::CompareConfigs,
            deadline_ms: None,
            proto: Proto::V1,
        };
        let text = req.to_json().render();
        assert!(!text.contains("proto"), "v1 rendering leaked: {text}");
    }

    #[test]
    fn unknown_protocol_versions_are_rejected_at_the_proto_path() {
        let good = sweep_request(Proto::V2).to_json().render();
        let broken = good.replace("\"proto\":2", "\"proto\":7");
        assert_ne!(broken, good);
        for err in [
            m3d_json::decode::<FlowRequest>(&broken).unwrap_err(),
            m3d_json::decode_borrowed::<FlowRequest>(&broken).unwrap_err(),
        ] {
            let m3d_json::JsonError::Decode(e) = err else {
                panic!("expected a decode error")
            };
            assert_eq!(e.path, "proto");
            assert!(e.expected.contains("protocol version"), "{e}");
        }
    }

    #[test]
    fn sweeps_require_protocol_v2() {
        let req = sweep_request(Proto::V1);
        let err = req.validate().unwrap_err();
        assert_eq!(err.path, "proto");
        // The wire decoders enforce the same rule: a sweep without the
        // version marker is rejected in both decode paths.
        let text = req.to_json().render();
        assert!(m3d_json::decode::<FlowRequest>(&text).is_err());
        assert!(m3d_json::decode_borrowed::<FlowRequest>(&text).is_err());
    }

    #[test]
    fn sweep_axis_decode_errors_name_indexed_paths() {
        let good = sweep_request(Proto::V2).to_json().render();
        let broken = good.replace("\"f2f\"", "\"w2w\"");
        assert_ne!(broken, good);
        let owned_err = m3d_json::decode::<FlowRequest>(&broken).unwrap_err();
        let borrowed_err = m3d_json::decode_borrowed::<FlowRequest>(&broken).unwrap_err();
        assert_eq!(borrowed_err, owned_err);
        let m3d_json::JsonError::Decode(e) = owned_err else {
            panic!("expected a decode error")
        };
        assert_eq!(e.path, "command/stacking[1]");
    }

    #[test]
    fn sweep_decomposition_matches_hand_built_v1_requests() {
        let req = sweep_request(Proto::V2);
        let FlowCommand::Sweep { spec } = &req.command else {
            unreachable!()
        };
        let singles = req.decompose_sweep().expect("sweep decomposes");
        assert_eq!(singles.len(), spec.point_count());
        for (point, single) in spec.points().iter().zip(&singles) {
            assert_eq!(single.id, req.id);
            assert_eq!(single.proto, Proto::V1);
            assert!(single.validate().is_ok());
            assert_eq!(single.options.tech, point.tech());
            assert_eq!(
                single.command,
                FlowCommand::RunFlow {
                    config: point.config,
                    frequency_ghz: point.frequency_ghz,
                }
            );
        }
        // Non-sweep commands do not decompose.
        assert!(singles[0].decompose_sweep().is_none());
    }

    #[test]
    fn sweep_reports_round_trip() {
        let ppac = PpacSummary {
            config: Config::Hetero3d,
            frequency_ghz: 1.0,
            footprint_mm2: 0.1,
            si_area_mm2: 0.2,
            chip_width_um: 351.0,
            density_pct: 81.25,
            wirelength_mm: 5.5,
            mivs: 1234,
            switching_mw: 1.0,
            internal_mw: 2.0,
            leakage_mw: 0.5,
            clock_mw: 0.75,
            total_power_mw: 4.25,
            wns_ns: -0.012,
            tns_ns: -1.5,
            effective_delay_ns: 1.012,
            pdp_pj: 4.301,
            die_cost_uc: 3.21,
            cost_per_cm2_uc: 16.05,
            ppc: 0.072,
        };
        let report = FlowReport::Sweep {
            points: vec![ppac.clone(), ppac],
        };
        roundtrip(&report);
        assert!(report.headline().contains("2 points"));
    }

    #[test]
    fn borrowed_decode_reports_the_same_error_paths() {
        let base = FlowRequest {
            id: 1,
            netlist: NetlistSpec {
                benchmark: Benchmark::Aes,
                scale: 0.02,
                seed: 5,
            },
            options: FlowOptions::default(),
            command: FlowCommand::RunFlow {
                config: Config::TwoD9T,
                frequency_ghz: 1.0,
            },
            deadline_ms: None,
            proto: Proto::V1,
        };
        let good = base.to_json().render();
        for broken in [
            good.replace("\"2d9t\"", "\"4d\""),
            good.replace("\"aes\"", "\"des\""),
            good.replace("\"x4\"", "\"x3\""),
            good.replace("\"scale\":0.02", "\"scale\":1e9"),
            good.replace("\"iterations\":18", "\"iterations\":\"twelve\""),
        ] {
            assert_ne!(broken, good, "replacement must have matched");
            let owned_err = m3d_json::decode::<FlowRequest>(&broken).unwrap_err();
            let borrowed_err = m3d_json::decode_borrowed::<FlowRequest>(&broken).unwrap_err();
            assert_eq!(borrowed_err, owned_err, "input: {broken}");
        }
    }
}
