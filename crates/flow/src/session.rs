//! The primary entry point: a [`FlowSession`] binds one netlist to one
//! set of [`FlowOptions`], validates and buffers the design once, and
//! then answers any number of commands — each forking the session's
//! shared checkpoints instead of redoing the prefix work.
//!
//! * [`FlowSession::build`] runs [`prepare_base`] eagerly: validation
//!   errors surface at construction, and every later command forks the
//!   same buffered base snapshot.
//! * The pseudo-3-D checkpoint is computed **lazily, once**: the first
//!   3-D command pays for it, every later one (and every concurrent
//!   caller — the session is `Sync`) forks it in O(1). A session serving
//!   a design-space sweep runs the pseudo-3-D stage exactly once, which
//!   is what the serve-layer checkpoint cache is built on.
//! * Results are bit-identical to the standalone entry points at any
//!   thread count: forking a checkpoint is observationally equal to
//!   recomputing it (`shared_checkpoints_reproduce_the_standalone_run`).

use crate::compare::{compare_from_base, Comparison};
use crate::config::{Config, FlowOptions};
use crate::error::FlowError;
use crate::flow::{fmax_from_base, Implementation};
use crate::pareto::{pareto_from_base, ParetoSummary};
use crate::stage::{prepare_base, pseudo_checkpoint, run_from_base, BaseDesign, PseudoCheckpoint};
use crate::sweep::sweep_from_base;
use crate::wire::{FlowCommand, FlowReport, PpacSummary};
use m3d_cost::CostModel;
use m3d_netlist::Netlist;
use std::sync::OnceLock;

/// Builder for a [`FlowSession`] (see [`FlowSession::builder`]).
#[derive(Debug)]
pub struct FlowSessionBuilder<'a> {
    netlist: &'a Netlist,
    options: FlowOptions,
}

impl FlowSessionBuilder<'_> {
    /// Replaces the flow options (default: [`FlowOptions::default`]).
    #[must_use]
    pub fn options(mut self, options: FlowOptions) -> Self {
        self.options = options;
        self
    }

    /// Validates the netlist and prepares the shared base checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidNetlist`] when the netlist fails
    /// validation.
    pub fn build(self) -> Result<FlowSession, FlowError> {
        let netlist_fingerprint =
            m3d_db::fingerprint_hex(m3d_db::netlist_fingerprint(self.netlist));
        let options_fingerprint = self.options.fingerprint();
        let base = prepare_base(self.netlist, &self.options)?;
        Ok(FlowSession {
            design: self.netlist.name.clone(),
            netlist_fingerprint,
            options_fingerprint,
            options: self.options,
            base,
            pseudo: OnceLock::new(),
        })
    }
}

/// One netlist + one option set, prepared once, queried many times.
///
/// ```no_run
/// use m3d_flow::{Config, FlowOptions, FlowSession};
/// use m3d_netgen::Benchmark;
///
/// let netlist = Benchmark::Aes.generate(0.1, 1);
/// let session = FlowSession::builder(&netlist)
///     .options(FlowOptions::default())
///     .build()?;
/// let hetero = session.run(Config::Hetero3d, 1.5)?;
/// let (fmax, _) = session.fmax(Config::TwoD12T, 1.0)?;
/// println!("hetero WNS {:.3} ns at fmax {fmax:.2} GHz", hetero.sta.wns);
/// # Ok::<(), m3d_flow::FlowError>(())
/// ```
#[derive(Debug)]
pub struct FlowSession {
    design: String,
    netlist_fingerprint: String,
    options_fingerprint: String,
    options: FlowOptions,
    base: BaseDesign,
    pseudo: OnceLock<Result<PseudoCheckpoint, FlowError>>,
}

impl FlowSession {
    /// Starts building a session over `netlist`.
    #[must_use]
    pub fn builder(netlist: &Netlist) -> FlowSessionBuilder<'_> {
        FlowSessionBuilder {
            netlist,
            options: FlowOptions::default(),
        }
    }

    /// Rehydrates a session from previously computed checkpoints (the
    /// persistent-store warm path). `netlist` is the *input* netlist the
    /// fingerprints key on, `base` the buffered checkpoint previously
    /// produced by [`prepare_base`] for that netlist and options, and
    /// `pseudo` an optional already-computed pseudo-3-D checkpoint to
    /// pre-seed the lazy slot with — a rehydrated session with a pseudo
    /// checkpoint never re-runs the pseudo-3-D stage.
    ///
    /// The caller owes the same pairing discipline as the checkpoint
    /// cache: `base`/`pseudo` must have been computed from exactly this
    /// `(netlist, options)` pair, or session answers will not match a
    /// cold build.
    #[must_use]
    pub fn from_parts(
        netlist: &Netlist,
        options: FlowOptions,
        base: BaseDesign,
        pseudo: Option<PseudoCheckpoint>,
    ) -> FlowSession {
        let netlist_fingerprint = m3d_db::fingerprint_hex(m3d_db::netlist_fingerprint(netlist));
        let options_fingerprint = options.fingerprint();
        let slot = OnceLock::new();
        if let Some(p) = pseudo {
            let _ = slot.set(Ok(p));
        }
        FlowSession {
            design: netlist.name.clone(),
            netlist_fingerprint,
            options_fingerprint,
            options,
            base,
            pseudo: slot,
        }
    }

    /// The design's name.
    #[must_use]
    pub fn design(&self) -> &str {
        &self.design
    }

    /// Content fingerprint of the input netlist (16 hex digits) — one
    /// half of the serve-layer checkpoint-cache key.
    #[must_use]
    pub fn netlist_fingerprint(&self) -> &str {
        &self.netlist_fingerprint
    }

    /// Fingerprint of the result-affecting options — the other half of
    /// the cache key.
    #[must_use]
    pub fn options_fingerprint(&self) -> &str {
        &self.options_fingerprint
    }

    /// The session's options.
    #[must_use]
    pub fn options(&self) -> &FlowOptions {
        &self.options
    }

    /// Whether the pseudo-3-D checkpoint has been computed yet.
    #[must_use]
    pub fn pseudo_ready(&self) -> bool {
        matches!(self.pseudo.get(), Some(Ok(_)))
    }

    /// The shared base checkpoint (for persisting the session).
    #[must_use]
    pub fn base(&self) -> &BaseDesign {
        &self.base
    }

    /// The pseudo-3-D checkpoint, if it has been computed successfully —
    /// does *not* trigger the computation (for persisting the session).
    #[must_use]
    pub fn pseudo_checkpoint(&self) -> Option<&PseudoCheckpoint> {
        match self.pseudo.get() {
            Some(Ok(p)) => Some(p),
            _ => None,
        }
    }

    /// The shared pseudo-3-D checkpoint, computed on first use. Racing
    /// callers block on the one computation instead of duplicating it.
    fn pseudo(&self) -> Result<&PseudoCheckpoint, FlowError> {
        self.pseudo
            .get_or_init(|| pseudo_checkpoint(&self.base, &self.options))
            .as_ref()
            .map_err(Clone::clone)
    }

    /// The pseudo checkpoint when the configuration needs one.
    fn pseudo_for(&self, config: Config) -> Result<Option<&PseudoCheckpoint>, FlowError> {
        if config.is_3d() {
            self.pseudo().map(Some)
        } else {
            Ok(None)
        }
    }

    /// Implements `config` at `frequency_ghz`, forking the session's
    /// checkpoints.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidFrequency`] for a non-positive or
    /// non-finite target and propagates any stage failure.
    pub fn run(&self, config: Config, frequency_ghz: f64) -> Result<Implementation, FlowError> {
        if !frequency_ghz.is_finite() || frequency_ghz <= 0.0 {
            return Err(FlowError::InvalidFrequency { frequency_ghz });
        }
        run_from_base(
            &self.base,
            self.pseudo_for(config)?,
            config,
            frequency_ghz,
            &self.options,
        )
    }

    /// Sweeps `config` to its maximum met frequency, starting the probe
    /// at `start_ghz`. Returns `(fmax_ghz, implementation_at_fmax)`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidFrequency`] for a non-finite starting
    /// point (too-low or negative starts are merely clamped) and
    /// propagates the first failure of any probe or ladder rung.
    pub fn fmax(&self, config: Config, start_ghz: f64) -> Result<(f64, Implementation), FlowError> {
        if !start_ghz.is_finite() {
            return Err(FlowError::InvalidFrequency {
                frequency_ghz: start_ghz,
            });
        }
        fmax_from_base(
            &self.base,
            self.pseudo_for(config)?,
            config,
            &self.options,
            start_ghz,
        )
    }

    /// Runs the five-way iso-performance comparison (Tables VI/VII).
    ///
    /// # Errors
    ///
    /// Propagates the first failure of the fmax sweep or any
    /// configuration job.
    pub fn compare(&self, cost: &CostModel) -> Result<Comparison, FlowError> {
        compare_from_base(&self.base, self.pseudo()?, &self.options, cost)
    }

    /// Sweeps `config` over stacking style × sign-off corner ×
    /// frequency and returns the power–performance–cost frontier.
    ///
    /// Scenario runs fork the session's base; the per-scenario pseudo
    /// checkpoints are computed inside the sweep (one per distinct 3-D
    /// scenario — they carry scenario-specific fingerprints, so the
    /// session's own typical-monolithic checkpoint is not reused).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidSweep`] for a malformed grid and
    /// propagates the first failure of any scenario run.
    pub fn pareto(
        &self,
        config: Config,
        freq_min_ghz: f64,
        freq_max_ghz: f64,
        freq_steps: usize,
        cost: &CostModel,
    ) -> Result<ParetoSummary, FlowError> {
        pareto_from_base(
            &self.base,
            config,
            freq_min_ghz,
            freq_max_ghz,
            freq_steps,
            &self.options,
            cost,
        )
    }

    /// Executes one wire-format command and rolls the result up into its
    /// serializable report — the single execution path shared by direct
    /// library callers and the flow service (which is how the service
    /// guarantees its responses are bit-identical to library calls).
    ///
    /// # Errors
    ///
    /// Propagates the underlying command's [`FlowError`].
    pub fn execute(&self, command: &FlowCommand) -> Result<FlowReport, FlowError> {
        let cost = CostModel::default();
        match command {
            FlowCommand::RunFlow {
                config,
                frequency_ghz,
            } => {
                let imp = self.run(*config, *frequency_ghz)?;
                Ok(FlowReport::Run {
                    ppac: PpacSummary::from(&imp.ppac(&cost)),
                })
            }
            FlowCommand::FindFmax { config, start_ghz } => {
                let (fmax_ghz, imp) = self.fmax(*config, *start_ghz)?;
                Ok(FlowReport::Fmax {
                    fmax_ghz,
                    ppac: PpacSummary::from(&imp.ppac(&cost)),
                })
            }
            FlowCommand::CompareConfigs => {
                let comparison = self.compare(&cost)?;
                Ok(FlowReport::Compare {
                    comparison: (&comparison).into(),
                })
            }
            FlowCommand::Pareto {
                config,
                freq_min_ghz,
                freq_max_ghz,
                freq_steps,
            } => {
                let summary =
                    self.pareto(*config, *freq_min_ghz, *freq_max_ghz, *freq_steps, &cost)?;
                Ok(FlowReport::Pareto { summary })
            }
            FlowCommand::Sweep { spec } => {
                let points = sweep_from_base(&self.base, spec, &self.options, &cost)?;
                Ok(FlowReport::Sweep { points })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::NetlistSpec;
    use m3d_netgen::Benchmark;

    fn quick_options() -> FlowOptions {
        let mut o = FlowOptions::default();
        o.placer_mut().iterations = 8;
        o
    }

    #[test]
    fn session_matches_standalone_entry_points_bit_for_bit() {
        let n = Benchmark::Aes.generate(0.02, 31);
        let options = quick_options();
        let session = FlowSession::builder(&n)
            .options(options.clone())
            .build()
            .expect("valid netlist");
        assert!(!session.pseudo_ready(), "pseudo must be lazy");

        let direct = crate::flow::try_run_flow(&n, Config::Hetero3d, 1.0, &options).unwrap();
        let via_session = session.run(Config::Hetero3d, 1.0).unwrap();
        assert!(session.pseudo_ready());
        assert_eq!(direct.tiers, via_session.tiers);
        assert_eq!(direct.sta.wns.to_bits(), via_session.sta.wns.to_bits());
        assert_eq!(
            direct.power.total_mw().to_bits(),
            via_session.power.total_mw().to_bits()
        );
        assert_eq!(direct.placement.positions, via_session.placement.positions);

        // A 2-D run through the same session agrees with the library too.
        let d2 = crate::flow::try_run_flow(&n, Config::TwoD12T, 1.0, &options).unwrap();
        let d2s = session.run(Config::TwoD12T, 1.0).unwrap();
        assert_eq!(d2.sta.wns.to_bits(), d2s.sta.wns.to_bits());
    }

    #[test]
    fn session_rejects_bad_frequency_and_bad_netlist() {
        let n = Benchmark::Aes.generate(0.02, 31);
        let session = FlowSession::builder(&n).build().expect("valid netlist");
        let err = session.run(Config::TwoD9T, f64::NAN).unwrap_err();
        assert!(matches!(err, FlowError::InvalidFrequency { .. }));
        // An infinite target would otherwise run with period 0 and
        // return garbage metrics instead of an error.
        let err = session.run(Config::TwoD9T, f64::INFINITY).unwrap_err();
        assert!(matches!(err, FlowError::InvalidFrequency { .. }));
        let err = session.fmax(Config::TwoD9T, f64::INFINITY).unwrap_err();
        assert!(matches!(err, FlowError::InvalidFrequency { .. }));

        // A gate with an unconnected input fails validation at build().
        let mut invalid = m3d_netlist::Netlist::new("invalid");
        let pi = invalid.add_input("a");
        let net = invalid.add_net("na", pi, 0);
        let g = invalid.add_gate("g", m3d_tech::CellKind::Nand2, m3d_tech::Drive::X1, 0);
        invalid.connect(net, g, 0); // pin 1 left dangling
        assert!(matches!(
            FlowSession::builder(&invalid).build(),
            Err(FlowError::InvalidNetlist(_))
        ));
    }

    #[test]
    fn execute_reports_match_direct_calls() {
        let spec = NetlistSpec {
            benchmark: Benchmark::Aes,
            scale: 0.015,
            seed: 31,
        };
        let n = spec.materialize();
        let options = quick_options();
        let session = FlowSession::builder(&n)
            .options(options.clone())
            .build()
            .unwrap();
        let report = session
            .execute(&FlowCommand::RunFlow {
                config: Config::ThreeD9T,
                frequency_ghz: 0.9,
            })
            .unwrap();
        let imp = session.run(Config::ThreeD9T, 0.9).unwrap();
        let expected = FlowReport::Run {
            ppac: PpacSummary::from(&imp.ppac(&CostModel::default())),
        };
        assert_eq!(report, expected);
    }

    #[test]
    fn sweep_execute_matches_decomposed_single_shot_sessions() {
        use crate::sweep::SweepSpec;
        use crate::wire::{NetlistSpec, Proto};
        use m3d_tech::{Corner, StackingStyle};

        let spec = NetlistSpec {
            benchmark: Benchmark::Aes,
            scale: 0.012,
            seed: 31,
        };
        let n = spec.materialize();
        let options = quick_options();
        let request = crate::wire::FlowRequest {
            id: 1,
            netlist: spec,
            options: options.clone(),
            command: FlowCommand::Sweep {
                spec: SweepSpec {
                    configs: vec![Config::Hetero3d],
                    stacking: vec![StackingStyle::Monolithic, StackingStyle::F2fHybridBond],
                    corners: vec![Corner::Typical],
                    freq_min_ghz: 0.9,
                    freq_max_ghz: 1.1,
                    freq_steps: 2,
                },
            },
            deadline_ms: None,
            proto: Proto::V2,
        };
        let session = FlowSession::builder(&n)
            .options(options.clone())
            .build()
            .unwrap();
        let FlowReport::Sweep { points } = session.execute(&request.command).unwrap() else {
            panic!("expected a sweep report")
        };
        let singles = request.decompose_sweep().expect("decomposes");
        assert_eq!(points.len(), singles.len());
        for (point, single) in points.iter().zip(&singles) {
            let single_session = FlowSession::builder(&n)
                .options(single.options.clone())
                .build()
                .unwrap();
            let FlowReport::Run { ppac } = single_session.execute(&single.command).unwrap() else {
                panic!("expected a run report")
            };
            assert_eq!(point, &ppac, "sweep point must equal the v1 single-shot");
        }
    }

    #[test]
    fn rehydrated_session_matches_and_skips_pseudo3d() {
        let n = Benchmark::Aes.generate(0.02, 31);
        let options = quick_options();
        let cold = FlowSession::builder(&n)
            .options(options.clone())
            .build()
            .unwrap();
        let cold_run = cold.run(Config::Hetero3d, 1.0).unwrap();
        let base = cold.base().clone();
        let pseudo = cold.pseudo_checkpoint().cloned();
        assert!(pseudo.is_some());

        // Rehydrate under a telemetry collector: the pseudo-3-D stage
        // must not run again.
        let obs = m3d_obs::Obs::enabled();
        let mut warm_options = options.clone();
        warm_options.obs = obs.clone();
        let warm = FlowSession::from_parts(&n, warm_options, base, pseudo);
        assert!(warm.pseudo_ready());
        assert_eq!(warm.netlist_fingerprint(), cold.netlist_fingerprint());
        assert_eq!(warm.options_fingerprint(), cold.options_fingerprint());
        let warm_run = warm.run(Config::Hetero3d, 1.0).unwrap();
        assert_eq!(cold_run.tiers, warm_run.tiers);
        assert_eq!(cold_run.sta.wns.to_bits(), warm_run.sta.wns.to_bits());
        assert_eq!(
            obs.manifest().counter("flow/pseudo3d_runs").unwrap_or(0),
            0,
            "rehydrated pseudo checkpoint must suppress the pseudo-3-D stage"
        );
    }

    #[test]
    fn fingerprints_key_on_netlist_and_options() {
        let a = Benchmark::Aes.generate(0.015, 31);
        let b = Benchmark::Aes.generate(0.015, 32);
        let s1 = FlowSession::builder(&a).build().unwrap();
        let s2 = FlowSession::builder(&a).build().unwrap();
        let s3 = FlowSession::builder(&b).build().unwrap();
        let s4 = FlowSession::builder(&a)
            .options(quick_options())
            .build()
            .unwrap();
        assert_eq!(s1.netlist_fingerprint(), s2.netlist_fingerprint());
        assert_eq!(s1.options_fingerprint(), s2.options_fingerprint());
        assert_ne!(s1.netlist_fingerprint(), s3.netlist_fingerprint());
        assert_ne!(s1.options_fingerprint(), s4.options_fingerprint());
    }
}
