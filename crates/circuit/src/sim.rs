use crate::inverter::Inverter;
use crate::waveform::Waveform;

/// One stage of a simulated inverter chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage {
    /// The inverter (device + supply + parasitics).
    pub inv: Inverter,
    /// Number of identical inverters ganged in parallel at this stage
    /// (multiplies both drive and capacitance). `1.0` for a plain stage,
    /// `4.0` models the FO-4 load bank.
    pub parallel: f64,
    /// Additional fixed capacitance on this stage's output node, fF.
    pub extra_load_ff: f64,
}

/// DC operating point of one inverter for a fixed gate voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcOperatingPoint {
    /// Settled output voltage, volts.
    pub vout: f64,
    /// Static current through the stack, mA.
    pub static_current_ma: f64,
    /// Static power drawn from this inverter's supply, µW.
    pub static_power_uw: f64,
}

/// Transient simulator for a chain of (possibly heterogeneous) inverters.
///
/// Each stage may sit on a different supply — exactly the situation at a
/// monolithic 3-D tier boundary. Integration is explicit midpoint (RK2)
/// with a fixed sub-picosecond step; the time constants involved are tens
/// of picoseconds, so the integration error is negligible next to the
/// model error.
///
/// # Examples
///
/// ```
/// use m3d_circuit::{ChainSim, Inverter, TechFlavor};
///
/// let sim = ChainSim::fo4(
///     Inverter::new(TechFlavor::Fast, 1.0),
///     Inverter::new(TechFlavor::Fast, 1.0),
/// );
/// let waves = sim.run(2.2, 1.0, 0.02);
/// assert_eq!(waves.len(), sim.stage_count());
/// ```
#[derive(Debug, Clone)]
pub struct ChainSim {
    stages: Vec<Stage>,
    /// Swing of the ideal stimulus driving stage 0, volts.
    pub stimulus_vdd: f64,
}

/// Integration timestep, ns (0.05 ps).
const DT_NS: f64 = 5e-5;
/// Output sampling stride (one stored sample per `SAMPLE_EVERY` steps).
const SAMPLE_EVERY: usize = 10;

impl ChainSim {
    /// Builds a chain from explicit stages; the ideal stimulus swings to
    /// `stimulus_vdd`.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    #[must_use]
    pub fn new(stages: Vec<Stage>, stimulus_vdd: f64) -> Self {
        assert!(!stages.is_empty(), "chain must have at least one stage");
        ChainSim {
            stages,
            stimulus_vdd,
        }
    }

    /// The canonical FO-4 arrangement: a shaping inverter (same flavor as
    /// the driver, to produce a realistic input slew), the driver under
    /// test, a bank of four parallel load inverters, and a final
    /// measurement stage terminating the loads.
    #[must_use]
    pub fn fo4(driver: Inverter, load: Inverter) -> Self {
        let shaping = Stage {
            inv: driver,
            parallel: 1.0,
            extra_load_ff: 0.0,
        };
        // 10 fF of boundary interconnect (local wire + MIV) on the driver
        // output: monolithic boundary nets are short but not ideal.
        let drv = Stage {
            inv: driver,
            parallel: 1.0,
            extra_load_ff: 10.0,
        };
        let loads = Stage {
            inv: load,
            parallel: 4.0,
            extra_load_ff: 0.0,
        };
        // Each load inverter itself sees an FO-4 load.
        let term = Stage {
            inv: load,
            parallel: 16.0,
            extra_load_ff: 0.0,
        };
        ChainSim::new(vec![shaping, drv, loads, term], driver.vdd)
    }

    /// Number of stages (and of output waveforms).
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The stages.
    #[must_use]
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Capacitance on the output node of stage `i`: its own drain
    /// parasitics, the next stage's gate, and any extra load.
    fn node_cap_ff(&self, i: usize) -> f64 {
        let own = self.stages[i].inv.cout_ff * self.stages[i].parallel;
        let next = self
            .stages
            .get(i + 1)
            .map_or(0.0, |s| s.inv.cin_ff * s.parallel);
        own + next + self.stages[i].extra_load_ff
    }

    /// Ideal trapezoidal stimulus: low until 0.1 ns, rises over `ramp_ns`,
    /// falls at `duration/2`, swings 0 ↔ `stimulus_vdd`.
    fn stimulus(&self, t_ns: f64, duration_ns: f64, ramp_ns: f64) -> f64 {
        let rise_at = 0.1;
        let fall_at = duration_ns * 0.5;
        let v = self.stimulus_vdd;
        if t_ns < rise_at {
            0.0
        } else if t_ns < rise_at + ramp_ns {
            v * (t_ns - rise_at) / ramp_ns
        } else if t_ns < fall_at {
            v
        } else if t_ns < fall_at + ramp_ns {
            v * (1.0 - (t_ns - fall_at) / ramp_ns)
        } else {
            0.0
        }
    }

    /// Runs a transient of `duration_ns` with the given stimulus period
    /// fraction (the stimulus always rises at 0.1 ns and falls at
    /// `duration/2`) and input ramp `ramp_ns`. `_period_scale` reserved.
    ///
    /// Returns one [`Waveform`] per stage output, sampled every 0.5 ps.
    #[must_use]
    pub fn run(&self, duration_ns: f64, _period_scale: f64, ramp_ns: f64) -> Vec<Waveform> {
        self.run_with_energy(duration_ns, ramp_ns).0
    }

    /// Like [`ChainSim::run`] but also returns the total energy drawn from
    /// all stage supplies over the window, in fJ.
    #[must_use]
    pub fn run_with_energy(&self, duration_ns: f64, ramp_ns: f64) -> (Vec<Waveform>, f64) {
        let (waves, per_stage) = self.run_with_stage_energy(duration_ns, ramp_ns);
        let total = per_stage.iter().sum();
        (waves, total)
    }

    /// Like [`ChainSim::run`] but returns the energy drawn from each
    /// stage's supply over the window, in fJ (one entry per stage).
    #[must_use]
    pub fn run_with_stage_energy(
        &self,
        duration_ns: f64,
        ramp_ns: f64,
    ) -> (Vec<Waveform>, Vec<f64>) {
        let n = self.stages.len();
        let steps = (duration_ns / DT_NS).ceil() as usize;
        // Initial condition: stimulus low -> alternating settled levels.
        let mut v: Vec<f64> = Vec::with_capacity(n);
        let mut gate_low = true; // stage 0 gate = stimulus = 0.
        for s in &self.stages {
            v.push(if gate_low { s.inv.vdd } else { 0.0 });
            gate_low = !gate_low;
        }
        let mut traces: Vec<Vec<f64>> = vec![Vec::with_capacity(steps / SAMPLE_EVERY + 1); n];
        let caps: Vec<f64> = (0..n).map(|i| self.node_cap_ff(i)).collect();
        let mut energy_fj = vec![0.0_f64; n];

        let derivative = |v: &[f64], vin: f64, out: &mut [f64]| {
            for i in 0..n {
                let vg = if i == 0 { vin } else { v[i - 1] };
                let i_ma = self.stages[i].inv.output_current_ma(vg, v[i]) * self.stages[i].parallel;
                // mA / fF = 1000 V/ns.
                out[i] = i_ma / caps[i] * 1000.0;
            }
        };

        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];
        let mut vmid = vec![0.0; n];
        for step in 0..steps {
            let t = step as f64 * DT_NS;
            let vin = self.stimulus(t, duration_ns, ramp_ns);
            let vin_mid = self.stimulus(t + 0.5 * DT_NS, duration_ns, ramp_ns);
            derivative(&v, vin, &mut k1);
            for i in 0..n {
                vmid[i] = v[i] + 0.5 * DT_NS * k1[i];
            }
            derivative(&vmid, vin_mid, &mut k2);
            for i in 0..n {
                v[i] += DT_NS * k2[i];
                // Clamp to physical rails with a little margin.
                v[i] = v[i].clamp(-0.05, self.stages[i].inv.vdd + 0.05);
            }
            // Supply energy: sum over stages of VDD * I_pmos * dt.
            for i in 0..n {
                let vg = if i == 0 { vin } else { v[i - 1] };
                let i_sup =
                    self.stages[i].inv.supply_current_ma(vg, v[i]) * self.stages[i].parallel;
                // mA * V * ns = pJ; * 1000 -> fJ.
                energy_fj[i] += i_sup * self.stages[i].inv.vdd * DT_NS * 1000.0;
            }
            if step % SAMPLE_EVERY == 0 {
                for i in 0..n {
                    traces[i].push(v[i]);
                }
            }
        }
        let dt_out = DT_NS * SAMPLE_EVERY as f64;
        (
            traces
                .into_iter()
                .map(|t| Waveform::new(dt_out, t))
                .collect(),
            energy_fj,
        )
    }

    /// DC operating point of stage `i` for a fixed gate voltage `vg`
    /// (bisection on the output node until the pull-up and pull-down
    /// currents balance).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn dc_operating_point(&self, i: usize, vg: f64) -> DcOperatingPoint {
        let inv = &self.stages[i].inv;
        let mut lo = 0.0;
        let mut hi = inv.vdd;
        // output_current(vout) is decreasing in vout near equilibrium:
        // high vout -> NMOS discharges dominate (negative), low vout ->
        // PMOS charges dominate (positive).
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if inv.output_current_ma(vg, mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let vout = 0.5 * (lo + hi);
        let static_current_ma = inv.supply_current_ma(vg, vout) * self.stages[i].parallel;
        DcOperatingPoint {
            vout,
            static_current_ma,
            static_power_uw: static_current_ma * inv.vdd * 1000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverter::{Inverter, TechFlavor};

    fn fast_fo4() -> ChainSim {
        ChainSim::fo4(
            Inverter::new(TechFlavor::Fast, 1.0),
            Inverter::new(TechFlavor::Fast, 1.0),
        )
    }

    #[test]
    fn chain_settles_to_alternating_rails() {
        let sim = fast_fo4();
        let waves = sim.run(2.0, 1.0, 0.02);
        // After the final falling stimulus edge the chain returns to the
        // initial alternating pattern.
        let vdd = 0.9;
        assert!((waves[0].final_voltage() - vdd).abs() < 0.05);
        assert!(waves[1].final_voltage() < 0.05);
        assert!((waves[2].final_voltage() - vdd).abs() < 0.05);
    }

    #[test]
    fn driver_output_switches_full_swing() {
        let sim = fast_fo4();
        let waves = sim.run(2.0, 1.0, 0.02);
        let drv = &waves[1];
        let max = drv.samples().iter().copied().fold(0.0_f64, f64::max);
        let min = drv.samples().iter().copied().fold(1.0_f64, f64::min);
        assert!(max > 0.85);
        assert!(min < 0.05);
    }

    #[test]
    fn fo4_delay_is_tens_of_picoseconds() {
        let sim = fast_fo4();
        let waves = sim.run(2.0, 1.0, 0.02);
        let d = waves[0]
            .delay_to(0.9, false, &waves[1], 0.9, true, 0.0)
            .expect("driver switches");
        assert!(d > 0.001 && d < 0.2, "FO4 delay {d} ns out of range");
    }

    #[test]
    fn dc_op_point_is_near_rail_for_strong_input() {
        let sim = fast_fo4();
        let high = sim.dc_operating_point(1, 0.9);
        assert!(high.vout < 0.02);
        let low = sim.dc_operating_point(1, 0.0);
        assert!(low.vout > 0.88);
        assert!(high.static_power_uw > 0.0);
    }

    #[test]
    fn underdriven_input_leaks_more_at_dc() {
        let sim = fast_fo4();
        let nominal = sim.dc_operating_point(1, 0.9);
        let underdriven = sim.dc_operating_point(1, 0.81);
        assert!(underdriven.static_power_uw > 2.0 * nominal.static_power_uw);
    }

    #[test]
    fn energy_is_positive_and_scales_with_activity() {
        let sim = fast_fo4();
        let (_, e) = sim.run_with_energy(2.0, 0.02);
        assert!(e > 0.0);
    }
}
