use crate::mosfet::{Mosfet, MosfetKind, MosfetParams};
use m3d_tech::CornerParams;

/// Which of the two heterogeneous technologies an inverter belongs to.
///
/// `Fast` is the 12-track 0.90 V corner, `Slow` the 9-track 0.81 V corner —
/// the same parameters the [`m3d_tech`] libraries are generated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechFlavor {
    /// 12-track, 0.90 V, low-Vt.
    Fast,
    /// 9-track, 0.81 V, high-Vt.
    Slow,
}

impl TechFlavor {
    /// The corner parameters behind this flavor.
    #[must_use]
    pub fn corner(self) -> CornerParams {
        match self {
            TechFlavor::Fast => CornerParams::twelve_track(),
            TechFlavor::Slow => CornerParams::nine_track(),
        }
    }
}

impl std::fmt::Display for TechFlavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TechFlavor::Fast => f.write_str("fast"),
            TechFlavor::Slow => f.write_str("slow"),
        }
    }
}

/// A CMOS inverter: PMOS pull-up + NMOS pull-down with gate and drain
/// parasitics, powered by its tier's supply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Inverter {
    /// Pull-down device.
    pub nmos: Mosfet,
    /// Pull-up device (width-doubled for mobility matching).
    pub pmos: Mosfet,
    /// Supply voltage of this inverter's tier, volts.
    pub vdd: f64,
    /// Input (gate) capacitance, fF.
    pub cin_ff: f64,
    /// Output (drain) parasitic capacitance, fF.
    pub cout_ff: f64,
    /// Technology flavor, for reporting.
    pub flavor: TechFlavor,
}

impl Inverter {
    /// Builds an inverter of the given flavor and drive width.
    #[must_use]
    pub fn new(flavor: TechFlavor, width: f64) -> Self {
        let c = flavor.corner();
        let w = width * c.width_factor;
        let nmos = Mosfet::new(MosfetKind::Nmos, MosfetParams::nm28(c.vth, w));
        // PMOS at 2x width compensates hole mobility; same Vth magnitude.
        let pmos = Mosfet::new(MosfetKind::Pmos, MosfetParams::nm28(c.vth, 2.0 * w));
        Inverter {
            nmos,
            pmos,
            vdd: c.vdd,
            cin_ff: c.unit_gate_cap_ff * w * 3.0, // NMOS + 2x PMOS gates.
            cout_ff: c.unit_parasitic_cap_ff * w * 3.0,
            flavor,
        }
    }

    /// Net current *into* the output node (mA) for gate voltage `vg` and
    /// output voltage `vout`: PMOS charging minus NMOS discharging.
    #[must_use]
    pub fn output_current_ma(&self, vg: f64, vout: f64) -> f64 {
        let i_up = self.pmos.current(vg, vout, self.vdd, 0.0);
        let i_down = self.nmos.current(vg, vout, self.vdd, 0.0);
        i_up - i_down
    }

    /// Current drawn from the supply rail (through the PMOS), mA.
    #[must_use]
    pub fn supply_current_ma(&self, vg: f64, vout: f64) -> f64 {
        self.pmos.current(vg, vout, self.vdd, 0.0)
    }

    /// Logic switching threshold: the paper's functionality condition
    /// requires the cross-tier input swing to clear this.
    #[must_use]
    pub fn switching_threshold(&self) -> f64 {
        self.vdd * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_inverter_sources_more_current() {
        let fast = Inverter::new(TechFlavor::Fast, 1.0);
        let slow = Inverter::new(TechFlavor::Slow, 1.0);
        // Mid-swing drive comparison.
        let i_fast = -fast.output_current_ma(fast.vdd, fast.vdd * 0.5);
        let i_slow = -slow.output_current_ma(slow.vdd, slow.vdd * 0.5);
        assert!(i_fast > i_slow);
    }

    #[test]
    fn output_current_signs() {
        let inv = Inverter::new(TechFlavor::Fast, 1.0);
        // Gate low -> output pulled up (positive current into node).
        assert!(inv.output_current_ma(0.0, 0.45) > 0.0);
        // Gate high -> output pulled down.
        assert!(inv.output_current_ma(0.9, 0.45) < 0.0);
    }

    #[test]
    fn slow_flavor_has_smaller_caps() {
        let fast = Inverter::new(TechFlavor::Fast, 1.0);
        let slow = Inverter::new(TechFlavor::Slow, 1.0);
        assert!(slow.cin_ff < fast.cin_ff);
        assert!(slow.cout_ff < fast.cout_ff);
    }

    #[test]
    fn cross_tier_swing_clears_switching_threshold() {
        // 0.81 V input high must register on a 0.90 V gate: the paper's
        // V_DDH - V_DDL < Vth condition.
        let fast = Inverter::new(TechFlavor::Fast, 1.0);
        let slow = Inverter::new(TechFlavor::Slow, 1.0);
        assert!(slow.vdd > fast.switching_threshold());
        assert!(fast.vdd > slow.switching_threshold());
    }
}
