use m3d_tech::THERMAL_VOLTAGE;

/// Device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosfetKind {
    /// N-channel: pulls the output low.
    Nmos,
    /// P-channel: pulls the output high.
    Pmos,
}

/// Alpha-power-law MOSFET parameters.
///
/// The Sakurai–Newton model captures short-channel velocity saturation with
/// a single exponent `alpha` (≈1.3 at 28 nm) and is accurate enough for the
/// relative boundary-cell comparisons in Tables II–III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetParams {
    /// Threshold voltage magnitude, volts.
    pub vth: f64,
    /// Velocity-saturation exponent.
    pub alpha: f64,
    /// Transconductance scale: saturation current (mA) of a unit-width
    /// device at 1 V of overdrive.
    pub k_ma: f64,
    /// Device width multiple.
    pub width: f64,
    /// Saturation-voltage factor: `Vdsat = kv · (Vgs − Vth)^(alpha/2)`.
    pub kv: f64,
    /// Subthreshold slope factor `n`.
    pub subthreshold_n: f64,
    /// Subthreshold current prefactor (mA per unit width at `Vgs = Vth`).
    pub i0_ma: f64,
}

impl MosfetParams {
    /// A 28 nm-class device with the given threshold and width.
    #[must_use]
    pub fn nm28(vth: f64, width: f64) -> Self {
        MosfetParams {
            vth,
            alpha: 1.3,
            k_ma: 0.52,
            width,
            kv: 0.9,
            subthreshold_n: 1.5,
            i0_ma: 0.31,
        }
    }
}

/// A single MOSFET evaluated with the alpha-power law.
///
/// Terminal convention: `ids(vgs, vds)` takes *magnitudes* — callers map
/// PMOS voltages to magnitudes before evaluation (see [`Mosfet::current`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    /// Polarity.
    pub kind: MosfetKind,
    /// Device parameters.
    pub params: MosfetParams,
}

impl Mosfet {
    /// Creates a device.
    #[must_use]
    pub fn new(kind: MosfetKind, params: MosfetParams) -> Self {
        Mosfet { kind, params }
    }

    /// Drain current magnitude in mA for gate-source and drain-source
    /// voltage *magnitudes* (both ≥ 0 in normal operation; negative values
    /// are clamped into the subthreshold expression).
    #[must_use]
    pub fn ids(&self, vgs: f64, vds: f64) -> f64 {
        let p = &self.params;
        let vds = vds.max(0.0);
        let overdrive = vgs - p.vth;
        if overdrive <= 0.0 {
            // Subthreshold: exponential in overdrive, saturating in vds.
            let n_vt = p.subthreshold_n * THERMAL_VOLTAGE;
            let isub = p.i0_ma * p.width * (overdrive / n_vt).exp();
            return isub * (1.0 - (-vds / THERMAL_VOLTAGE).exp());
        }
        let i_sat = p.k_ma * p.width * overdrive.powf(p.alpha);
        let vdsat = p.kv * overdrive.powf(p.alpha / 2.0);
        if vds >= vdsat {
            i_sat
        } else {
            // Smooth linear region: parabolic interpolation to saturation.
            let x = vds / vdsat;
            i_sat * x * (2.0 - x)
        }
    }

    /// Drain current with physical node voltages. For NMOS: source at
    /// `vlo`, drain at `vout`, gate at `vg` — current flows drain→source
    /// (discharging). For PMOS: source at `vhi`, drain at `vout` — current
    /// flows source→drain (charging).
    ///
    /// Returns the *magnitude* of the channel current in mA.
    #[must_use]
    pub fn current(&self, vg: f64, vout: f64, vhi: f64, vlo: f64) -> f64 {
        match self.kind {
            MosfetKind::Nmos => self.ids(vg - vlo, vout - vlo),
            MosfetKind::Pmos => self.ids(vhi - vg, vhi - vout),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> Mosfet {
        Mosfet::new(MosfetKind::Nmos, MosfetParams::nm28(0.32, 1.0))
    }

    #[test]
    fn saturation_current_follows_alpha_power() {
        let m = nmos();
        let i1 = m.ids(0.32 + 0.2, 1.0);
        let i2 = m.ids(0.32 + 0.4, 1.0);
        let expected_ratio = 2.0_f64.powf(1.3);
        assert!((i2 / i1 - expected_ratio).abs() < 1e-6);
    }

    #[test]
    fn linear_region_is_below_saturation() {
        let m = nmos();
        let sat = m.ids(0.9, 0.9);
        let lin = m.ids(0.9, 0.05);
        assert!(lin < sat);
        assert!(lin > 0.0);
    }

    #[test]
    fn zero_vds_gives_zero_current() {
        let m = nmos();
        assert_eq!(m.ids(0.9, 0.0), 0.0);
        // Subthreshold too.
        assert!(m.ids(0.1, 0.0).abs() < 1e-15);
    }

    #[test]
    fn subthreshold_is_exponential() {
        let m = nmos();
        let a = m.ids(0.22, 0.9);
        let b = m.ids(0.12, 0.9);
        // 100 mV below: about e^{-0.1/0.0388} ≈ 13x less.
        let ratio = a / b;
        assert!((10.0..20.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn current_is_continuous_at_threshold() {
        let m = nmos();
        let below = m.ids(0.32 - 1e-6, 0.9);
        let above = m.ids(0.32 + 1e-6, 0.9);
        // i0 is calibrated so the subthreshold expression meets the
        // alpha-power branch within a small factor at Vgs = Vth.
        assert!(below > 0.0 && above >= 0.0);
        assert!((below / (above + below)).abs() < 1.0);
    }

    #[test]
    fn pmos_maps_voltages_correctly() {
        let p = Mosfet::new(MosfetKind::Pmos, MosfetParams::nm28(0.32, 1.0));
        // Gate low, output low, supply 0.9: PMOS strongly on.
        let on = p.current(0.0, 0.0, 0.9, 0.0);
        // Gate at supply: off.
        let off = p.current(0.9, 0.0, 0.9, 0.0);
        assert!(on / off.max(1e-12) > 1e3);
    }

    #[test]
    fn overdriven_gate_turns_pmos_harder_off() {
        // The Table III slow->fast effect: input high at 0.90 V on a
        // 0.81 V inverter drives the PMOS gate *above* its source.
        let p = Mosfet::new(MosfetKind::Pmos, MosfetParams::nm28(0.43, 1.0));
        let nominal_off = p.current(0.81, 0.0, 0.81, 0.0);
        let extra_off = p.current(0.90, 0.0, 0.81, 0.0);
        assert!(extra_off < nominal_off);
    }

    #[test]
    fn underdriven_gate_leaks_more() {
        // The Table III fast->slow effect: input high at 0.81 V on a
        // 0.90 V inverter leaves 90 mV of PMOS overdrive.
        let p = Mosfet::new(MosfetKind::Pmos, MosfetParams::nm28(0.32, 1.0));
        let nominal_off = p.current(0.90, 0.0, 0.90, 0.0);
        let leaky = p.current(0.81, 0.0, 0.90, 0.0);
        assert!(leaky / nominal_off > 3.0);
    }
}
