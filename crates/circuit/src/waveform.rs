/// A sampled node-voltage waveform with timing measurements.
///
/// Samples are uniformly spaced; measurement helpers interpolate linearly
/// between samples, so slews and delays are sub-timestep accurate.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    dt_ns: f64,
    samples: Vec<f64>,
}

impl Waveform {
    /// Wraps uniformly sampled voltages with timestep `dt_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `dt_ns` is not positive.
    #[must_use]
    pub fn new(dt_ns: f64, samples: Vec<f64>) -> Self {
        assert!(dt_ns > 0.0, "timestep must be positive");
        Waveform { dt_ns, samples }
    }

    /// Sample spacing in ns.
    #[must_use]
    pub fn dt_ns(&self) -> f64 {
        self.dt_ns
    }

    /// The raw samples.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` for an empty waveform.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Final (settled) voltage.
    #[must_use]
    pub fn final_voltage(&self) -> f64 {
        self.samples.last().copied().unwrap_or(0.0)
    }

    /// First time (ns) at which the waveform crosses `level` in the given
    /// direction, searching from `from_ns`. Linear interpolation between
    /// samples. `None` if no crossing occurs.
    #[must_use]
    pub fn crossing(&self, level: f64, rising: bool, from_ns: f64) -> Option<f64> {
        let start = (from_ns / self.dt_ns).floor().max(0.0) as usize;
        for i in start..self.samples.len().saturating_sub(1) {
            let (a, b) = (self.samples[i], self.samples[i + 1]);
            let crossed = if rising {
                a < level && b >= level
            } else {
                a > level && b <= level
            };
            if crossed {
                let frac = (level - a) / (b - a);
                return Some((i as f64 + frac) * self.dt_ns);
            }
        }
        None
    }

    /// 10 %–90 % transition time (ns) of the edge that starts after
    /// `from_ns`, measured against full swing `vdd`. `None` when the edge
    /// is incomplete within the window.
    #[must_use]
    pub fn slew(&self, vdd: f64, rising: bool, from_ns: f64) -> Option<f64> {
        let (lo, hi) = (0.1 * vdd, 0.9 * vdd);
        if rising {
            let t0 = self.crossing(lo, true, from_ns)?;
            let t1 = self.crossing(hi, true, t0)?;
            Some(t1 - t0)
        } else {
            let t0 = self.crossing(hi, false, from_ns)?;
            let t1 = self.crossing(lo, false, t0)?;
            Some(t1 - t0)
        }
    }

    /// Delay (ns) from this waveform's 50 % crossing to `other`'s 50 %
    /// crossing. Each waveform uses its own full-swing voltage — the
    /// cross-tier comparison the boundary experiments need.
    #[must_use]
    pub fn delay_to(
        &self,
        self_vdd: f64,
        self_rising: bool,
        other: &Waveform,
        other_vdd: f64,
        other_rising: bool,
        from_ns: f64,
    ) -> Option<f64> {
        let t_in = self.crossing(0.5 * self_vdd, self_rising, from_ns)?;
        let t_out = other.crossing(0.5 * other_vdd, other_rising, t_in)?;
        Some(t_out - t_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(dt: f64, n: usize, v0: f64, v1: f64) -> Waveform {
        let samples = (0..n)
            .map(|i| v0 + (v1 - v0) * i as f64 / (n - 1) as f64)
            .collect();
        Waveform::new(dt, samples)
    }

    #[test]
    fn crossing_interpolates() {
        // 0 -> 1 V over 10 ns in 11 samples.
        let w = ramp(1.0, 11, 0.0, 1.0);
        let t = w.crossing(0.55, true, 0.0).unwrap();
        assert!((t - 5.5).abs() < 1e-9);
    }

    #[test]
    fn crossing_respects_direction() {
        let w = ramp(1.0, 11, 1.0, 0.0);
        assert!(w.crossing(0.5, true, 0.0).is_none());
        assert!(w.crossing(0.5, false, 0.0).is_some());
    }

    #[test]
    fn slew_of_linear_ramp() {
        // Linear 0->1 over 10 ns: 10%-90% takes 8 ns.
        let w = ramp(0.1, 101, 0.0, 1.0);
        let s = w.slew(1.0, true, 0.0).unwrap();
        assert!((s - 8.0).abs() < 0.05);
    }

    #[test]
    fn delay_between_shifted_ramps() {
        // Input ramps 0->1 over 30 ns (50 % at 15 ns); output is the same
        // ramp delayed by 3 ns (50 % at 18 ns).
        let mut out_samples = vec![0.0; 31];
        for (i, s) in out_samples.iter_mut().enumerate() {
            let t = i as f64;
            *s = ((t - 3.0) / 30.0).clamp(0.0, 1.0);
        }
        let input = ramp(1.0, 31, 0.0, 1.0);
        let output = Waveform::new(1.0, out_samples);
        let d = input.delay_to(1.0, true, &output, 1.0, true, 0.0).unwrap();
        assert!((d - 3.0).abs() < 1e-9);
    }

    #[test]
    fn incomplete_edge_yields_none() {
        let w = ramp(1.0, 11, 0.0, 0.5);
        assert!(w.slew(1.0, true, 0.0).is_none());
    }
}
