//! The FO-4 boundary-cell experiments of Fig. 2 / Tables II–III.
//!
//! Two arrangements are characterized:
//!
//! * **Heterogeneity at the driver output** (Fig. 2a): the driver sits on
//!   one tier, its four load inverters on the other. The driver's output
//!   slew — and therefore the loads' input slew — shifts with the foreign
//!   load capacitance.
//! * **Heterogeneity at the driver input** (Fig. 2b): driver and loads
//!   share a tier, but the signal feeding the driver comes from the other
//!   tier and therefore swings to a different supply. Delay shifts are
//!   small and sign-opposed between the two directions; leakage is wildly
//!   asymmetric (an under-driven PMOS gate leaks exponentially more).
//!
//! Each experiment returns an [`Fo4Measurement`]; the bench binaries format
//! them into the paper's Tables II and III.

use crate::inverter::{Inverter, TechFlavor};
use crate::sim::{ChainSim, Stage};

/// Measured quantities of one FO-4 boundary case. Times in ns, power in µW.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fo4Measurement {
    /// Gate swing seen by the driver, volts ("Driver VG" in Table III).
    pub driver_vg: f64,
    /// 10–90 % rise slew at the driver output, ns.
    pub rise_slew_ns: f64,
    /// 90–10 % fall slew at the driver output, ns.
    pub fall_slew_ns: f64,
    /// Input-50 % to output-50 % rising delay, ns.
    pub rise_delay_ns: f64,
    /// Input-50 % to output-50 % falling delay, ns.
    pub fall_delay_ns: f64,
    /// Static leakage power of driver + loads, µW.
    pub leakage_uw: f64,
    /// Average total power over one switching cycle, µW.
    pub total_power_uw: f64,
}

impl Fo4Measurement {
    /// Percent change of each metric relative to `baseline`, in the order
    /// (rise slew, fall slew, rise delay, fall delay, leakage, total).
    #[must_use]
    pub fn percent_delta(&self, baseline: &Fo4Measurement) -> [f64; 6] {
        let pct = |a: f64, b: f64| (a - b) / b * 100.0;
        [
            pct(self.rise_slew_ns, baseline.rise_slew_ns),
            pct(self.fall_slew_ns, baseline.fall_slew_ns),
            pct(self.rise_delay_ns, baseline.rise_delay_ns),
            pct(self.fall_delay_ns, baseline.fall_delay_ns),
            pct(self.leakage_uw, baseline.leakage_uw),
            pct(self.total_power_uw, baseline.total_power_uw),
        ]
    }
}

/// Simulation window (ns): one rising edge at 0.1 ns, one falling edge at
/// half the window.
const WINDOW_NS: f64 = 2.0;
/// Stimulus ramp, ns.
const RAMP_NS: f64 = 0.02;

/// Runs one *heterogeneity at driver output* case (Fig. 2a): the driver is
/// `driver` flavor, the four loads are `load` flavor.
#[must_use]
pub fn driver_output_case(driver: TechFlavor, load: TechFlavor) -> Fo4Measurement {
    let drv = Inverter::new(driver, 1.0);
    let ld = Inverter::new(load, 1.0);
    let sim = ChainSim::fo4(drv, ld);
    measure(&sim, 1, drv.vdd)
}

/// Runs one *heterogeneity at driver input* case (Fig. 2b): the signal
/// source is `source` flavor; the driver and its four loads are `driver`
/// flavor.
#[must_use]
pub fn driver_input_case(source: TechFlavor, driver: TechFlavor) -> Fo4Measurement {
    let src = Inverter::new(source, 1.0);
    let drv = Inverter::new(driver, 1.0);
    let stages = vec![
        // Shaping stage in the source tier produces a realistic edge that
        // swings to the source tier's supply.
        Stage {
            inv: src,
            parallel: 1.0,
            extra_load_ff: 0.0,
        },
        Stage {
            inv: drv,
            parallel: 1.0,
            extra_load_ff: 6.0,
        },
        Stage {
            inv: drv,
            parallel: 4.0,
            extra_load_ff: 0.0,
        },
        Stage {
            inv: drv,
            parallel: 16.0,
            extra_load_ff: 0.0,
        },
    ];
    let sim = ChainSim::new(stages, src.vdd);
    measure(&sim, 1, src.vdd)
}

/// Measures the stage at `driver_idx`: slews and delays at its output,
/// leakage of driver + loads, average cycle power of the whole structure.
fn measure(sim: &ChainSim, driver_idx: usize, input_vdd: f64) -> Fo4Measurement {
    let (waves, stage_energy_fj) = sim.run_with_stage_energy(WINDOW_NS, RAMP_NS);
    let input = &waves[driver_idx - 1];
    let output = &waves[driver_idx];
    let out_vdd = sim.stages()[driver_idx].inv.vdd;

    // The stimulus rises at 0.1 ns -> shaping output falls -> driver
    // output rises. The falling stimulus edge at WINDOW/2 produces the
    // opposite pair.
    let rise_slew = output
        .slew(out_vdd, true, 0.0)
        .expect("driver output must rise in window");
    let fall_slew = output
        .slew(out_vdd, false, WINDOW_NS * 0.45)
        .expect("driver output must fall in window");
    let rise_delay = input
        .delay_to(input_vdd, false, output, out_vdd, true, 0.0)
        .expect("rising transition present");
    let fall_delay = input
        .delay_to(input_vdd, true, output, out_vdd, false, WINDOW_NS * 0.45)
        .expect("falling transition present");

    // Static leakage: settle the chain with the stimulus low and sum the
    // DC supply power of the driver and load stages, following the gate
    // voltages down the chain.
    // Leakage and total power are measured on the *driver* stage (the
    // cell under test) as in the paper: Table II's boundary changes the
    // driver's load, Table III changes its gate swing. The load and
    // termination stages exist to shape realistic waveforms.
    let mut leakage_uw = 0.0;
    let mut vg = 0.0;
    for i in 0..=driver_idx {
        let op = sim.dc_operating_point(i, vg);
        if i == driver_idx {
            leakage_uw = op.static_power_uw;
        }
        vg = op.vout;
    }

    // Average driver power: one rise + one fall per window; fJ/ns ≡ µW.
    let total_power_uw = stage_energy_fj[driver_idx] / WINDOW_NS;

    Fo4Measurement {
        driver_vg: input_vdd,
        rise_slew_ns: rise_slew,
        fall_slew_ns: fall_slew,
        rise_delay_ns: rise_delay,
        fall_delay_ns: fall_delay,
        leakage_uw,
        total_power_uw,
    }
}

/// The four driver-output cases of Table II, in the paper's column order:
/// (fast,fast), (fast,slow), (slow,slow), (slow,fast).
#[must_use]
pub fn table2_cases() -> [Fo4Measurement; 4] {
    [
        driver_output_case(TechFlavor::Fast, TechFlavor::Fast),
        driver_output_case(TechFlavor::Fast, TechFlavor::Slow),
        driver_output_case(TechFlavor::Slow, TechFlavor::Slow),
        driver_output_case(TechFlavor::Slow, TechFlavor::Fast),
    ]
}

/// The four driver-input cases of Table III, in the paper's column order:
/// (fast,fast), (slow source → fast), (slow,slow), (fast source → slow).
#[must_use]
pub fn table3_cases() -> [Fo4Measurement; 4] {
    [
        driver_input_case(TechFlavor::Fast, TechFlavor::Fast),
        driver_input_case(TechFlavor::Slow, TechFlavor::Fast),
        driver_input_case(TechFlavor::Slow, TechFlavor::Slow),
        driver_input_case(TechFlavor::Fast, TechFlavor::Slow),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_cases_have_sane_magnitudes() {
        let m = driver_output_case(TechFlavor::Fast, TechFlavor::Fast);
        assert!(m.rise_delay_ns > 0.0 && m.rise_delay_ns < 0.2);
        assert!(m.rise_slew_ns > 0.0 && m.rise_slew_ns < 0.5);
        assert!(m.leakage_uw > 0.0);
        assert!(m.total_power_uw > m.leakage_uw);
    }

    #[test]
    fn slow_loads_speed_up_a_fast_driver() {
        // Table II, Case-II vs Case-I: slow loads have smaller input caps,
        // so slews and delays *decrease* (negative deltas in the paper).
        let base = driver_output_case(TechFlavor::Fast, TechFlavor::Fast);
        let hetero = driver_output_case(TechFlavor::Fast, TechFlavor::Slow);
        let d = hetero.percent_delta(&base);
        assert!(d[0] < 0.0, "rise slew delta {}", d[0]);
        assert!(d[2] < 0.0, "rise delay delta {}", d[2]);
    }

    #[test]
    fn fast_loads_slow_down_a_slow_driver() {
        // Table II, Case-IV vs Case-III: positive deltas.
        let base = driver_output_case(TechFlavor::Slow, TechFlavor::Slow);
        let hetero = driver_output_case(TechFlavor::Slow, TechFlavor::Fast);
        let d = hetero.percent_delta(&base);
        assert!(d[0] > 0.0, "rise slew delta {}", d[0]);
        assert!(d[2] > 0.0, "rise delay delta {}", d[2]);
    }

    #[test]
    fn slew_deltas_stay_within_characterized_band() {
        // The paper's acceptance criterion: boundary slews move <= ~15 %.
        for (base, hetero) in [
            (
                driver_output_case(TechFlavor::Fast, TechFlavor::Fast),
                driver_output_case(TechFlavor::Fast, TechFlavor::Slow),
            ),
            (
                driver_output_case(TechFlavor::Slow, TechFlavor::Slow),
                driver_output_case(TechFlavor::Slow, TechFlavor::Fast),
            ),
        ] {
            let d = hetero.percent_delta(&base);
            assert!(d[0].abs() < 30.0, "rise slew delta {}", d[0]);
            assert!(d[1].abs() < 30.0, "fall slew delta {}", d[1]);
        }
    }

    #[test]
    fn underdriven_input_blows_up_leakage() {
        // Table III: slow-tier signal into fast-tier FO4 -> leakage up by
        // a large factor; delays shift only a few percent.
        let base = driver_input_case(TechFlavor::Fast, TechFlavor::Fast);
        let hetero = driver_input_case(TechFlavor::Slow, TechFlavor::Fast);
        let d = hetero.percent_delta(&base);
        assert!(d[4] > 100.0, "leakage delta {} should be large", d[4]);
        assert!(d[2] > 0.0, "rise delay should increase, got {}", d[2]);
        assert!(hetero.driver_vg < base.driver_vg);
    }

    #[test]
    fn overdriven_input_reduces_leakage() {
        // Table III opposite direction: fast-tier signal into slow FO4.
        let base = driver_input_case(TechFlavor::Slow, TechFlavor::Slow);
        let hetero = driver_input_case(TechFlavor::Fast, TechFlavor::Slow);
        let d = hetero.percent_delta(&base);
        assert!(d[4] < 0.0, "leakage delta {} should be negative", d[4]);
        assert!(d[2] < 0.0, "rise delay should decrease, got {}", d[2]);
    }
}
