//! Transistor-level transient simulation — the workspace's HSPICE substitute.
//!
//! Section II-B of the paper characterizes the two heterogeneity boundary
//! conditions of an FO-4 inverter (Fig. 2) with SPICE on encrypted foundry
//! models. Those models are proprietary, so this crate implements a small
//! circuit simulator from first principles:
//!
//! * [`Mosfet`] — Sakurai–Newton alpha-power-law device with linear /
//!   saturation / subthreshold regions,
//! * [`Inverter`] — a CMOS inverter built from two devices plus parasitics,
//! * [`ChainSim`] — fixed-timestep transient analysis of an inverter chain
//!   with per-stage supply voltages (the heterogeneous ingredient),
//! * [`Waveform`] — slew / delay / crossing measurements,
//! * [`fo4`] — the two boundary experiments that regenerate Tables II–III.
//!
//! # Examples
//!
//! ```
//! use m3d_circuit::{fo4, TechFlavor};
//!
//! // Heterogeneity at the driver output: fast driver, slow loads.
//! let m = fo4::driver_output_case(TechFlavor::Fast, TechFlavor::Slow);
//! assert!(m.rise_delay_ns > 0.0);
//! assert!(m.leakage_uw > 0.0);
//! ```

mod inverter;
mod mosfet;
mod sim;
mod waveform;

pub mod fo4;

pub use inverter::{Inverter, TechFlavor};
pub use mosfet::{Mosfet, MosfetKind, MosfetParams};
pub use sim::{ChainSim, DcOperatingPoint};
pub use waveform::Waveform;
