//! Property tests for the corner axis: clamped bilinear interpolation
//! never leaves the table's value range, and the slow/typical/fast
//! derating applied by [`CornerParams::derated`] orders every
//! NLDM-style table point monotonically.

use m3d_tech::{Corner, CornerParams, DeviceModel, Lut2d};
use proptest::prelude::*;

const SLEW_AXIS: [f64; 7] = [0.002, 0.0063, 0.02, 0.063, 0.2, 0.63, 2.0];
const LOAD_AXIS: [f64; 7] = [0.2, 0.75, 2.8, 10.4, 39.0, 117.0, 400.0];

fn table_from(f: impl Fn(f64, f64) -> f64) -> Lut2d {
    Lut2d::from_fn(SLEW_AXIS.to_vec(), LOAD_AXIS.to_vec(), f)
}

/// Min/max of the table's stored values, probed at the exact grid
/// points (where clamped bilinear lookup returns the raw entry).
fn value_range(lut: &Lut2d) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &s in &SLEW_AXIS {
        for &l in &LOAD_AXIS {
            let v = lut.lookup(s, l);
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    (lo, hi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bilinear_lookup_stays_within_table_bounds(
        a in -5.0..5.0f64,
        b in -3.0..3.0f64,
        c in -0.05..0.05f64,
        d in -0.01..0.01f64,
        slew in 0.0001..10.0f64,
        load in 0.01..2000.0f64,
    ) {
        // An arbitrary bilinear-in-the-cells surface, signs and all:
        // interpolation is a convex combination of four table entries
        // and clamping pins out-of-range queries to the border, so no
        // query may escape the stored value range.
        let lut = table_from(|s, l| a + b * s + c * l + d * s * l);
        let (lo, hi) = value_range(&lut);
        let v = lut.lookup(slew, load);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{lo} <= {v} <= {hi}");
    }

    #[test]
    fn corner_derating_orders_delay_tables_monotonically(
        width in 1.0..16.0f64,
        slew in 0.0005..5.0f64,
        load in 0.05..1000.0f64,
        pick in 0.0..1.0f64,
    ) {
        // Build the same NLDM delay table at each corner, exactly the
        // way library characterization does, and require the slow >
        // typical > fast ordering to survive interpolation at an
        // arbitrary query point (in or out of table range).
        let base: fn(Corner) -> CornerParams = if pick < 0.5 {
            CornerParams::nine_track_at
        } else {
            CornerParams::twelve_track_at
        };
        let lut_at = |corner: Corner| {
            let model = DeviceModel::new(base(corner));
            table_from(|s, l| model.stage_delay_ns(width, s, l))
        };
        let slow = lut_at(Corner::Slow).lookup(slew, load);
        let typ = lut_at(Corner::Typical).lookup(slew, load);
        let fast = lut_at(Corner::Fast).lookup(slew, load);
        prop_assert!(slow > typ, "slow {slow} <= typical {typ}");
        prop_assert!(typ > fast, "typical {typ} <= fast {fast}");
        // All three stay within their own table bounds.
        for (corner, v) in [(Corner::Slow, slow), (Corner::Typical, typ), (Corner::Fast, fast)] {
            let (lo, hi) = value_range(&lut_at(corner));
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "{corner}: {lo} <= {v} <= {hi}");
        }
    }
}
