use crate::THERMAL_VOLTAGE;
use std::fmt;

/// A process-voltage (PVT) corner at which libraries are generated and
/// timing is signed off.
///
/// [`Corner::Typical`] is the nominal corner every library preset ships
/// at; [`Corner::Slow`] and [`Corner::Fast`] derate the supply and
/// threshold in the pessimistic and optimistic directions
/// (see [`CornerParams::derated`]). Ordering is slow → typical → fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Corner {
    /// Worst-case corner: lowered supply, raised threshold (SS-like).
    Slow,
    /// The nominal corner — derating is the identity here.
    Typical,
    /// Best-case corner: raised supply, lowered threshold (FF-like).
    Fast,
}

impl Corner {
    /// All corners, slow first (the sign-off sweep order).
    pub const ALL: [Corner; 3] = [Corner::Slow, Corner::Typical, Corner::Fast];

    /// Conventional library-name suffix (`ss`/`tt`/`ff`).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            Corner::Slow => "ss",
            Corner::Typical => "tt",
            Corner::Fast => "ff",
        }
    }
}

impl fmt::Display for Corner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Corner::Slow => f.write_str("slow"),
            Corner::Typical => f.write_str("typical"),
            Corner::Fast => f.write_str("fast"),
        }
    }
}

/// Supply derating applied at the slow corner (−8 % VDD).
const SLOW_VDD_FACTOR: f64 = 0.92;
/// Supply derating applied at the fast corner (+8 % VDD).
const FAST_VDD_FACTOR: f64 = 1.08;
/// Threshold shift (volts) applied at the derated corners: up at slow,
/// down at fast.
const CORNER_VTH_SHIFT: f64 = 0.03;

/// Physical parameters of one technology corner (one track-height library).
///
/// These are the knobs from which everything else — drive resistance, pin
/// capacitance, leakage, NLDM tables — is derived. The two corners shipped
/// with this crate ([`CornerParams::twelve_track`] and
/// [`CornerParams::nine_track`]) reproduce the qualitative contrasts of the
/// paper's foundry 28 nm 12-track and 9-track libraries.
#[derive(Debug, Clone, PartialEq)]
pub struct CornerParams {
    /// Corner name, e.g. `"28nm_12T"`.
    pub name: &'static str,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Effective threshold voltage in volts (averaged NMOS/PMOS magnitude).
    pub vth: f64,
    /// Velocity-saturation exponent of the alpha-power law.
    pub alpha: f64,
    /// Effective transistor width factor relative to the 12-track cell
    /// (taller cells fit wider devices → more drive, more capacitance).
    pub width_factor: f64,
    /// Cell height in microns (`tracks × M1 pitch`).
    pub cell_height_um: f64,
    /// Placement site width in microns (shared across track variants).
    pub site_width_um: f64,
    /// Saturation current of a unit-width device at the reference
    /// overdrive, in mA (calibrates absolute delay).
    pub i_sat_ma: f64,
    /// Gate capacitance of a unit-width X1 inverter input, in fF.
    pub unit_gate_cap_ff: f64,
    /// Parasitic (self-load) output capacitance of a unit inverter, in fF.
    pub unit_parasitic_cap_ff: f64,
    /// Subthreshold slope factor `n` (leakage ∝ exp(−Vth / (n·vT))).
    pub subthreshold_n: f64,
    /// Leakage prefactor for a unit-width device, in µA.
    pub leak_prefactor_ua: f64,
}

impl CornerParams {
    /// The fast, large, leaky 12-track corner at 0.90 V.
    #[must_use]
    pub fn twelve_track() -> Self {
        CornerParams {
            name: "28nm_12T",
            vdd: 0.90,
            vth: 0.32,
            alpha: 1.3,
            width_factor: 1.0,
            // 12 tracks x 90 nm M1 pitch.
            cell_height_um: 1.08,
            site_width_um: 0.152,
            i_sat_ma: 0.25,
            unit_gate_cap_ff: 0.90,
            unit_parasitic_cap_ff: 0.55,
            subthreshold_n: 1.5,
            leak_prefactor_ua: 310.0,
        }
    }

    /// The slow, small, low-leakage 9-track corner at 0.81 V.
    #[must_use]
    pub fn nine_track() -> Self {
        CornerParams {
            name: "28nm_9T",
            vdd: 0.81,
            vth: 0.43,
            alpha: 1.3,
            width_factor: 0.55,
            // 9 tracks x 90 nm M1 pitch: exactly 75 % of the 12T height.
            cell_height_um: 0.81,
            site_width_um: 0.152,
            i_sat_ma: 0.25,
            unit_gate_cap_ff: 0.90,
            unit_parasitic_cap_ff: 0.55,
            subthreshold_n: 1.5,
            leak_prefactor_ua: 310.0,
        }
    }

    /// The 12-track parameters derated to `corner`
    /// (`Corner::Typical` returns [`CornerParams::twelve_track`]
    /// unchanged, bit for bit).
    #[must_use]
    pub fn twelve_track_at(corner: Corner) -> Self {
        let name = match corner {
            Corner::Slow => "28nm_12T_ss",
            Corner::Typical => "28nm_12T",
            Corner::Fast => "28nm_12T_ff",
        };
        Self::twelve_track().derated(corner, name)
    }

    /// The 9-track parameters derated to `corner`
    /// (`Corner::Typical` returns [`CornerParams::nine_track`]
    /// unchanged, bit for bit).
    #[must_use]
    pub fn nine_track_at(corner: Corner) -> Self {
        let name = match corner {
            Corner::Slow => "28nm_9T_ss",
            Corner::Typical => "28nm_9T",
            Corner::Fast => "28nm_9T_ff",
        };
        Self::nine_track().derated(corner, name)
    }

    /// Derates these parameters to `corner`: the slow corner lowers VDD
    /// and raises Vth (strictly slower at every operating point under
    /// the alpha-power law), the fast corner does the opposite, and the
    /// typical corner is the identity — including the name, so typical
    /// libraries are indistinguishable from the undecorated presets.
    ///
    /// `name` is the library name the *derated* corner takes (corner
    /// names are static because they participate in cell naming and
    /// checkpoint tags).
    #[must_use]
    pub fn derated(&self, corner: Corner, name: &'static str) -> Self {
        match corner {
            Corner::Typical => self.clone(),
            Corner::Slow => CornerParams {
                name,
                vdd: self.vdd * SLOW_VDD_FACTOR,
                vth: self.vth + CORNER_VTH_SHIFT,
                ..self.clone()
            },
            Corner::Fast => CornerParams {
                name,
                vdd: self.vdd * FAST_VDD_FACTOR,
                vth: self.vth - CORNER_VTH_SHIFT,
                ..self.clone()
            },
        }
    }
}

/// Alpha-power-law device model: closed-form delay, slew and leakage used to
/// generate NLDM tables and by the [`m3d_circuit`](https://docs.rs)
/// transient simulator's operating-point checks.
///
/// The model is Sakurai–Newton: drive current `I ∝ W·(VDD − Vth)^α`, stage
/// delay `t ≈ C·VDD / I`, with an input-slew correction and a subthreshold
/// exponential for leakage.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    params: CornerParams,
}

impl DeviceModel {
    /// Wraps a corner's parameters.
    #[must_use]
    pub fn new(params: CornerParams) -> Self {
        DeviceModel { params }
    }

    /// The underlying corner parameters.
    #[must_use]
    pub fn params(&self) -> &CornerParams {
        &self.params
    }

    /// Saturation drive current in mA for a device of `width` units driven
    /// at gate voltage `vg` (volts). Returns the subthreshold current when
    /// `vg` is below threshold.
    #[must_use]
    pub fn drive_current_ma(&self, width: f64, vg: f64) -> f64 {
        let p = &self.params;
        let overdrive = vg - p.vth;
        if overdrive <= 0.0 {
            return self.subthreshold_current_ma(width, vg);
        }
        // Normalize so that vg == vdd(12T ref overdrive) gives i_sat.
        let ref_overdrive: f64 = 0.58; // 0.90 V - 0.32 V, the 12T reference.
        p.i_sat_ma * width * (overdrive / ref_overdrive).powf(p.alpha)
    }

    /// Subthreshold leakage current in mA for gate voltage `vg`.
    #[must_use]
    pub fn subthreshold_current_ma(&self, width: f64, vg: f64) -> f64 {
        let p = &self.params;
        let n_vt = p.subthreshold_n * THERMAL_VOLTAGE;
        p.leak_prefactor_ua * 1e-3 * width * ((vg - p.vth) / n_vt).exp()
    }

    /// Equivalent switching resistance (kΩ) of a gate with drive `width`,
    /// powered at `vdd` (volts). `R ≈ VDD / I_d` with the usual 0.69
    /// folded into the delay equation instead.
    #[must_use]
    pub fn drive_resistance_kohm(&self, width: f64, vdd: f64) -> f64 {
        vdd / self.drive_current_ma(width, vdd)
    }

    /// 50 %-to-50 % stage delay (ns) of a gate with drive `width` charging
    /// `load_ff` under input slew `slew_ns`.
    ///
    /// `delay = 0.69·R·C + k_slew·slew` — the canonical RC + slew-degradation
    /// form that NLDM tables encode.
    #[must_use]
    pub fn stage_delay_ns(&self, width: f64, slew_ns: f64, load_ff: f64) -> f64 {
        let p = &self.params;
        let r_kohm = self.drive_resistance_kohm(width, p.vdd);
        let c_total = load_ff + p.unit_parasitic_cap_ff * width;
        // kΩ · fF = ps; /1000 → ns.
        0.69 * r_kohm * c_total * 1e-3 + 0.12 * slew_ns
    }

    /// 10 %-to-90 % output slew (ns) for the same conditions.
    #[must_use]
    pub fn output_slew_ns(&self, width: f64, slew_ns: f64, load_ff: f64) -> f64 {
        let p = &self.params;
        let r_kohm = self.drive_resistance_kohm(width, p.vdd);
        let c_total = load_ff + p.unit_parasitic_cap_ff * width;
        2.2 * r_kohm * c_total * 1e-3 * 0.5 + 0.08 * slew_ns
    }

    /// Static leakage power (µW) of a gate with drive `width` at its
    /// nominal supply: `P = VDD · I_off`, with the device off (`vg = 0`).
    #[must_use]
    pub fn leakage_uw(&self, width: f64) -> f64 {
        let p = &self.params;
        // mA * V = mW; * 1000 → µW.
        self.subthreshold_current_ma(width, 0.0) * p.vdd * 1000.0
    }

    /// Input pin capacitance (fF) of a gate with drive `width`.
    #[must_use]
    pub fn input_cap_ff(&self, width: f64) -> f64 {
        self.params.unit_gate_cap_ff * self.params.width_factor * width
    }

    /// Internal switching energy (fJ) dissipated per output transition:
    /// short-circuit plus internal node charging, modeled as a fraction of
    /// the self-load `C·V²` energy.
    #[must_use]
    pub fn internal_energy_fj(&self, width: f64) -> f64 {
        let p = &self.params;
        let c_self = p.unit_parasitic_cap_ff * p.width_factor * width;
        0.5 * c_self * p.vdd * p.vdd * 1.3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_corner_drives_harder_than_slow() {
        let fast = DeviceModel::new(CornerParams::twelve_track());
        let slow = DeviceModel::new(CornerParams::nine_track());
        let i_fast = fast.drive_current_ma(1.0, fast.params().vdd);
        let i_slow = slow.drive_current_ma(slow.params().width_factor, slow.params().vdd);
        assert!(i_fast > 1.5 * i_slow);
    }

    #[test]
    fn delay_increases_with_load_and_slew() {
        let m = DeviceModel::new(CornerParams::twelve_track());
        let base = m.stage_delay_ns(1.0, 0.02, 2.0);
        assert!(m.stage_delay_ns(1.0, 0.02, 4.0) > base);
        assert!(m.stage_delay_ns(1.0, 0.10, 2.0) > base);
        // Bigger drive is faster.
        assert!(m.stage_delay_ns(4.0, 0.02, 2.0) < base);
    }

    #[test]
    fn subthreshold_current_is_exponential_in_vth() {
        let fast = DeviceModel::new(CornerParams::twelve_track());
        let slow = DeviceModel::new(CornerParams::nine_track());
        let ratio = fast.leakage_uw(1.0) / slow.leakage_uw(1.0);
        // delta-Vth of 100 mV at n*vT ≈ 39 mV → ~13x; width factor adds more.
        assert!(ratio > 8.0, "leakage ratio {ratio}");
    }

    #[test]
    fn below_threshold_gate_voltage_yields_leakage_not_drive() {
        let m = DeviceModel::new(CornerParams::twelve_track());
        let on = m.drive_current_ma(1.0, 0.9);
        let off = m.drive_current_ma(1.0, 0.1);
        assert!(on / off > 100.0);
    }

    #[test]
    fn typical_derating_is_the_identity() {
        assert_eq!(
            CornerParams::twelve_track_at(Corner::Typical),
            CornerParams::twelve_track()
        );
        assert_eq!(
            CornerParams::nine_track_at(Corner::Typical),
            CornerParams::nine_track()
        );
    }

    #[test]
    fn corner_ordering_is_strict_in_delay_and_leakage() {
        for base in [CornerParams::twelve_track_at, CornerParams::nine_track_at] {
            let slow = DeviceModel::new(base(Corner::Slow));
            let typ = DeviceModel::new(base(Corner::Typical));
            let fast = DeviceModel::new(base(Corner::Fast));
            // Overdrive stays positive at every corner.
            assert!(slow.params().vdd > slow.params().vth);
            for (slew, load) in [(0.002, 0.2), (0.02, 4.0), (0.5, 120.0), (2.0, 400.0)] {
                let d = |m: &DeviceModel| m.stage_delay_ns(1.0, slew, load);
                assert!(d(&slow) > d(&typ) && d(&typ) > d(&fast), "{slew}/{load}");
                let s = |m: &DeviceModel| m.output_slew_ns(1.0, slew, load);
                assert!(s(&slow) > s(&typ) && s(&typ) > s(&fast), "{slew}/{load}");
            }
            // Higher Vth at the slow corner leaks less; lower at fast leaks more.
            assert!(slow.leakage_uw(1.0) < typ.leakage_uw(1.0));
            assert!(fast.leakage_uw(1.0) > typ.leakage_uw(1.0));
        }
    }

    #[test]
    fn corner_names_and_suffixes_are_distinct() {
        let names: Vec<&str> = Corner::ALL
            .iter()
            .map(|&c| CornerParams::twelve_track_at(c).name)
            .collect();
        assert_eq!(names, ["28nm_12T_ss", "28nm_12T", "28nm_12T_ff"]);
        assert_eq!(Corner::Slow.suffix(), "ss");
        assert_eq!(Corner::Typical.to_string(), "typical");
    }

    #[test]
    fn partially_on_input_leaks_much_more() {
        // The Table III effect: driving a 0.90 V gate with a 0.81 V "high"
        // leaves 90 mV of PMOS gate overdrive → leakage blows up.
        let m = DeviceModel::new(CornerParams::twelve_track());
        let fully_off = m.subthreshold_current_ma(1.0, 0.0);
        // PMOS with Vgs = -(0.9-0.81) = -0.09 -> effective gate drive 0.09 V
        let partially_off = m.subthreshold_current_ma(1.0, 0.09);
        assert!(partially_off / fully_off > 5.0);
    }
}
