use crate::THERMAL_VOLTAGE;

/// Physical parameters of one technology corner (one track-height library).
///
/// These are the knobs from which everything else — drive resistance, pin
/// capacitance, leakage, NLDM tables — is derived. The two corners shipped
/// with this crate ([`CornerParams::twelve_track`] and
/// [`CornerParams::nine_track`]) reproduce the qualitative contrasts of the
/// paper's foundry 28 nm 12-track and 9-track libraries.
#[derive(Debug, Clone, PartialEq)]
pub struct CornerParams {
    /// Corner name, e.g. `"28nm_12T"`.
    pub name: &'static str,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Effective threshold voltage in volts (averaged NMOS/PMOS magnitude).
    pub vth: f64,
    /// Velocity-saturation exponent of the alpha-power law.
    pub alpha: f64,
    /// Effective transistor width factor relative to the 12-track cell
    /// (taller cells fit wider devices → more drive, more capacitance).
    pub width_factor: f64,
    /// Cell height in microns (`tracks × M1 pitch`).
    pub cell_height_um: f64,
    /// Placement site width in microns (shared across track variants).
    pub site_width_um: f64,
    /// Saturation current of a unit-width device at the reference
    /// overdrive, in mA (calibrates absolute delay).
    pub i_sat_ma: f64,
    /// Gate capacitance of a unit-width X1 inverter input, in fF.
    pub unit_gate_cap_ff: f64,
    /// Parasitic (self-load) output capacitance of a unit inverter, in fF.
    pub unit_parasitic_cap_ff: f64,
    /// Subthreshold slope factor `n` (leakage ∝ exp(−Vth / (n·vT))).
    pub subthreshold_n: f64,
    /// Leakage prefactor for a unit-width device, in µA.
    pub leak_prefactor_ua: f64,
}

impl CornerParams {
    /// The fast, large, leaky 12-track corner at 0.90 V.
    #[must_use]
    pub fn twelve_track() -> Self {
        CornerParams {
            name: "28nm_12T",
            vdd: 0.90,
            vth: 0.32,
            alpha: 1.3,
            width_factor: 1.0,
            // 12 tracks x 90 nm M1 pitch.
            cell_height_um: 1.08,
            site_width_um: 0.152,
            i_sat_ma: 0.25,
            unit_gate_cap_ff: 0.90,
            unit_parasitic_cap_ff: 0.55,
            subthreshold_n: 1.5,
            leak_prefactor_ua: 310.0,
        }
    }

    /// The slow, small, low-leakage 9-track corner at 0.81 V.
    #[must_use]
    pub fn nine_track() -> Self {
        CornerParams {
            name: "28nm_9T",
            vdd: 0.81,
            vth: 0.43,
            alpha: 1.3,
            width_factor: 0.55,
            // 9 tracks x 90 nm M1 pitch: exactly 75 % of the 12T height.
            cell_height_um: 0.81,
            site_width_um: 0.152,
            i_sat_ma: 0.25,
            unit_gate_cap_ff: 0.90,
            unit_parasitic_cap_ff: 0.55,
            subthreshold_n: 1.5,
            leak_prefactor_ua: 310.0,
        }
    }
}

/// Alpha-power-law device model: closed-form delay, slew and leakage used to
/// generate NLDM tables and by the [`m3d_circuit`](https://docs.rs)
/// transient simulator's operating-point checks.
///
/// The model is Sakurai–Newton: drive current `I ∝ W·(VDD − Vth)^α`, stage
/// delay `t ≈ C·VDD / I`, with an input-slew correction and a subthreshold
/// exponential for leakage.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    params: CornerParams,
}

impl DeviceModel {
    /// Wraps a corner's parameters.
    #[must_use]
    pub fn new(params: CornerParams) -> Self {
        DeviceModel { params }
    }

    /// The underlying corner parameters.
    #[must_use]
    pub fn params(&self) -> &CornerParams {
        &self.params
    }

    /// Saturation drive current in mA for a device of `width` units driven
    /// at gate voltage `vg` (volts). Returns the subthreshold current when
    /// `vg` is below threshold.
    #[must_use]
    pub fn drive_current_ma(&self, width: f64, vg: f64) -> f64 {
        let p = &self.params;
        let overdrive = vg - p.vth;
        if overdrive <= 0.0 {
            return self.subthreshold_current_ma(width, vg);
        }
        // Normalize so that vg == vdd(12T ref overdrive) gives i_sat.
        let ref_overdrive: f64 = 0.58; // 0.90 V - 0.32 V, the 12T reference.
        p.i_sat_ma * width * (overdrive / ref_overdrive).powf(p.alpha)
    }

    /// Subthreshold leakage current in mA for gate voltage `vg`.
    #[must_use]
    pub fn subthreshold_current_ma(&self, width: f64, vg: f64) -> f64 {
        let p = &self.params;
        let n_vt = p.subthreshold_n * THERMAL_VOLTAGE;
        p.leak_prefactor_ua * 1e-3 * width * ((vg - p.vth) / n_vt).exp()
    }

    /// Equivalent switching resistance (kΩ) of a gate with drive `width`,
    /// powered at `vdd` (volts). `R ≈ VDD / I_d` with the usual 0.69
    /// folded into the delay equation instead.
    #[must_use]
    pub fn drive_resistance_kohm(&self, width: f64, vdd: f64) -> f64 {
        vdd / self.drive_current_ma(width, vdd)
    }

    /// 50 %-to-50 % stage delay (ns) of a gate with drive `width` charging
    /// `load_ff` under input slew `slew_ns`.
    ///
    /// `delay = 0.69·R·C + k_slew·slew` — the canonical RC + slew-degradation
    /// form that NLDM tables encode.
    #[must_use]
    pub fn stage_delay_ns(&self, width: f64, slew_ns: f64, load_ff: f64) -> f64 {
        let p = &self.params;
        let r_kohm = self.drive_resistance_kohm(width, p.vdd);
        let c_total = load_ff + p.unit_parasitic_cap_ff * width;
        // kΩ · fF = ps; /1000 → ns.
        0.69 * r_kohm * c_total * 1e-3 + 0.12 * slew_ns
    }

    /// 10 %-to-90 % output slew (ns) for the same conditions.
    #[must_use]
    pub fn output_slew_ns(&self, width: f64, slew_ns: f64, load_ff: f64) -> f64 {
        let p = &self.params;
        let r_kohm = self.drive_resistance_kohm(width, p.vdd);
        let c_total = load_ff + p.unit_parasitic_cap_ff * width;
        2.2 * r_kohm * c_total * 1e-3 * 0.5 + 0.08 * slew_ns
    }

    /// Static leakage power (µW) of a gate with drive `width` at its
    /// nominal supply: `P = VDD · I_off`, with the device off (`vg = 0`).
    #[must_use]
    pub fn leakage_uw(&self, width: f64) -> f64 {
        let p = &self.params;
        // mA * V = mW; * 1000 → µW.
        self.subthreshold_current_ma(width, 0.0) * p.vdd * 1000.0
    }

    /// Input pin capacitance (fF) of a gate with drive `width`.
    #[must_use]
    pub fn input_cap_ff(&self, width: f64) -> f64 {
        self.params.unit_gate_cap_ff * self.params.width_factor * width
    }

    /// Internal switching energy (fJ) dissipated per output transition:
    /// short-circuit plus internal node charging, modeled as a fraction of
    /// the self-load `C·V²` energy.
    #[must_use]
    pub fn internal_energy_fj(&self, width: f64) -> f64 {
        let p = &self.params;
        let c_self = p.unit_parasitic_cap_ff * p.width_factor * width;
        0.5 * c_self * p.vdd * p.vdd * 1.3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_corner_drives_harder_than_slow() {
        let fast = DeviceModel::new(CornerParams::twelve_track());
        let slow = DeviceModel::new(CornerParams::nine_track());
        let i_fast = fast.drive_current_ma(1.0, fast.params().vdd);
        let i_slow = slow.drive_current_ma(slow.params().width_factor, slow.params().vdd);
        assert!(i_fast > 1.5 * i_slow);
    }

    #[test]
    fn delay_increases_with_load_and_slew() {
        let m = DeviceModel::new(CornerParams::twelve_track());
        let base = m.stage_delay_ns(1.0, 0.02, 2.0);
        assert!(m.stage_delay_ns(1.0, 0.02, 4.0) > base);
        assert!(m.stage_delay_ns(1.0, 0.10, 2.0) > base);
        // Bigger drive is faster.
        assert!(m.stage_delay_ns(4.0, 0.02, 2.0) < base);
    }

    #[test]
    fn subthreshold_current_is_exponential_in_vth() {
        let fast = DeviceModel::new(CornerParams::twelve_track());
        let slow = DeviceModel::new(CornerParams::nine_track());
        let ratio = fast.leakage_uw(1.0) / slow.leakage_uw(1.0);
        // delta-Vth of 100 mV at n*vT ≈ 39 mV → ~13x; width factor adds more.
        assert!(ratio > 8.0, "leakage ratio {ratio}");
    }

    #[test]
    fn below_threshold_gate_voltage_yields_leakage_not_drive() {
        let m = DeviceModel::new(CornerParams::twelve_track());
        let on = m.drive_current_ma(1.0, 0.9);
        let off = m.drive_current_ma(1.0, 0.1);
        assert!(on / off > 100.0);
    }

    #[test]
    fn partially_on_input_leaks_much_more() {
        // The Table III effect: driving a 0.90 V gate with a 0.81 V "high"
        // leaves 90 mV of PMOS gate overdrive → leakage blows up.
        let m = DeviceModel::new(CornerParams::twelve_track());
        let fully_off = m.subthreshold_current_ma(1.0, 0.0);
        // PMOS with Vgs = -(0.9-0.81) = -0.09 -> effective gate drive 0.09 V
        let partially_off = m.subthreshold_current_ma(1.0, 0.09);
        assert!(partially_off / fully_off > 5.0);
    }
}
