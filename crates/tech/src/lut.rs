use std::fmt;

/// A two-dimensional lookup table with bilinear interpolation — the NLDM
/// (non-linear delay model) table format used by Liberty-style timing
/// libraries.
///
/// Rows are indexed by input slew (ns), columns by output load (fF); values
/// are delays or output slews (ns). Lookups outside the characterized range
/// are clamped to the boundary, mirroring what sign-off tools do (and why
/// the paper worries about boundary-cell slews leaving the characterized
/// range).
///
/// # Examples
///
/// ```
/// use m3d_tech::Lut2d;
///
/// let lut = Lut2d::new(
///     vec![0.01, 0.1],
///     vec![1.0, 10.0],
///     vec![vec![0.02, 0.05], vec![0.03, 0.08]],
/// ).expect("valid table");
/// let mid = lut.lookup(0.055, 5.5);
/// assert!(mid > 0.02 && mid < 0.08);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Lut2d {
    slew_index: Vec<f64>,
    load_index: Vec<f64>,
    /// `values[i][j]` corresponds to `slew_index[i]`, `load_index[j]`.
    values: Vec<Vec<f64>>,
}

/// Error building a [`Lut2d`] from inconsistent axes or values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildLutError(String);

impl fmt::Display for BuildLutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid lookup table: {}", self.0)
    }
}

impl std::error::Error for BuildLutError {}

impl Lut2d {
    /// Builds a table from its axes and a row-major value matrix.
    ///
    /// # Errors
    ///
    /// Returns an error if either axis is empty or not strictly increasing,
    /// or if the value matrix shape does not match the axes.
    pub fn new(
        slew_index: Vec<f64>,
        load_index: Vec<f64>,
        values: Vec<Vec<f64>>,
    ) -> Result<Self, BuildLutError> {
        if slew_index.is_empty() || load_index.is_empty() {
            return Err(BuildLutError("axes must be non-empty".into()));
        }
        if !strictly_increasing(&slew_index) {
            return Err(BuildLutError(
                "slew axis must be strictly increasing".into(),
            ));
        }
        if !strictly_increasing(&load_index) {
            return Err(BuildLutError(
                "load axis must be strictly increasing".into(),
            ));
        }
        if values.len() != slew_index.len() {
            return Err(BuildLutError(format!(
                "expected {} rows, got {}",
                slew_index.len(),
                values.len()
            )));
        }
        for row in &values {
            if row.len() != load_index.len() {
                return Err(BuildLutError(format!(
                    "expected {} columns, got {}",
                    load_index.len(),
                    row.len()
                )));
            }
        }
        Ok(Lut2d {
            slew_index,
            load_index,
            values,
        })
    }

    /// Generates a table by sampling `f(slew, load)` on the given axes.
    ///
    /// # Panics
    ///
    /// Panics if the axes are empty or not strictly increasing (library
    /// generation is internal, so malformed axes are a programming error).
    #[must_use]
    pub fn from_fn(
        slew_index: Vec<f64>,
        load_index: Vec<f64>,
        f: impl Fn(f64, f64) -> f64,
    ) -> Self {
        let values = slew_index
            .iter()
            .map(|&s| load_index.iter().map(|&l| f(s, l)).collect())
            .collect();
        Lut2d::new(slew_index, load_index, values).expect("generated axes must be valid")
    }

    /// Characterized input-slew range `(min, max)` in ns.
    #[must_use]
    pub fn slew_range(&self) -> (f64, f64) {
        (
            self.slew_index[0],
            *self.slew_index.last().expect("non-empty"),
        )
    }

    /// Characterized load range `(min, max)` in fF.
    #[must_use]
    pub fn load_range(&self) -> (f64, f64) {
        (
            self.load_index[0],
            *self.load_index.last().expect("non-empty"),
        )
    }

    /// Bilinear interpolation at `(slew, load)`, clamped to the table
    /// boundary outside the characterized range.
    #[must_use]
    pub fn lookup(&self, slew: f64, load: f64) -> f64 {
        let (i0, i1, ti) = bracket(&self.slew_index, slew);
        let (j0, j1, tj) = bracket(&self.load_index, load);
        let v00 = self.values[i0][j0];
        let v01 = self.values[i0][j1];
        let v10 = self.values[i1][j0];
        let v11 = self.values[i1][j1];
        let a = v00 + (v01 - v00) * tj;
        let b = v10 + (v11 - v10) * tj;
        a + (b - a) * ti
    }

    /// Returns `true` if `(slew, load)` falls inside the characterized
    /// range (no clamping needed).
    #[must_use]
    pub fn in_range(&self, slew: f64, load: f64) -> bool {
        let (s0, s1) = self.slew_range();
        let (l0, l1) = self.load_range();
        slew >= s0 && slew <= s1 && load >= l0 && load <= l1
    }
}

fn strictly_increasing(axis: &[f64]) -> bool {
    axis.windows(2).all(|w| w[1] > w[0])
}

/// Finds bracketing indices and the interpolation fraction for `x` on
/// `axis`; clamps outside the range.
fn bracket(axis: &[f64], x: f64) -> (usize, usize, f64) {
    if axis.len() == 1 || x <= axis[0] {
        return (0, 0, 0.0);
    }
    let last = axis.len() - 1;
    if x >= axis[last] {
        return (last, last, 0.0);
    }
    // axis is strictly increasing; find the segment containing x.
    let mut hi = 1;
    while axis[hi] < x {
        hi += 1;
    }
    let lo = hi - 1;
    let t = (x - axis[lo]) / (axis[hi] - axis[lo]);
    (lo, hi, t)
}

/// Builds a logarithmically spaced axis from `lo` to `hi` with `n` points.
///
/// # Panics
///
/// Panics if `n < 2` or `lo`/`hi` are not positive and increasing.
#[must_use]
pub(crate) fn log_axis(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2 && lo > 0.0 && hi > lo, "invalid log axis");
    let step = (hi / lo).ln() / (n - 1) as f64;
    (0..n).map(|i| lo * (step * i as f64).exp()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Lut2d {
        Lut2d::new(
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![vec![0.0, 1.0], vec![2.0, 3.0]],
        )
        .unwrap()
    }

    #[test]
    fn lookup_hits_corners_exactly() {
        let l = simple();
        assert_eq!(l.lookup(0.0, 0.0), 0.0);
        assert_eq!(l.lookup(0.0, 1.0), 1.0);
        assert_eq!(l.lookup(1.0, 0.0), 2.0);
        assert_eq!(l.lookup(1.0, 1.0), 3.0);
    }

    #[test]
    fn lookup_interpolates_center() {
        let l = simple();
        assert!((l.lookup(0.5, 0.5) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn lookup_clamps_outside_range() {
        let l = simple();
        assert_eq!(l.lookup(-5.0, -5.0), 0.0);
        assert_eq!(l.lookup(5.0, 5.0), 3.0);
        assert!(!l.in_range(5.0, 0.5));
        assert!(l.in_range(0.5, 0.5));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Lut2d::new(vec![], vec![1.0], vec![]).is_err());
        assert!(Lut2d::new(vec![1.0, 1.0], vec![1.0], vec![vec![0.0], vec![0.0]]).is_err());
        assert!(Lut2d::new(vec![0.0, 1.0], vec![1.0], vec![vec![0.0]]).is_err());
        assert!(Lut2d::new(
            vec![0.0, 1.0],
            vec![1.0],
            vec![vec![0.0, 1.0], vec![0.0, 1.0]]
        )
        .is_err());
    }

    #[test]
    fn from_fn_matches_function_on_grid() {
        let f = |s: f64, l: f64| 2.0 * s + 3.0 * l;
        let lut = Lut2d::from_fn(vec![0.1, 0.2, 0.4], vec![1.0, 2.0], f);
        assert!((lut.lookup(0.2, 2.0) - f(0.2, 2.0)).abs() < 1e-12);
        // Bilinear interpolation of a bilinear function is exact.
        assert!((lut.lookup(0.15, 1.5) - f(0.15, 1.5)).abs() < 1e-12);
    }

    #[test]
    fn log_axis_spans_range() {
        let a = log_axis(0.001, 1.0, 7);
        assert_eq!(a.len(), 7);
        assert!((a[0] - 0.001).abs() < 1e-12);
        assert!((a[6] - 1.0).abs() < 1e-9);
        assert!(a.windows(2).all(|w| w[1] > w[0]));
    }
}
