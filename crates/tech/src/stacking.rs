//! The technology scenario axis: how two dies are joined
//! ([`StackingStyle`]), which corners a design is signed off at
//! ([`CornerSet`]), and the pair of both ([`TechContext`]) that the
//! flow threads from options to checkpoints.

use crate::beol::Miv;
use crate::device::Corner;
use std::fmt;

/// How the two dies of a 3-D stack are joined.
///
/// The default — and the paper's subject — is sequential **monolithic**
/// integration: the top tier is fabricated directly on the bottom one
/// and connected by nano-scale MIVs. The alternative modeled here is
/// **face-to-face hybrid bonding** (à la conventional die stacking):
/// two separately processed wafers bonded pad-to-pad, with a much
/// coarser bond pitch, a heavier per-bond capacitance, and a
/// per-connection bonding cost the cost model accounts for separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum StackingStyle {
    /// Sequential monolithic integration — nano-scale MIVs.
    #[default]
    Monolithic,
    /// Face-to-face wafer-on-wafer hybrid bonding — µm-scale bond pads.
    F2fHybridBond,
}

impl StackingStyle {
    /// Both styles, monolithic first (the sweep order).
    pub const ALL: [StackingStyle; 2] = [StackingStyle::Monolithic, StackingStyle::F2fHybridBond];

    /// The inter-tier via technology this style provides. For
    /// [`StackingStyle::Monolithic`] this is exactly [`Miv::default`],
    /// so binding the default style to a stack is the identity.
    #[must_use]
    pub fn via(self) -> Miv {
        match self {
            StackingStyle::Monolithic => Miv::default(),
            // A ~1 µm hybrid-bond pad: lower resistance than an MIV
            // (metal-to-metal bond) but ~8x the capacitance and a
            // 20x keep-out.
            StackingStyle::F2fHybridBond => Miv {
                r_kohm: 0.002,
                c_ff: 0.8,
                diameter_um: 1.0,
            },
        }
    }

    /// Minimum pitch between adjacent inter-tier connections, in µm.
    #[must_use]
    pub fn pitch_um(self) -> f64 {
        match self {
            StackingStyle::Monolithic => 0.1,
            StackingStyle::F2fHybridBond => 2.0,
        }
    }

    /// Whether this style bonds separately fabricated wafers (and thus
    /// pays a per-connection bonding cost instead of the monolithic
    /// integration adder).
    #[must_use]
    pub fn is_bonded(self) -> bool {
        matches!(self, StackingStyle::F2fHybridBond)
    }
}

impl fmt::Display for StackingStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackingStyle::Monolithic => f.write_str("monolithic"),
            StackingStyle::F2fHybridBond => f.write_str("f2f"),
        }
    }
}

/// Which corners a design is signed off at.
///
/// Construct single-corner sets through [`CornerSet::single`], which
/// normalizes `Single(Typical)` to [`CornerSet::Typical`] so the two
/// spellings of the default scenario cannot alias into distinct cache
/// keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CornerSet {
    /// Typical corner only — the pre-refactor behavior.
    #[default]
    Typical,
    /// All three corners; the worst result is the sign-off.
    Worst,
    /// Exactly one non-typical corner.
    Single(Corner),
}

impl CornerSet {
    /// A single-corner set, normalized (`Typical` maps to
    /// [`CornerSet::Typical`]).
    #[must_use]
    pub fn single(corner: Corner) -> Self {
        match corner {
            Corner::Typical => CornerSet::Typical,
            other => CornerSet::Single(other),
        }
    }

    /// The corners analyzed, in deterministic sign-off order.
    #[must_use]
    pub fn corners(self) -> &'static [Corner] {
        match self {
            CornerSet::Typical => &[Corner::Typical],
            CornerSet::Worst => &Corner::ALL,
            CornerSet::Single(Corner::Slow) => &[Corner::Slow],
            CornerSet::Single(Corner::Typical) => &[Corner::Typical],
            CornerSet::Single(Corner::Fast) => &[Corner::Fast],
        }
    }

    /// Whether this set analyzes only the typical corner (the default
    /// single-corner path).
    #[must_use]
    pub fn is_typical_only(self) -> bool {
        matches!(self.corners(), [Corner::Typical])
    }
}

impl fmt::Display for CornerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CornerSet::Typical => f.write_str("typical"),
            CornerSet::Worst => f.write_str("worst"),
            CornerSet::Single(c) => write!(f, "{c}"),
        }
    }
}

/// The technology scenario a design is implemented and signed off
/// under: a stacking style plus a corner-set. The default —
/// monolithic stacking, typical corner — reproduces the pre-scenario
/// flow bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TechContext {
    /// How 3-D tiers are joined (ignored by 2-D configs).
    pub stacking: StackingStyle,
    /// The sign-off corners.
    pub corners: CornerSet,
}

impl TechContext {
    /// The default scenario: monolithic stacking, typical corner.
    #[must_use]
    pub fn is_default(&self) -> bool {
        *self == TechContext::default()
    }

    /// A stable human-readable label (`monolithic-typical`,
    /// `f2f-slow`, …) used for observability scopes and reports.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}-{}", self.stacking, self.corners)
    }
}

impl fmt::Display for TechContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.stacking, self.corners)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monolithic_via_is_the_default_miv() {
        assert_eq!(StackingStyle::Monolithic.via(), Miv::default());
        assert_eq!(StackingStyle::default(), StackingStyle::Monolithic);
    }

    #[test]
    fn f2f_via_trades_resistance_for_capacitance_and_area() {
        let miv = StackingStyle::Monolithic.via();
        let bond = StackingStyle::F2fHybridBond.via();
        assert!(bond.r_kohm < miv.r_kohm);
        assert!(bond.c_ff > miv.c_ff);
        assert!(bond.diameter_um > miv.diameter_um);
        assert!(StackingStyle::F2fHybridBond.pitch_um() > StackingStyle::Monolithic.pitch_um());
        assert!(StackingStyle::F2fHybridBond.is_bonded());
        assert!(!StackingStyle::Monolithic.is_bonded());
    }

    #[test]
    fn corner_set_single_normalizes_typical() {
        assert_eq!(CornerSet::single(Corner::Typical), CornerSet::Typical);
        assert_eq!(
            CornerSet::single(Corner::Slow),
            CornerSet::Single(Corner::Slow)
        );
        assert!(CornerSet::Typical.is_typical_only());
        assert!(!CornerSet::Worst.is_typical_only());
        assert!(!CornerSet::single(Corner::Fast).is_typical_only());
        assert_eq!(CornerSet::Worst.corners(), &Corner::ALL[..]);
    }

    #[test]
    fn default_context_is_default_and_labels_are_stable() {
        let d = TechContext::default();
        assert!(d.is_default());
        assert_eq!(d.label(), "monolithic-typical");
        let f2f_slow = TechContext {
            stacking: StackingStyle::F2fHybridBond,
            corners: CornerSet::single(Corner::Slow),
        };
        assert!(!f2f_slow.is_default());
        assert_eq!(f2f_slow.label(), "f2f-slow");
        assert_eq!(f2f_slow.to_string(), "f2f-slow");
    }
}
