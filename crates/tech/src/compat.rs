//! Heterogeneity compatibility checks (Section II-B of the paper).
//!
//! Two libraries can share a monolithic stack without level shifters only
//! if (a) the voltage difference is small relative to the higher supply and
//! the threshold voltages, and (b) their characterized slew ranges overlap
//! enough that boundary-cell slews stay inside the tables.

use crate::library::Library;

/// The paper's level-shifter rule: shifters are required when
/// `VDDH − VDDL ≥ 0.3 × VDDH`.
///
/// The comparison is **inclusive**: a delta landing *exactly on* the
/// 30 % threshold already requires shifters; only strictly-inside
/// deltas (`VDDH − VDDL < 0.3 × VDDH`) are shifter-free. Both sides
/// are evaluated in `f64` exactly as written — `vddh - vddl` against
/// `0.3 * vddh` — with no epsilon, so callers comparing against the
/// boundary get bit-exact, order-independent answers.
///
/// # Examples
///
/// ```
/// // 0.90 V vs 0.81 V: 10 % difference, no shifters needed.
/// assert!(!m3d_tech::needs_level_shifter(0.90, 0.81));
/// // 0.90 V vs 0.55 V: 39 % difference, shifters required.
/// assert!(m3d_tech::needs_level_shifter(0.90, 0.55));
/// // Exactly on the 30 % boundary (0.90 − 0.63 == 0.27 in f64):
/// // inclusive, so shifters are required.
/// assert!(m3d_tech::needs_level_shifter(0.90, 0.63));
/// ```
#[must_use]
pub fn needs_level_shifter(vdd_a: f64, vdd_b: f64) -> bool {
    let vddh = vdd_a.max(vdd_b);
    let vddl = vdd_a.min(vdd_b);
    (vddh - vddl) >= 0.3 * vddh
}

/// Fraction of the union of two characterized slew ranges covered by their
/// intersection, on a log scale (slew tables are log-spaced).
///
/// 1.0 means identical ranges; 0.0 means disjoint.
#[must_use]
pub fn slew_range_overlap(a: (f64, f64), b: (f64, f64)) -> f64 {
    let (a0, a1) = (a.0.max(1e-9).ln(), a.1.max(1e-9).ln());
    let (b0, b1) = (b.0.max(1e-9).ln(), b.1.max(1e-9).ln());
    let inter = (a1.min(b1) - a0.max(b0)).max(0.0);
    let union = (a1.max(b1) - a0.min(b0)).max(f64::MIN_POSITIVE);
    inter / union
}

/// Result of checking whether two libraries may be combined in a
/// heterogeneous monolithic stack.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundaryCheck {
    /// `VDDH − VDDL` in volts.
    pub voltage_delta: f64,
    /// Whether the level-shifter rule fires.
    pub needs_level_shifter: bool,
    /// Whether the signal voltage margin holds: `Vth > VDDH − VDDL`
    /// guarantees logic levels register correctly across the boundary.
    pub threshold_margin_ok: bool,
    /// Log-scale characterized-slew-range overlap, 0..1.
    pub slew_overlap: f64,
}

impl BoundaryCheck {
    /// Runs the Section II-B compatibility checks on two libraries.
    #[must_use]
    pub fn check(a: &Library, b: &Library) -> Self {
        let vddh = a.vdd.max(b.vdd);
        let vddl = a.vdd.min(b.vdd);
        let min_vth = a.vth.min(b.vth);
        BoundaryCheck {
            voltage_delta: vddh - vddl,
            needs_level_shifter: needs_level_shifter(a.vdd, b.vdd),
            threshold_margin_ok: min_vth > (vddh - vddl),
            slew_overlap: slew_range_overlap(a.slew_range(), b.slew_range()),
        }
    }

    /// `true` if the pair can be used heterogeneously without shifters and
    /// with adequate table coverage (the paper's acceptance criterion).
    #[must_use]
    pub fn compatible(&self) -> bool {
        !self.needs_level_shifter && self.threshold_margin_ok && self.slew_overlap > 0.8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_library_pair_is_compatible() {
        let a = Library::twelve_track();
        let b = Library::nine_track();
        let check = BoundaryCheck::check(&a, &b);
        assert!(!check.needs_level_shifter);
        assert!(check.threshold_margin_ok);
        assert!(check.slew_overlap > 0.99);
        assert!(check.compatible());
        assert!((check.voltage_delta - 0.09).abs() < 1e-12);
    }

    #[test]
    fn shifter_rule_boundary() {
        // Exactly at 30 % -> shifters required (>= rule).
        assert!(needs_level_shifter(1.0, 0.7));
        assert!(!needs_level_shifter(1.0, 0.71));
        // Order-independent.
        assert_eq!(needs_level_shifter(0.7, 1.0), needs_level_shifter(1.0, 0.7));
    }

    #[test]
    fn shifter_rule_is_inclusive_at_the_exact_boundary() {
        // VDDH = 0.9 hits the threshold exactly in f64: both
        // `vddh - vddl` and `0.3 * vddh` evaluate to the same double
        // (0.27), so this exercises the `>=` equality case bit-for-bit
        // rather than landing one ulp to either side.
        let vddh = 0.9;
        let threshold = 0.3 * vddh;
        let vddl = vddh - threshold;
        assert_eq!(
            vddh - vddl,
            threshold,
            "test precondition: the boundary must be representable exactly"
        );
        // Inclusive rule: exact equality already requires shifters.
        assert!(needs_level_shifter(vddh, vddl));
        // A delta even a couple of ulps inside the boundary does not.
        assert!(!needs_level_shifter(vddh, vddl + f64::EPSILON));
        // And a couple of ulps outside still does.
        assert!(needs_level_shifter(vddh, vddl - f64::EPSILON));
    }

    #[test]
    fn overlap_metrics() {
        assert_eq!(slew_range_overlap((0.01, 1.0), (0.01, 1.0)), 1.0);
        assert_eq!(slew_range_overlap((0.01, 0.1), (0.2, 1.0)), 0.0);
        let partial = slew_range_overlap((0.01, 0.5), (0.05, 1.0));
        assert!(partial > 0.0 && partial < 1.0);
    }

    #[test]
    fn self_check_is_perfectly_compatible() {
        let a = Library::twelve_track();
        let check = BoundaryCheck::check(&a, &a);
        assert_eq!(check.voltage_delta, 0.0);
        assert!(check.compatible());
    }
}
