use crate::cell::{CellKind, Drive, MasterCell, TimingArc};
use crate::device::{Corner, CornerParams, DeviceModel};
use crate::lut::{log_axis, Lut2d};
use std::collections::HashMap;

/// Track height of a standard-cell library row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrackHeight {
    /// 9 M1 tracks — small, slow, low-power.
    Nine,
    /// 12 M1 tracks — large, fast, high-power.
    Twelve,
}

impl TrackHeight {
    /// Number of routing tracks.
    #[must_use]
    pub fn tracks(self) -> u32 {
        match self {
            TrackHeight::Nine => 9,
            TrackHeight::Twelve => 12,
        }
    }
}

impl std::fmt::Display for TrackHeight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}T", self.tracks())
    }
}

/// A generated standard-cell library for one technology corner.
///
/// Equivalent to a Liberty `.lib` plus a LEF: every [`CellKind`] ×
/// [`Drive`] combination is characterized with NLDM tables derived from
/// the corner's [`DeviceModel`].
///
/// # Examples
///
/// ```
/// use m3d_tech::{Library, CellKind, Drive};
///
/// let lib = Library::twelve_track();
/// let nand = lib.cell(CellKind::Nand2, Drive::X2).expect("characterized");
/// assert!(nand.delay(0.02, 5.0) > 0.0);
/// assert_eq!(lib.vdd, 0.90);
/// ```
#[derive(Debug, Clone)]
pub struct Library {
    /// Library name, e.g. `"28nm_12T"`.
    pub name: String,
    /// Track height of all rows in this library.
    pub track: TrackHeight,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Effective threshold voltage in volts.
    pub vth: f64,
    /// Row (cell) height in microns.
    pub cell_height_um: f64,
    /// Placement site width in microns.
    pub site_width_um: f64,
    cells: Vec<MasterCell>,
    index: HashMap<(CellKind, Drive), usize>,
    model: DeviceModel,
}

impl Library {
    /// Characterized input-slew axis (ns) shared by every generated table.
    fn slew_axis() -> Vec<f64> {
        log_axis(0.002, 2.0, 7)
    }

    /// Characterized load axis (fF) shared by every generated table.
    fn load_axis() -> Vec<f64> {
        log_axis(0.2, 400.0, 7)
    }

    /// Generates a library from corner parameters.
    #[must_use]
    pub fn from_corner(track: TrackHeight, params: CornerParams) -> Self {
        let model = DeviceModel::new(params.clone());
        let mut cells = Vec::new();
        let mut index = HashMap::new();
        for kind in CellKind::LIBRARY_KINDS {
            for drive in Drive::ALL {
                let cell = characterize(&model, &params, track, kind, drive);
                index.insert((kind, drive), cells.len());
                cells.push(cell);
            }
        }
        Library {
            name: params.name.to_string(),
            track,
            vdd: params.vdd,
            vth: params.vth,
            cell_height_um: params.cell_height_um,
            site_width_um: params.site_width_um,
            cells,
            index,
            model,
        }
    }

    /// The fast, large 12-track library at 0.90 V.
    #[must_use]
    pub fn twelve_track() -> Self {
        Library::from_corner(TrackHeight::Twelve, CornerParams::twelve_track())
    }

    /// The slow, small 9-track library at 0.81 V.
    #[must_use]
    pub fn nine_track() -> Self {
        Library::from_corner(TrackHeight::Nine, CornerParams::nine_track())
    }

    /// The 12-track library characterized at `corner`
    /// ([`Corner::Typical`] reproduces [`Library::twelve_track`]
    /// bit for bit).
    #[must_use]
    pub fn twelve_track_at(corner: Corner) -> Self {
        Library::from_corner(TrackHeight::Twelve, CornerParams::twelve_track_at(corner))
    }

    /// The 9-track library characterized at `corner`
    /// ([`Corner::Typical`] reproduces [`Library::nine_track`]
    /// bit for bit).
    #[must_use]
    pub fn nine_track_at(corner: Corner) -> Self {
        Library::from_corner(TrackHeight::Nine, CornerParams::nine_track_at(corner))
    }

    /// Looks up a characterized cell, or `None` for `Macro`/unknown combos.
    #[must_use]
    pub fn cell(&self, kind: CellKind, drive: Drive) -> Option<&MasterCell> {
        self.index.get(&(kind, drive)).map(|&i| &self.cells[i])
    }

    /// Iterates over every characterized cell.
    pub fn iter(&self) -> impl Iterator<Item = &MasterCell> {
        self.cells.iter()
    }

    /// The device model behind this library (used by the FO-4 experiments).
    #[must_use]
    pub fn device_model(&self) -> &DeviceModel {
        &self.model
    }

    /// Characterized input-slew range `(min, max)` in ns.
    #[must_use]
    pub fn slew_range(&self) -> (f64, f64) {
        let axis = Library::slew_axis();
        (axis[0], *axis.last().expect("non-empty axis"))
    }

    /// Area (µm²) of the given kind/drive, without constructing the cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not characterized (e.g. `Macro`).
    #[must_use]
    pub fn cell_area(&self, kind: CellKind, drive: Drive) -> f64 {
        self.cell(kind, drive)
            .unwrap_or_else(|| panic!("cell {kind} {drive} not in library {}", self.name))
            .area_um2
    }
}

/// Characterizes one cell of the library: geometry from track height and
/// logical width, electricals from the alpha-power device model scaled by
/// logical effort.
fn characterize(
    model: &DeviceModel,
    params: &CornerParams,
    _track: TrackHeight,
    kind: CellKind,
    drive: Drive,
) -> MasterCell {
    let le = kind.logical_effort();
    let pe = kind.parasitic_effort();
    let w = drive.factor() * params.width_factor;

    // Geometry: width grows sub-linearly with drive (folding).
    let width_sites = kind.base_width_sites() * (1.0 + 0.55 * (drive.factor() - 1.0));
    let width_um = width_sites * params.site_width_um;
    let height_um = params.cell_height_um;

    // Pin capacitance: logical effort scales the input transistor width.
    let input_cap_ff = model.input_cap_ff(drive.factor()) * le;

    // Timing tables: the inverter model with effort-scaled drive/parasitics.
    let slew_axis = Library::slew_axis();
    let load_axis = Library::load_axis();
    let eff_width = w / le;
    let delay = Lut2d::from_fn(slew_axis.clone(), load_axis.clone(), |s, l| {
        model.stage_delay_ns(eff_width, s, l) + pe_extra(model, eff_width, pe)
    });
    let slew = Lut2d::from_fn(slew_axis, load_axis, |s, l| {
        model.output_slew_ns(eff_width, s, l)
    });

    // Leakage scales with total transistor width (~ effort * drive).
    let leakage_uw = model.leakage_uw(w * pe.max(1.0) * 0.6);
    let internal_energy_fj = model.internal_energy_fj(drive.factor() * pe);

    let (setup_ns, clk_to_q_ns) = if kind.is_sequential() {
        let base = model.stage_delay_ns(eff_width, 0.02, input_cap_ff * 2.0);
        (base * 1.2, base * 3.0)
    } else {
        (0.0, 0.0)
    };

    MasterCell {
        name: format!("{kind}_{drive}_{}", params.name),
        kind,
        drive,
        width_um,
        height_um,
        area_um2: width_um * height_um,
        input_cap_ff,
        leakage_uw,
        internal_energy_fj,
        arc: TimingArc { delay, slew },
        setup_ns,
        clk_to_q_ns,
    }
}

/// Extra fixed parasitic delay for complex gates (ns).
fn pe_extra(model: &DeviceModel, eff_width: f64, pe: f64) -> f64 {
    let unit = model.stage_delay_ns(eff_width, 0.0, 0.0);
    unit * (pe - 1.0) * 0.35
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_and_drives_are_characterized() {
        let lib = Library::twelve_track();
        for kind in CellKind::LIBRARY_KINDS {
            for drive in Drive::ALL {
                let cell = lib
                    .cell(kind, drive)
                    .unwrap_or_else(|| panic!("{kind} {drive}"));
                assert!(cell.area_um2 > 0.0);
                assert!(cell.input_cap_ff > 0.0);
                assert!(cell.leakage_uw > 0.0);
                assert!(cell.delay(0.02, 2.0) > 0.0);
                assert!(cell.output_slew(0.02, 2.0) > 0.0);
            }
        }
    }

    #[test]
    fn stronger_drive_is_faster_and_bigger() {
        let lib = Library::twelve_track();
        let x1 = lib.cell(CellKind::Nand2, Drive::X1).unwrap();
        let x4 = lib.cell(CellKind::Nand2, Drive::X4).unwrap();
        assert!(x4.delay(0.02, 20.0) < x1.delay(0.02, 20.0));
        assert!(x4.area_um2 > x1.area_um2);
        assert!(x4.input_cap_ff > x1.input_cap_ff);
        assert!(x4.leakage_uw > x1.leakage_uw);
    }

    #[test]
    fn complex_gates_are_slower_than_inverters() {
        let lib = Library::twelve_track();
        let inv = lib.cell(CellKind::Inv, Drive::X1).unwrap();
        let xor = lib.cell(CellKind::Xor2, Drive::X1).unwrap();
        assert!(xor.delay(0.02, 5.0) > inv.delay(0.02, 5.0));
    }

    #[test]
    fn sequential_cells_have_setup_and_clk_to_q() {
        let lib = Library::nine_track();
        let dff = lib.cell(CellKind::Dff, Drive::X1).unwrap();
        assert!(dff.setup_ns > 0.0);
        assert!(dff.clk_to_q_ns > 0.0);
        let inv = lib.cell(CellKind::Inv, Drive::X1).unwrap();
        assert_eq!(inv.setup_ns, 0.0);
    }

    #[test]
    fn nine_track_rows_are_three_quarters_height() {
        let f = Library::twelve_track();
        let s = Library::nine_track();
        assert!((s.cell_height_um / f.cell_height_um - 0.75).abs() < 1e-9);
        assert_eq!(s.site_width_um, f.site_width_um);
    }

    #[test]
    fn iter_covers_all_cells() {
        let lib = Library::twelve_track();
        let n = lib.iter().count();
        assert_eq!(n, CellKind::LIBRARY_KINDS.len() * Drive::ALL.len());
    }

    #[test]
    fn macro_kind_is_not_in_library() {
        let lib = Library::twelve_track();
        assert!(lib.cell(CellKind::Macro, Drive::X1).is_none());
    }
}
