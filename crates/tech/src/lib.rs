//! Technology substrate: standard-cell libraries, delay tables and BEOL.
//!
//! The paper demonstrates heterogeneous monolithic 3-D integration using two
//! multi-track variants of a commercial foundry 28 nm node: a **12-track**
//! library (fast, large, power-hungry, 0.90 V) and a **9-track** library
//! (slow, 25 % smaller, frugal, 0.81 V). The foundry libraries are
//! proprietary, so this crate *generates* equivalent libraries from an
//! alpha-power-law transistor model ([`DeviceModel`]): every cell carries
//! NLDM-style delay/slew lookup tables ([`Lut2d`]), pin capacitances,
//! leakage and internal switching energy, all derived from a handful of
//! physical parameters in [`CornerParams`].
//!
//! The crate also models the shared back-end-of-line ([`MetalStack`],
//! [`Miv`]) and the heterogeneity "quirks" of Section II-B of the paper:
//! characterized slew-range overlap between libraries and the level-shifter
//! voltage rule `VDDH − VDDL < 0.3 · VDDH`.
//!
//! # Examples
//!
//! ```
//! use m3d_tech::{Library, CellKind, Drive};
//!
//! let fast = Library::twelve_track();
//! let slow = Library::nine_track();
//! let inv_fast = fast.cell(CellKind::Inv, Drive::X1).expect("INV_X1");
//! let inv_slow = slow.cell(CellKind::Inv, Drive::X1).expect("INV_X1");
//! // 9-track cells are 25 % smaller and slower.
//! assert!(inv_slow.area_um2 < inv_fast.area_um2);
//! assert!(!m3d_tech::needs_level_shifter(fast.vdd, slow.vdd));
//! ```

mod beol;
mod cell;
mod compat;
mod device;
mod library;
mod lut;
mod stacking;
mod tier;

pub use beol::{MetalLayer, MetalStack, Miv, WireRc};
pub use cell::{CellKind, Drive, MasterCell, TimingArc};
pub use compat::{needs_level_shifter, slew_range_overlap, BoundaryCheck};
pub use device::{Corner, CornerParams, DeviceModel};
pub use library::{Library, TrackHeight};
pub use lut::Lut2d;
pub use stacking::{CornerSet, StackingStyle, TechContext};
pub use tier::{Tier, TierStack};

/// Boltzmann thermal voltage at 300 K, in volts.
pub const THERMAL_VOLTAGE: f64 = 0.02585;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libraries_reproduce_paper_contrasts() {
        let fast = Library::twelve_track();
        let slow = Library::nine_track();

        // Area: 9-track cell area is exactly 75 % of 12-track (height 9/12,
        // same widths) -- the paper's "25 % smaller" claim.
        let inv_f = fast.cell(CellKind::Inv, Drive::X1).unwrap();
        let inv_s = slow.cell(CellKind::Inv, Drive::X1).unwrap();
        assert!((inv_s.area_um2 / inv_f.area_um2 - 0.75).abs() < 1e-9);

        // Speed: a 9-track FO4 stage is roughly 2x slower.
        let d_f = inv_f.delay(0.02, 4.0 * inv_f.input_cap_ff);
        let d_s = inv_s.delay(0.02, 4.0 * inv_s.input_cap_ff);
        let ratio = d_s / d_f;
        assert!(
            (1.3..3.0).contains(&ratio),
            "slow/fast FO4 ratio {ratio} outside expected band"
        );

        // Leakage: fast library leaks >10x more (low-Vt vs high-Vt flavor).
        assert!(inv_f.leakage_uw / inv_s.leakage_uw > 10.0);

        // Voltages satisfy the no-level-shifter rule.
        assert!(!needs_level_shifter(fast.vdd, slow.vdd));
    }
}
