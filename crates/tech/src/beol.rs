/// One routing layer of the back-end-of-line stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetalLayer {
    /// Layer name index (1 = M1).
    pub index: u8,
    /// Routing pitch in microns.
    pub pitch_um: f64,
    /// Sheet resistance per unit length, in Ω/µm.
    pub r_per_um: f64,
    /// Capacitance per unit length, in fF/µm.
    pub c_per_um: f64,
    /// Preferred routing direction: `true` = horizontal.
    pub horizontal: bool,
}

/// Lumped wire parasitics of a routed net segment.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WireRc {
    /// Total wire resistance in kΩ.
    pub r_kohm: f64,
    /// Total wire capacitance in fF.
    pub c_ff: f64,
}

impl WireRc {
    /// Sums two segments in series.
    #[must_use]
    pub fn series(self, other: WireRc) -> WireRc {
        WireRc {
            r_kohm: self.r_kohm + other.r_kohm,
            c_ff: self.c_ff + other.c_ff,
        }
    }

    /// Elmore delay (ns) of this lumped segment driving `load_ff`
    /// downstream: `R·(C/2 + C_load)`.
    #[must_use]
    pub fn elmore_ns(self, load_ff: f64) -> f64 {
        // kΩ·fF = ps → /1000 for ns.
        self.r_kohm * (self.c_ff * 0.5 + load_ff) * 1e-3
    }
}

/// A monolithic inter-tier via (MIV).
///
/// Sequential fabrication makes these nano-scale: negligible area,
/// sub-Ω×fF parasitics — the property that enables gate-level heterogeneous
/// partitioning in the first place.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Miv {
    /// Via resistance in kΩ.
    pub r_kohm: f64,
    /// Via capacitance in fF.
    pub c_ff: f64,
    /// Keep-out diameter in microns (consumes a routing track).
    pub diameter_um: f64,
}

impl Default for Miv {
    fn default() -> Self {
        // ~50 nm MIV at 28 nm-class monolithic integration.
        Miv {
            r_kohm: 0.004,
            c_ff: 0.1,
            diameter_um: 0.05,
        }
    }
}

impl Miv {
    /// Parasitics of one MIV crossing as a [`WireRc`].
    #[must_use]
    pub fn as_wire_rc(&self) -> WireRc {
        WireRc {
            r_kohm: self.r_kohm,
            c_ff: self.c_ff,
        }
    }
}

/// A six-layer signal routing stack, shared (per the paper's setup) between
/// 2-D designs and each tier of the 3-D designs.
#[derive(Debug, Clone, PartialEq)]
pub struct MetalStack {
    layers: Vec<MetalLayer>,
    /// The inter-tier via available above the top layer (3-D only).
    pub miv: Miv,
}

impl MetalStack {
    /// The default 28 nm six-layer signal stack used throughout the paper's
    /// experiments: two thin local layers, two intermediate, two semi-global.
    #[must_use]
    pub fn six_layer_28nm() -> Self {
        let layers = vec![
            MetalLayer {
                index: 1,
                pitch_um: 0.09,
                r_per_um: 8.0,
                c_per_um: 0.20,
                horizontal: true,
            },
            MetalLayer {
                index: 2,
                pitch_um: 0.09,
                r_per_um: 8.0,
                c_per_um: 0.20,
                horizontal: false,
            },
            MetalLayer {
                index: 3,
                pitch_um: 0.10,
                r_per_um: 5.0,
                c_per_um: 0.21,
                horizontal: true,
            },
            MetalLayer {
                index: 4,
                pitch_um: 0.10,
                r_per_um: 5.0,
                c_per_um: 0.21,
                horizontal: false,
            },
            MetalLayer {
                index: 5,
                pitch_um: 0.20,
                r_per_um: 1.6,
                c_per_um: 0.23,
                horizontal: true,
            },
            MetalLayer {
                index: 6,
                pitch_um: 0.20,
                r_per_um: 1.6,
                c_per_um: 0.23,
                horizontal: false,
            },
        ];
        MetalStack {
            layers,
            miv: Miv::default(),
        }
    }

    /// Number of routing layers.
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Layer by 1-based metal index.
    #[must_use]
    pub fn layer(&self, index: u8) -> Option<&MetalLayer> {
        self.layers.iter().find(|l| l.index == index)
    }

    /// Iterates over the layers, M1 first.
    pub fn iter(&self) -> impl Iterator<Item = &MetalLayer> {
        self.layers.iter()
    }

    /// Average wire parasitics per micron across intermediate layers —
    /// the pre-route estimate applied to Steiner lengths.
    #[must_use]
    pub fn estimate_rc_per_um(&self) -> WireRc {
        // Signal routing is dominated by M3/M4 in a balanced flow.
        let (m3, m4) = (self.layer(3), self.layer(4));
        let (r, c) = match (m3, m4) {
            (Some(a), Some(b)) => (
                (a.r_per_um + b.r_per_um) * 0.5,
                (a.c_per_um + b.c_per_um) * 0.5,
            ),
            _ => (5.0, 0.21),
        };
        WireRc {
            r_kohm: r * 1e-3,
            c_ff: c,
        }
    }

    /// Parasitics of `length_um` of wire on layer `index` (falls back to
    /// the estimate layer when the index is unknown).
    #[must_use]
    pub fn wire_rc(&self, index: u8, length_um: f64) -> WireRc {
        let per_um = match self.layer(index) {
            Some(l) => WireRc {
                r_kohm: l.r_per_um * 1e-3,
                c_ff: l.c_per_um,
            },
            None => self.estimate_rc_per_um(),
        };
        WireRc {
            r_kohm: per_um.r_kohm * length_um,
            c_ff: per_um.c_ff * length_um,
        }
    }

    /// Routing capacity of one global-routing bin edge of width
    /// `bin_span_um`: total tracks across layers of the given direction.
    #[must_use]
    pub fn edge_capacity(&self, bin_span_um: f64, horizontal: bool) -> u32 {
        self.layers
            .iter()
            .filter(|l| l.horizontal == horizontal && l.index > 1)
            .map(|l| (bin_span_um / l.pitch_um).floor() as u32)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_has_six_layers_alternating_direction() {
        let s = MetalStack::six_layer_28nm();
        assert_eq!(s.layer_count(), 6);
        for w in s.iter().collect::<Vec<_>>().windows(2) {
            assert_ne!(w[0].horizontal, w[1].horizontal);
        }
    }

    #[test]
    fn upper_layers_are_faster() {
        let s = MetalStack::six_layer_28nm();
        let low = s.wire_rc(1, 100.0);
        let high = s.wire_rc(5, 100.0);
        assert!(high.r_kohm < low.r_kohm);
    }

    #[test]
    fn wire_rc_scales_linearly_with_length() {
        let s = MetalStack::six_layer_28nm();
        let a = s.wire_rc(3, 10.0);
        let b = s.wire_rc(3, 20.0);
        assert!((b.r_kohm / a.r_kohm - 2.0).abs() < 1e-9);
        assert!((b.c_ff / a.c_ff - 2.0).abs() < 1e-9);
    }

    #[test]
    fn elmore_delay_is_positive_and_monotone_in_load() {
        let s = MetalStack::six_layer_28nm();
        let rc = s.wire_rc(3, 50.0);
        let d0 = rc.elmore_ns(0.0);
        let d1 = rc.elmore_ns(10.0);
        assert!(d0 > 0.0);
        assert!(d1 > d0);
    }

    #[test]
    fn miv_is_nearly_free() {
        let miv = Miv::default();
        let wire = MetalStack::six_layer_28nm().wire_rc(3, 1.0);
        // One MIV costs less than a micron of intermediate wire (R).
        assert!(miv.r_kohm < wire.r_kohm);
    }

    #[test]
    fn series_composition_adds() {
        let a = WireRc {
            r_kohm: 1.0,
            c_ff: 2.0,
        };
        let b = WireRc {
            r_kohm: 0.5,
            c_ff: 1.0,
        };
        let s = a.series(b);
        assert_eq!(s.r_kohm, 1.5);
        assert_eq!(s.c_ff, 3.0);
    }

    #[test]
    fn edge_capacity_counts_tracks() {
        let s = MetalStack::six_layer_28nm();
        let h = s.edge_capacity(10.0, true);
        let v = s.edge_capacity(10.0, false);
        assert!(h > 0 && v > 0);
        // 10 µm over M3 (0.10) + M5 (0.20) = 100 + 50 = 150 horizontal tracks.
        assert_eq!(h, 150);
    }
}
