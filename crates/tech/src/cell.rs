use crate::lut::Lut2d;
use std::fmt;

/// Logical function of a standard cell.
///
/// The set covers what a 28 nm synthesis netlist actually instantiates:
/// simple gates, complex AOI/OAI gates, a mux, sequential elements, clock
/// cells, the level shifters whose drawbacks Section III-B of the paper
/// discusses, and a `Macro` placeholder for SRAM blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// AND-OR-invert 2-1.
    Aoi21,
    /// OR-AND-invert 2-1.
    Oai21,
    /// 2:1 multiplexer (data0, data1, select).
    Mux2,
    /// Positive-edge D flip-flop.
    Dff,
    /// Clock buffer.
    ClkBuf,
    /// Clock inverter.
    ClkInv,
    /// Level shifter, low-to-high voltage domain.
    LevelShifter,
    /// Hard macro (SRAM); area and pins come from the instance.
    Macro,
}

impl CellKind {
    /// All library kinds (excluding `Macro`, which is instance-defined).
    pub const LIBRARY_KINDS: [CellKind; 17] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nor2,
        CellKind::Nor3,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Aoi21,
        CellKind::Oai21,
        CellKind::Mux2,
        CellKind::Dff,
        CellKind::ClkBuf,
        CellKind::ClkInv,
        CellKind::LevelShifter,
    ];

    /// Number of signal input pins (data inputs; the DFF's clock pin is
    /// accounted separately).
    #[must_use]
    pub fn input_count(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf | CellKind::ClkBuf | CellKind::ClkInv => 1,
            CellKind::Nand2
            | CellKind::Nor2
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::Nand3 | CellKind::Nor3 | CellKind::Aoi21 | CellKind::Oai21 => 3,
            CellKind::Mux2 => 3,
            CellKind::Dff => 1,
            CellKind::LevelShifter => 1,
            CellKind::Macro => 0,
        }
    }

    /// Returns `true` for sequential elements (timing-path endpoints).
    #[must_use]
    pub fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff)
    }

    /// Returns `true` for clock-network cells.
    #[must_use]
    pub fn is_clock_cell(self) -> bool {
        matches!(self, CellKind::ClkBuf | CellKind::ClkInv)
    }

    /// Returns `true` if the output logically inverts (affects glitch and
    /// activity propagation).
    #[must_use]
    pub fn inverting(self) -> bool {
        matches!(
            self,
            CellKind::Inv
                | CellKind::Nand2
                | CellKind::Nand3
                | CellKind::Nor2
                | CellKind::Nor3
                | CellKind::Aoi21
                | CellKind::Oai21
                | CellKind::ClkInv
        )
    }

    /// Logical effort relative to an inverter (Sutherland-style); used to
    /// derive per-kind delay tables from the inverter model.
    #[must_use]
    pub fn logical_effort(self) -> f64 {
        match self {
            CellKind::Inv | CellKind::ClkInv => 1.0,
            CellKind::Buf | CellKind::ClkBuf => 1.1,
            CellKind::Nand2 => 4.0 / 3.0,
            CellKind::Nand3 => 5.0 / 3.0,
            CellKind::Nor2 => 5.0 / 3.0,
            CellKind::Nor3 => 7.0 / 3.0,
            CellKind::And2 | CellKind::Or2 => 1.6,
            CellKind::Xor2 | CellKind::Xnor2 => 2.2,
            CellKind::Aoi21 | CellKind::Oai21 => 1.9,
            CellKind::Mux2 => 2.0,
            CellKind::Dff => 1.8,
            CellKind::LevelShifter => 2.5,
            CellKind::Macro => 1.0,
        }
    }

    /// Intrinsic parasitic delay relative to an inverter.
    #[must_use]
    pub fn parasitic_effort(self) -> f64 {
        match self {
            CellKind::Inv | CellKind::ClkInv => 1.0,
            CellKind::Buf | CellKind::ClkBuf => 2.0,
            CellKind::Nand2 | CellKind::Nor2 => 2.0,
            CellKind::Nand3 | CellKind::Nor3 => 3.0,
            CellKind::And2 | CellKind::Or2 => 2.6,
            CellKind::Xor2 | CellKind::Xnor2 => 4.0,
            CellKind::Aoi21 | CellKind::Oai21 => 3.2,
            CellKind::Mux2 => 3.5,
            CellKind::Dff => 4.5,
            CellKind::LevelShifter => 5.0,
            CellKind::Macro => 1.0,
        }
    }

    /// Cell width in placement sites (X1 drive; scaled by drive strength).
    #[must_use]
    pub fn base_width_sites(self) -> f64 {
        match self {
            CellKind::Inv | CellKind::ClkInv => 2.0,
            CellKind::Buf | CellKind::ClkBuf => 3.0,
            CellKind::Nand2 | CellKind::Nor2 => 3.0,
            CellKind::Nand3 | CellKind::Nor3 => 4.0,
            CellKind::And2 | CellKind::Or2 => 4.0,
            CellKind::Xor2 | CellKind::Xnor2 => 6.0,
            CellKind::Aoi21 | CellKind::Oai21 => 5.0,
            CellKind::Mux2 => 6.0,
            CellKind::Dff => 11.0,
            CellKind::LevelShifter => 8.0,
            CellKind::Macro => 0.0,
        }
    }

    /// Output switching probability given independent input one-probabilities.
    ///
    /// Used by activity propagation in power analysis. `probs` must have
    /// [`CellKind::input_count`] entries.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len()` does not match the input count.
    #[must_use]
    pub fn output_probability(self, probs: &[f64]) -> f64 {
        assert_eq!(
            probs.len(),
            self.input_count(),
            "wrong number of input probabilities for {self}"
        );
        let p = probs;
        match self {
            CellKind::Inv | CellKind::ClkInv => 1.0 - p[0],
            CellKind::Buf | CellKind::ClkBuf | CellKind::Dff | CellKind::LevelShifter => p[0],
            CellKind::Nand2 => 1.0 - p[0] * p[1],
            CellKind::Nand3 => 1.0 - p[0] * p[1] * p[2],
            CellKind::Nor2 => (1.0 - p[0]) * (1.0 - p[1]),
            CellKind::Nor3 => (1.0 - p[0]) * (1.0 - p[1]) * (1.0 - p[2]),
            CellKind::And2 => p[0] * p[1],
            CellKind::Or2 => 1.0 - (1.0 - p[0]) * (1.0 - p[1]),
            CellKind::Xor2 => p[0] * (1.0 - p[1]) + p[1] * (1.0 - p[0]),
            CellKind::Xnor2 => 1.0 - (p[0] * (1.0 - p[1]) + p[1] * (1.0 - p[0])),
            // AOI21: !(a*b + c)
            CellKind::Aoi21 => (1.0 - p[0] * p[1]) * (1.0 - p[2]),
            // OAI21: !((a+b) * c)
            CellKind::Oai21 => 1.0 - (1.0 - (1.0 - p[0]) * (1.0 - p[1])) * p[2],
            // MUX2: s ? d1 : d0 with p = [d0, d1, s]
            CellKind::Mux2 => p[0] * (1.0 - p[2]) + p[1] * p[2],
            CellKind::Macro => 0.5,
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nand3 => "NAND3",
            CellKind::Nor2 => "NOR2",
            CellKind::Nor3 => "NOR3",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Aoi21 => "AOI21",
            CellKind::Oai21 => "OAI21",
            CellKind::Mux2 => "MUX2",
            CellKind::Dff => "DFF",
            CellKind::ClkBuf => "CLKBUF",
            CellKind::ClkInv => "CLKINV",
            CellKind::LevelShifter => "LVLSHIFT",
            CellKind::Macro => "MACRO",
        };
        f.write_str(s)
    }
}

/// Drive strength of a cell: transistor width multiple of the X1 variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Drive {
    /// Unit drive.
    X1,
    /// 2x drive.
    X2,
    /// 4x drive.
    X4,
    /// 8x drive.
    X8,
    /// 16x drive.
    X16,
}

impl Drive {
    /// All drive strengths, weakest first.
    pub const ALL: [Drive; 5] = [Drive::X1, Drive::X2, Drive::X4, Drive::X8, Drive::X16];

    /// Numeric width multiple.
    #[must_use]
    pub fn factor(self) -> f64 {
        match self {
            Drive::X1 => 1.0,
            Drive::X2 => 2.0,
            Drive::X4 => 4.0,
            Drive::X8 => 8.0,
            Drive::X16 => 16.0,
        }
    }

    /// Next stronger drive, or `None` at X16.
    #[must_use]
    pub fn upsized(self) -> Option<Drive> {
        match self {
            Drive::X1 => Some(Drive::X2),
            Drive::X2 => Some(Drive::X4),
            Drive::X4 => Some(Drive::X8),
            Drive::X8 => Some(Drive::X16),
            Drive::X16 => None,
        }
    }

    /// Next weaker drive, or `None` at X1.
    #[must_use]
    pub fn downsized(self) -> Option<Drive> {
        match self {
            Drive::X1 => None,
            Drive::X2 => Some(Drive::X1),
            Drive::X4 => Some(Drive::X2),
            Drive::X8 => Some(Drive::X4),
            Drive::X16 => Some(Drive::X8),
        }
    }
}

impl fmt::Display for Drive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.factor() as u32)
    }
}

/// One input-to-output timing arc of a cell: NLDM delay and output-slew
/// tables indexed by input slew (ns) and output load (fF).
#[derive(Debug, Clone, PartialEq)]
pub struct TimingArc {
    /// Delay table (ns).
    pub delay: Lut2d,
    /// Output slew table (ns).
    pub slew: Lut2d,
}

/// A characterized library cell: the timing, power and physical view that
/// placement, STA and power analysis consume.
#[derive(Debug, Clone, PartialEq)]
pub struct MasterCell {
    /// Liberty-style name, e.g. `"NAND2_X4_12T"`.
    pub name: String,
    /// Logical function.
    pub kind: CellKind,
    /// Drive strength.
    pub drive: Drive,
    /// Footprint width in microns.
    pub width_um: f64,
    /// Footprint height in microns (the library row height).
    pub height_um: f64,
    /// Footprint area in square microns.
    pub area_um2: f64,
    /// Capacitance of each input pin, in fF.
    pub input_cap_ff: f64,
    /// Static leakage power, in µW.
    pub leakage_uw: f64,
    /// Internal energy per output transition, in fJ.
    pub internal_energy_fj: f64,
    /// The (shared) timing arc from any input to the output.
    pub arc: TimingArc,
    /// Setup time in ns (sequential cells only, zero otherwise).
    pub setup_ns: f64,
    /// Clock-to-Q delay in ns (sequential cells only, zero otherwise).
    pub clk_to_q_ns: f64,
}

impl MasterCell {
    /// Arc delay (ns) for the given input slew (ns) and output load (fF).
    #[must_use]
    pub fn delay(&self, slew_ns: f64, load_ff: f64) -> f64 {
        self.arc.delay.lookup(slew_ns, load_ff)
    }

    /// Output slew (ns) for the given input slew (ns) and output load (fF).
    #[must_use]
    pub fn output_slew(&self, slew_ns: f64, load_ff: f64) -> f64 {
        self.arc.slew.lookup(slew_ns, load_ff)
    }

    /// Maximum load (fF) this cell can drive within its characterized range.
    #[must_use]
    pub fn max_load_ff(&self) -> f64 {
        self.arc.delay.load_range().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_counts_are_consistent_with_probability_arity() {
        for kind in CellKind::LIBRARY_KINDS {
            let probs = vec![0.5; kind.input_count()];
            let p = kind.output_probability(&probs);
            assert!((0.0..=1.0).contains(&p), "{kind} produced {p}");
        }
    }

    #[test]
    fn inverter_probability() {
        assert_eq!(CellKind::Inv.output_probability(&[0.3]), 0.7);
        assert_eq!(CellKind::Nand2.output_probability(&[1.0, 1.0]), 0.0);
        assert_eq!(CellKind::Nor2.output_probability(&[0.0, 0.0]), 1.0);
        let xor_half = CellKind::Xor2.output_probability(&[0.5, 0.5]);
        assert!((xor_half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mux_probability_blends_by_select() {
        // select=0 -> d0
        assert_eq!(CellKind::Mux2.output_probability(&[0.2, 0.9, 0.0]), 0.2);
        // select=1 -> d1
        assert_eq!(CellKind::Mux2.output_probability(&[0.2, 0.9, 1.0]), 0.9);
    }

    #[test]
    fn drive_ladder_round_trips() {
        assert_eq!(Drive::X1.upsized(), Some(Drive::X2));
        assert_eq!(Drive::X16.upsized(), None);
        assert_eq!(Drive::X1.downsized(), None);
        for d in Drive::ALL {
            if let Some(up) = d.upsized() {
                assert_eq!(up.downsized(), Some(d));
                assert!(up.factor() > d.factor());
            }
        }
    }

    #[test]
    fn sequential_flags() {
        assert!(CellKind::Dff.is_sequential());
        assert!(!CellKind::Inv.is_sequential());
        assert!(CellKind::ClkBuf.is_clock_cell());
        assert!(!CellKind::Buf.is_clock_cell());
    }

    #[test]
    fn display_names_are_unique() {
        let mut names: Vec<String> = CellKind::LIBRARY_KINDS
            .iter()
            .map(|k| k.to_string())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), CellKind::LIBRARY_KINDS.len());
    }
}
