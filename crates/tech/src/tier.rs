use crate::beol::MetalStack;
use crate::device::Corner;
use crate::library::Library;
use crate::stacking::StackingStyle;
use std::fmt;
use std::sync::Arc;

/// Which die of a two-tier monolithic 3-D stack a cell sits on.
///
/// In the paper's heterogeneous setup the **top** tier carries the slow
/// 9-track cells at 0.81 V and the **bottom** tier the fast 12-track cells
/// at 0.90 V (bottom is fabricated first; the performance-critical die gets
/// the pristine FEOL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tier {
    /// Bottom die (tier 0) — the fast die in the heterogeneous stack.
    Bottom,
    /// Top die (tier 1) — the slow die in the heterogeneous stack.
    Top,
}

impl Tier {
    /// Both tiers, bottom first.
    pub const BOTH: [Tier; 2] = [Tier::Bottom, Tier::Top];

    /// The other tier.
    #[must_use]
    pub fn other(self) -> Tier {
        match self {
            Tier::Bottom => Tier::Top,
            Tier::Top => Tier::Bottom,
        }
    }

    /// Tier index: bottom = 0, top = 1.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Tier::Bottom => 0,
            Tier::Top => 1,
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::Bottom => f.write_str("bottom"),
            Tier::Top => f.write_str("top"),
        }
    }
}

/// The technology binding of a design: which library powers each tier.
///
/// A 2-D design uses a single-tier stack ([`TierStack::two_d`]); a
/// homogeneous 3-D design uses the same library twice; the heterogeneous
/// design mixes them ([`TierStack::heterogeneous`]).
///
/// # Examples
///
/// ```
/// use m3d_tech::{Library, Tier, TierStack};
///
/// let hetero = TierStack::heterogeneous();
/// assert!(hetero.is_heterogeneous());
/// assert_eq!(hetero.library(Tier::Bottom).vdd, 0.90);
/// assert_eq!(hetero.library(Tier::Top).vdd, 0.81);
/// ```
#[derive(Debug, Clone)]
pub struct TierStack {
    bottom: Arc<Library>,
    top: Option<Arc<Library>>,
    /// Shared BEOL per tier.
    pub metal: MetalStack,
}

impl TierStack {
    /// Single-die (2-D) stack on `lib`.
    #[must_use]
    pub fn two_d(lib: Library) -> Self {
        TierStack {
            bottom: Arc::new(lib),
            top: None,
            metal: MetalStack::six_layer_28nm(),
        }
    }

    /// Homogeneous two-tier stack: the same library on both dies.
    #[must_use]
    pub fn homogeneous_3d(lib: Library) -> Self {
        let lib = Arc::new(lib);
        TierStack {
            bottom: Arc::clone(&lib),
            top: Some(lib),
            metal: MetalStack::six_layer_28nm(),
        }
    }

    /// Custom two-tier stack.
    #[must_use]
    pub fn three_d(bottom: Library, top: Library) -> Self {
        TierStack {
            bottom: Arc::new(bottom),
            top: Some(Arc::new(top)),
            metal: MetalStack::six_layer_28nm(),
        }
    }

    /// The paper's heterogeneous stack: 12-track @ 0.90 V on the bottom,
    /// 9-track @ 0.81 V on the top.
    #[must_use]
    pub fn heterogeneous() -> Self {
        TierStack::three_d(Library::twelve_track(), Library::nine_track())
    }

    /// [`TierStack::heterogeneous`] with both libraries derated to
    /// `corner` ([`Corner::Typical`] reproduces `heterogeneous()`
    /// bit for bit).
    #[must_use]
    pub fn heterogeneous_at(corner: Corner) -> Self {
        TierStack::three_d(
            Library::twelve_track_at(corner),
            Library::nine_track_at(corner),
        )
    }

    /// Rebinds the inter-tier via technology to `style`'s (builder
    /// style). [`StackingStyle::Monolithic`] is the identity on the
    /// default stack: its via *is* [`crate::Miv::default`].
    #[must_use]
    pub fn with_stacking(mut self, style: StackingStyle) -> Self {
        self.metal.miv = style.via();
        self
    }

    /// Returns `true` for a two-tier (3-D) stack.
    #[must_use]
    pub fn is_3d(&self) -> bool {
        self.top.is_some()
    }

    /// Returns `true` when the two tiers use different libraries.
    #[must_use]
    pub fn is_heterogeneous(&self) -> bool {
        match &self.top {
            Some(top) => top.name != self.bottom.name,
            None => false,
        }
    }

    /// The library bound to `tier`. For a 2-D stack every tier maps to the
    /// single die's library.
    #[must_use]
    pub fn library(&self, tier: Tier) -> &Library {
        match tier {
            Tier::Bottom => &self.bottom,
            Tier::Top => self.top.as_deref().unwrap_or(&self.bottom),
        }
    }

    /// The tier whose library has the lower nominal gate delay (the "fast"
    /// die). For homogeneous stacks this is [`Tier::Bottom`].
    #[must_use]
    pub fn fast_tier(&self) -> Tier {
        if !self.is_heterogeneous() {
            return Tier::Bottom;
        }
        let d = |t: Tier| {
            let lib = self.library(t);
            let inv = lib
                .cell(crate::CellKind::Inv, crate::Drive::X1)
                .expect("INV_X1 always characterized");
            inv.delay(0.02, 4.0 * inv.input_cap_ff)
        };
        if d(Tier::Bottom) <= d(Tier::Top) {
            Tier::Bottom
        } else {
            Tier::Top
        }
    }

    /// The slow die — [`Tier::other`] of [`TierStack::fast_tier`].
    #[must_use]
    pub fn slow_tier(&self) -> Tier {
        self.fast_tier().other()
    }

    /// Higher of the two supply voltages.
    #[must_use]
    pub fn vdd_high(&self) -> f64 {
        let b = self.bottom.vdd;
        match &self.top {
            Some(t) => b.max(t.vdd),
            None => b,
        }
    }

    /// Lower of the two supply voltages.
    #[must_use]
    pub fn vdd_low(&self) -> f64 {
        let b = self.bottom.vdd;
        match &self.top {
            Some(t) => b.min(t.vdd),
            None => b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_other_round_trips() {
        assert_eq!(Tier::Bottom.other(), Tier::Top);
        assert_eq!(Tier::Top.other().other(), Tier::Top);
        assert_eq!(Tier::Bottom.index(), 0);
        assert_eq!(Tier::Top.index(), 1);
    }

    #[test]
    fn two_d_stack_maps_both_tiers_to_one_library() {
        let s = TierStack::two_d(Library::nine_track());
        assert!(!s.is_3d());
        assert!(!s.is_heterogeneous());
        assert_eq!(s.library(Tier::Top).name, s.library(Tier::Bottom).name);
    }

    #[test]
    fn homogeneous_3d_is_not_heterogeneous() {
        let s = TierStack::homogeneous_3d(Library::twelve_track());
        assert!(s.is_3d());
        assert!(!s.is_heterogeneous());
        assert_eq!(s.fast_tier(), Tier::Bottom);
    }

    #[test]
    fn default_stacking_is_the_identity_and_f2f_swaps_the_via() {
        let base = TierStack::heterogeneous();
        let mono = TierStack::heterogeneous().with_stacking(StackingStyle::Monolithic);
        assert_eq!(base.metal, mono.metal);
        let f2f = TierStack::heterogeneous().with_stacking(StackingStyle::F2fHybridBond);
        assert_eq!(f2f.metal.miv, StackingStyle::F2fHybridBond.via());
        // The routing layers themselves are untouched.
        assert_eq!(f2f.metal.layer_count(), base.metal.layer_count());
    }

    #[test]
    fn corner_derated_heterogeneous_stack_keeps_its_shape() {
        let typ = TierStack::heterogeneous_at(Corner::Typical);
        assert_eq!(typ.library(Tier::Bottom).name, "28nm_12T");
        let slow = TierStack::heterogeneous_at(Corner::Slow);
        assert!(slow.is_heterogeneous());
        assert_eq!(slow.library(Tier::Bottom).name, "28nm_12T_ss");
        assert_eq!(slow.library(Tier::Top).name, "28nm_9T_ss");
        assert_eq!(slow.fast_tier(), Tier::Bottom);
        assert!(slow.vdd_high() < typ.vdd_high());
    }

    #[test]
    fn heterogeneous_stack_has_fast_bottom() {
        let s = TierStack::heterogeneous();
        assert!(s.is_3d());
        assert!(s.is_heterogeneous());
        assert_eq!(s.fast_tier(), Tier::Bottom);
        assert_eq!(s.slow_tier(), Tier::Top);
        assert_eq!(s.vdd_high(), 0.90);
        assert_eq!(s.vdd_low(), 0.81);
    }
}
