//! Global routing substrate: congestion-aware grid routing, MIV counting
//! and parasitic extraction.
//!
//! The paper's evaluation depends on routing at two points: wirelength
//! (Table VI/VII's `WL` rows and the 3-D wirelength reduction story) and
//! the per-net RC that feeds sign-off timing and switching power. This
//! crate provides both:
//!
//! * [`global_route`] — a two-pass L/Z-shape global router on a uniform
//!   grid with per-edge capacities from the [`m3d_tech::MetalStack`];
//!   congested edges force detours (which is exactly what makes the
//!   wire-dominant LDPC behave differently from AES),
//! * MIV accounting — one inter-tier via per tier crossing of a net's
//!   spanning topology (Table VI's `# MIVs` row),
//! * [`extract_parasitics`] — per-net RC from routed (or estimated)
//!   lengths, in the [`m3d_sta::Parasitics`] format the timing engine
//!   consumes.
//!
//! # Examples
//!
//! ```
//! use m3d_netgen::Benchmark;
//! use m3d_place::{global_place, Floorplan, PlacerConfig};
//! use m3d_route::{global_route, RouteConfig};
//! use m3d_tech::{Library, Tier, TierStack};
//!
//! let netlist = Benchmark::Aes.generate(0.02, 1);
//! let stack = TierStack::two_d(Library::twelve_track());
//! let tiers = vec![Tier::Bottom; netlist.cell_count()];
//! let fp = Floorplan::new(&netlist, &stack, &tiers, 0.7);
//! let placement = global_place(&netlist, &fp, &PlacerConfig::default());
//! let routed = global_route(&netlist, &placement, &tiers, &stack, &RouteConfig::default());
//! assert!(routed.total_wirelength_um > 0.0);
//! ```

mod extract;
mod router;

pub use extract::{
    extract_parasitics, extract_parasitics_with_stats, try_extract_parasitics_with_stats,
    ExtractError, ExtractStats,
};
pub use router::{global_route, RouteConfig, RoutedNet, RoutingResult};
