use m3d_geom::Point;
use m3d_netlist::{NetId, Netlist};
use m3d_place::Placement;
use m3d_tech::{Tier, TierStack};

/// Global-router parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteConfig {
    /// Grid cells per axis.
    pub bins: usize,
    /// Congestion-cost exponent: cost of an edge = `(1 + demand/cap)^k`.
    pub congestion_exponent: f64,
    /// Fraction of capacity considered overflowed.
    pub overflow_threshold: f64,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            bins: 32,
            congestion_exponent: 3.0,
            overflow_threshold: 1.0,
        }
    }
}

/// Routing outcome of one net.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RoutedNet {
    /// Total routed length, µm.
    pub length_um: f64,
    /// Inter-tier vias used.
    pub mivs: u32,
    /// Whether any of this net's edges ended on an overflowed grid edge.
    pub congested: bool,
}

/// Whole-design routing result.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingResult {
    /// Per-net outcomes, indexed by net id (clock nets are zero).
    pub nets: Vec<RoutedNet>,
    /// Total signal wirelength, µm.
    pub total_wirelength_um: f64,
    /// Manhattan length of the Prim spanning trees before congestion
    /// detours, µm — the lower bound the router works from. The gap to
    /// `total_wirelength_um` measures detour cost.
    pub prim_wirelength_um: f64,
    /// Total MIV count.
    pub total_mivs: usize,
    /// Maximum edge demand/capacity ratio.
    pub max_congestion: f64,
    /// Number of grid edges above the overflow threshold.
    pub overflow_edges: usize,
}

impl RoutingResult {
    /// Total wirelength in millimetres (the paper reports mm / m).
    #[must_use]
    pub fn total_wirelength_mm(&self) -> f64 {
        self.total_wirelength_um * 1e-3
    }
}

/// Edge-capacity grid: horizontal and vertical demand per bin edge.
struct Grid {
    nx: usize,
    ny: usize,
    bin_w: f64,
    bin_h: f64,
    llx: f64,
    lly: f64,
    /// demand on horizontal edges: (nx-1) * ny
    h_demand: Vec<f64>,
    /// demand on vertical edges: nx * (ny-1)
    v_demand: Vec<f64>,
    h_cap: f64,
    v_cap: f64,
}

impl Grid {
    fn new(placement: &Placement, stack: &TierStack, bins: usize) -> Self {
        let die = placement.die;
        let nx = bins.max(2);
        let ny = bins.max(2);
        let bin_w = die.width() / nx as f64;
        let bin_h = die.height() / ny as f64;
        // Capacity in tracks per edge; both tiers contribute in 3-D.
        let tiers = if stack.is_3d() { 2.0 } else { 1.0 };
        let h_cap = stack.metal.edge_capacity(bin_h, true) as f64 * tiers;
        let v_cap = stack.metal.edge_capacity(bin_w, false) as f64 * tiers;
        Grid {
            nx,
            ny,
            bin_w,
            bin_h,
            llx: die.llx(),
            lly: die.lly(),
            h_demand: vec![0.0; (nx - 1) * ny],
            v_demand: vec![0.0; nx * (ny - 1)],
            h_cap: h_cap.max(1.0),
            v_cap: v_cap.max(1.0),
        }
    }

    fn bin_of(&self, p: Point) -> (usize, usize) {
        let cx = (((p.x - self.llx) / self.bin_w).floor() as isize).clamp(0, self.nx as isize - 1)
            as usize;
        let cy = (((p.y - self.lly) / self.bin_h).floor() as isize).clamp(0, self.ny as isize - 1)
            as usize;
        (cx, cy)
    }

    fn h_edge(&self, x: usize, y: usize) -> usize {
        y * (self.nx - 1) + x
    }

    fn v_edge(&self, x: usize, y: usize) -> usize {
        y * self.nx + x
    }

    /// Congestion cost of stepping horizontally from bin (x,y) to (x+1,y).
    fn h_cost(&self, x: usize, y: usize, k: f64) -> f64 {
        let d = self.h_demand[self.h_edge(x, y)];
        (1.0 + d / self.h_cap).powf(k)
    }

    fn v_cost(&self, x: usize, y: usize, k: f64) -> f64 {
        let d = self.v_demand[self.v_edge(x, y)];
        (1.0 + d / self.v_cap).powf(k)
    }

    /// Adds demand along a horizontal run at row `y` from `x0` to `x1`.
    fn add_h(&mut self, y: usize, x0: usize, x1: usize) {
        let (a, b) = (x0.min(x1), x0.max(x1));
        for x in a..b {
            let e = self.h_edge(x, y);
            self.h_demand[e] += 1.0;
        }
    }

    fn add_v(&mut self, x: usize, y0: usize, y1: usize) {
        let (a, b) = (y0.min(y1), y0.max(y1));
        for y in a..b {
            let e = self.v_edge(x, y);
            self.v_demand[e] += 1.0;
        }
    }

    /// Cost of a horizontal run (for comparing L orientations).
    fn h_run_cost(&self, y: usize, x0: usize, x1: usize, k: f64) -> f64 {
        let (a, b) = (x0.min(x1), x0.max(x1));
        (a..b).map(|x| self.h_cost(x, y, k)).sum()
    }

    fn v_run_cost(&self, x: usize, y0: usize, y1: usize, k: f64) -> f64 {
        let (a, b) = (y0.min(y1), y0.max(y1));
        (a..b).map(|y| self.v_cost(x, y, k)).sum()
    }
}

/// Routes every signal net over a congestion grid.
///
/// Net topology: a rectilinear spanning tree from the driver (Prim order),
/// each tree edge routed as the cheaper of its two L-shapes given current
/// congestion; a second pass re-routes nets that ended on overflowed edges
/// trying Z-shapes. MIVs: one per tree edge whose endpoints sit on
/// different tiers.
#[must_use]
pub fn global_route(
    netlist: &Netlist,
    placement: &Placement,
    tiers: &[Tier],
    stack: &TierStack,
    config: &RouteConfig,
) -> RoutingResult {
    let mut grid = Grid::new(placement, stack, config.bins);
    let k = config.congestion_exponent;
    let mut nets = vec![RoutedNet::default(); netlist.net_count()];

    let candidates: Vec<NetId> = netlist
        .nets()
        .filter(|(_, n)| !n.is_clock && n.degree() >= 2)
        .map(|(id, _)| id)
        .collect();
    // Per-net work below is pure, so thread-gating it is determinism-safe:
    // parallel and sequential paths produce identical values per item.
    let workers = if candidates.len() >= m3d_par::PAR_THRESHOLD {
        m3d_par::resolve(0)
    } else {
        1
    };

    // Order: short nets first (they have the least flexibility). The sort
    // keys are computed in parallel; the stable index sort below yields the
    // same permutation as sorting the ids directly.
    let hpwl = m3d_par::par_map(workers, &candidates, |_, &id| {
        placement.net_hpwl(netlist, id)
    });
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| {
        hpwl[a]
            .partial_cmp(&hpwl[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // Phase 1 (parallel): per-net topology — pin positions, Prim tree, MIV
    // count. None of it depends on congestion, so every net's plan can be
    // built concurrently.
    let plans: Vec<NetPlan> = m3d_par::par_map(workers, &order, |_, &ix| {
        plan_net(netlist, placement, tiers, candidates[ix])
    });

    // Phase 2 (sequential): commit each plan to the shared congestion grid
    // in HPWL order — demand evolution defines the result, so this order is
    // the contract.
    for plan in &plans {
        nets[plan.net.index()] = route_plan(&mut grid, plan, k, false);
    }

    // Second pass: reroute congested nets with Z-shape exploration. The
    // tree is congestion-independent, so the phase-1 plan is reused.
    for plan in &plans {
        if nets[plan.net.index()].congested {
            nets[plan.net.index()] = route_plan(&mut grid, plan, k, true);
        }
    }

    let total_wirelength_um = nets.iter().map(|n| n.length_um).sum();
    // Folded in HPWL (commit) order, matching the other totals.
    let prim_wirelength_um = plans.iter().map(|p| p.prim_um).sum();
    let total_mivs = nets.iter().map(|n| n.mivs as usize).sum();
    let mut max_congestion = 0.0_f64;
    let mut overflow_edges = 0usize;
    for y in 0..grid.ny {
        for x in 0..grid.nx - 1 {
            let r = grid.h_demand[grid.h_edge(x, y)] / grid.h_cap;
            max_congestion = max_congestion.max(r);
            if r > config.overflow_threshold {
                overflow_edges += 1;
            }
        }
    }
    for y in 0..grid.ny - 1 {
        for x in 0..grid.nx {
            let r = grid.v_demand[grid.v_edge(x, y)] / grid.v_cap;
            max_congestion = max_congestion.max(r);
            if r > config.overflow_threshold {
                overflow_edges += 1;
            }
        }
    }

    RoutingResult {
        nets,
        total_wirelength_um,
        prim_wirelength_um,
        total_mivs,
        max_congestion,
        overflow_edges,
    }
}

/// Congestion-independent routing plan for one net: pin positions, Prim
/// spanning-tree edges and the MIV count those edges imply. Building a
/// plan is pure per-net work, which is what lets `global_route` fan the
/// planning phase out across threads.
struct NetPlan {
    net: NetId,
    pts: Vec<Point>,
    edges: Vec<(usize, usize)>,
    mivs: u32,
    /// Manhattan length of the tree edges (pre-detour lower bound), µm.
    prim_um: f64,
}

fn plan_net(netlist: &Netlist, placement: &Placement, tiers: &[Tier], net_id: NetId) -> NetPlan {
    let net = netlist.net(net_id);
    let cells: Vec<_> = net.cells().collect();
    let pts: Vec<Point> = cells
        .iter()
        .map(|c| placement.positions[c.index()])
        .collect();
    let n = pts.len();
    if n < 2 {
        return NetPlan {
            net: net_id,
            pts,
            edges: Vec::new(),
            mivs: 0,
            prim_um: 0.0,
        };
    }

    // Prim spanning tree from the driver (index 0).
    let mut in_tree = vec![false; n];
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![0usize; n];
    in_tree[0] = true;
    for i in 1..n {
        dist[i] = pts[i].manhattan(pts[0]);
    }
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let mut best = usize::MAX;
        let mut bd = f64::INFINITY;
        for i in 0..n {
            if !in_tree[i] && dist[i] < bd {
                best = i;
                bd = dist[i];
            }
        }
        if best == usize::MAX {
            break;
        }
        in_tree[best] = true;
        edges.push((parent[best], best));
        for i in 0..n {
            if !in_tree[i] {
                let d = pts[i].manhattan(pts[best]);
                if d < dist[i] {
                    dist[i] = d;
                    parent[i] = best;
                }
            }
        }
    }

    let mivs = edges
        .iter()
        .filter(|&&(a, b)| tiers[cells[a].index()] != tiers[cells[b].index()])
        .count() as u32;
    let prim_um = edges.iter().map(|&(a, b)| pts[a].manhattan(pts[b])).sum();
    NetPlan {
        net: net_id,
        pts,
        edges,
        mivs,
        prim_um,
    }
}

/// Commits one plan to the congestion grid, routing each tree edge as the
/// cheaper L (or Z when `try_z`) under the grid's current demand.
fn route_plan(grid: &mut Grid, plan: &NetPlan, k: f64, try_z: bool) -> RoutedNet {
    let mut length = 0.0;
    let mut congested = false;
    for &(a, b) in &plan.edges {
        length += route_edge(grid, plan.pts[a], plan.pts[b], k, try_z, &mut congested);
    }
    RoutedNet {
        length_um: length,
        mivs: plan.mivs,
        congested,
    }
}

/// Routes one 2-pin edge as the cheaper L (or, when `try_z`, the best of
/// the Ls and a midpoint Z in each orientation). Returns the wirelength
/// and updates demand.
fn route_edge(
    grid: &mut Grid,
    pa: Point,
    pb: Point,
    k: f64,
    try_z: bool,
    congested: &mut bool,
) -> f64 {
    let (ax, ay) = grid.bin_of(pa);
    let (bx, by) = grid.bin_of(pb);
    let manhattan = pa.manhattan(pb);

    // Candidate bend sequences expressed as (corner1, corner2) bins.
    let mut candidates: Vec<(usize, usize)> = vec![
        (grid.h_edge_dummy(bx, ay)), // L via (bx, ay)
        (grid.h_edge_dummy(ax, by)), // L via (ax, by)
    ];
    if try_z {
        let mx = ax.midpoint_bin(bx);
        let my = ay.midpoint_bin(by);
        candidates.push(grid.h_edge_dummy(mx, ay)); // Z with horizontal first
        candidates.push(grid.h_edge_dummy(ax, my)); // Z with vertical first
    }

    // Evaluate each candidate: path = a -> c -> b with axis-aligned runs.
    let mut best_cost = f64::INFINITY;
    let mut best: (usize, usize) = candidates[0];
    for &(cx, cy) in &candidates {
        let cost = grid.h_run_cost(ay, ax, cx, k)
            + grid.v_run_cost(cx, ay, cy, k)
            + grid.h_run_cost(cy, cx, bx, k)
            + grid.v_run_cost(bx, cy, by, k);
        if cost < best_cost {
            best_cost = cost;
            best = (cx, cy);
        }
    }
    let (cx, cy) = best;
    grid.add_h(ay, ax, cx);
    grid.add_v(cx, ay, cy);
    grid.add_h(cy, cx, bx);
    grid.add_v(bx, cy, by);

    // Congestion check on the chosen corner bins.
    let over = |d: f64, c: f64| d / c > 1.0;
    if (cx > 0 && over(grid.h_demand[grid.h_edge(cx - 1, ay)], grid.h_cap))
        || (cy > 0 && over(grid.v_demand[grid.v_edge(cx, cy - 1)], grid.v_cap))
    {
        *congested = true;
    }

    // Length: the detour via (cx, cy) relative to straight manhattan.
    let corner = Point::new(
        grid.llx + (cx as f64 + 0.5) * grid.bin_w,
        grid.lly + (cy as f64 + 0.5) * grid.bin_h,
    );
    let routed = pa.manhattan(corner) + corner.manhattan(pb);
    routed.max(manhattan)
}

/// Tiny helpers keeping the candidate list readable.
trait MidBin {
    fn midpoint_bin(self, other: usize) -> usize;
}

impl MidBin for usize {
    fn midpoint_bin(self, other: usize) -> usize {
        (self + other) / 2
    }
}

impl Grid {
    /// Packs a corner-bin candidate (kept as a method for symmetry).
    fn h_edge_dummy(&self, x: usize, y: usize) -> (usize, usize) {
        (x.min(self.nx - 1), y.min(self.ny - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_place::{global_place, Floorplan, PlacerConfig};
    use m3d_tech::Library;

    fn setup(bench: m3d_netgen::Benchmark) -> (Netlist, Vec<Tier>, Placement, TierStack) {
        let n = bench.generate(0.02, 11);
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let fp = Floorplan::new(&n, &stack, &tiers, 0.7);
        let p = global_place(&n, &fp, &PlacerConfig::default());
        (n, tiers, p, stack)
    }

    #[test]
    fn routed_length_at_least_hpwl() {
        let (n, tiers, p, stack) = setup(m3d_netgen::Benchmark::Aes);
        let r = global_route(&n, &p, &tiers, &stack, &RouteConfig::default());
        let hpwl = p.hpwl(&n);
        assert!(
            r.total_wirelength_um >= 0.9 * hpwl,
            "routed {} vs hpwl {hpwl}",
            r.total_wirelength_um
        );
        // And not absurdly longer.
        assert!(r.total_wirelength_um < 3.0 * hpwl + 1000.0);
    }

    #[test]
    fn two_d_design_has_no_mivs() {
        let (n, tiers, p, stack) = setup(m3d_netgen::Benchmark::Aes);
        let r = global_route(&n, &p, &tiers, &stack, &RouteConfig::default());
        assert_eq!(r.total_mivs, 0);
    }

    #[test]
    fn three_d_split_produces_mivs() {
        let n = m3d_netgen::Benchmark::Aes.generate(0.02, 11);
        let stack = TierStack::homogeneous_3d(Library::twelve_track());
        let mut tiers = vec![Tier::Bottom; n.cell_count()];
        for (i, t) in tiers.iter_mut().enumerate() {
            if i % 2 == 0 {
                *t = Tier::Top;
            }
        }
        let fp = Floorplan::new(&n, &stack, &tiers, 0.7);
        let p = global_place(&n, &fp, &PlacerConfig::default());
        let r = global_route(&n, &p, &tiers, &stack, &RouteConfig::default());
        assert!(r.total_mivs > 0);
    }

    #[test]
    fn wire_dominant_design_is_more_congested() {
        let (na, ta, pa, stack_a) = setup(m3d_netgen::Benchmark::Aes);
        let (nl, tl, pl, stack_l) = setup(m3d_netgen::Benchmark::Ldpc);
        let ra = global_route(&na, &pa, &ta, &stack_a, &RouteConfig::default());
        let rl = global_route(&nl, &pl, &tl, &stack_l, &RouteConfig::default());
        // LDPC has global connectivity: its wirelength per cell dwarfs AES.
        let per_cell_a = ra.total_wirelength_um / na.gate_count() as f64;
        let per_cell_l = rl.total_wirelength_um / nl.gate_count() as f64;
        assert!(
            per_cell_l > 1.5 * per_cell_a,
            "ldpc {per_cell_l} vs aes {per_cell_a}"
        );
    }

    #[test]
    fn routing_is_deterministic() {
        let (n, tiers, p, stack) = setup(m3d_netgen::Benchmark::Netcard);
        let a = global_route(&n, &p, &tiers, &stack, &RouteConfig::default());
        let b = global_route(&n, &p, &tiers, &stack, &RouteConfig::default());
        assert_eq!(a.total_wirelength_um, b.total_wirelength_um);
        assert_eq!(a.total_mivs, b.total_mivs);
    }
}
