use crate::router::RoutingResult;
use m3d_netlist::Netlist;
use m3d_place::Placement;
use m3d_sta::{NetModel, Parasitics};
use m3d_tech::TierStack;

/// Extracts per-net RC from routing results (or, when `routing` is `None`,
/// from placement Steiner estimates — the pre-route mode used during the
/// pseudo-3-D stage).
///
/// Model per net:
/// * length = routed length, or Steiner estimate of the pin positions,
/// * C = length × c̄ (average intermediate-layer capacitance per µm),
/// * wire delay = 0.5·R·C (distributed Elmore) + MIV hops.
#[must_use]
pub fn extract_parasitics(
    netlist: &Netlist,
    placement: &Placement,
    stack: &TierStack,
    routing: Option<&RoutingResult>,
) -> Parasitics {
    extract_parasitics_with_stats(netlist, placement, stack, routing).0
}

/// Aggregate counters from one extraction pass, surfaced for run
/// telemetry. Deterministic at any thread count: per-chunk partials are
/// folded in chunk-index order (the chunking depends only on the net
/// count), so the float sums see a fixed addition sequence.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ExtractStats {
    /// Nets that received an RC model (multi-pin signal nets).
    pub rc_segments: u64,
    /// Modeled wire length, µm.
    pub total_length_um: f64,
    /// Modeled wire capacitance, fF.
    pub total_wire_cap_ff: f64,
}

/// Why an extraction input cannot be processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractError {
    /// The routing result covers fewer nets than the netlist, so a net id
    /// would index out of bounds (stale routing after buffer insertion is
    /// the classic way to get here).
    RoutingCountMismatch { routed: usize, nets: usize },
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::RoutingCountMismatch { routed, nets } => {
                write!(f, "routing covers {routed} nets, netlist has {nets}")
            }
        }
    }
}

impl std::error::Error for ExtractError {}

/// [`extract_parasitics_with_stats`] with input validation: a routing
/// result that does not cover the netlist comes back as an
/// [`ExtractError`] instead of an index panic inside the chunked sweep.
pub fn try_extract_parasitics_with_stats(
    netlist: &Netlist,
    placement: &Placement,
    stack: &TierStack,
    routing: Option<&RoutingResult>,
) -> Result<(Parasitics, ExtractStats), ExtractError> {
    if let Some(r) = routing {
        if r.nets.len() < netlist.net_count() {
            return Err(ExtractError::RoutingCountMismatch {
                routed: r.nets.len(),
                nets: netlist.net_count(),
            });
        }
    }
    Ok(extract_parasitics_with_stats(
        netlist, placement, stack, routing,
    ))
}

/// [`extract_parasitics`] plus the [`ExtractStats`] counters of the pass.
#[must_use]
pub fn extract_parasitics_with_stats(
    netlist: &Netlist,
    placement: &Placement,
    stack: &TierStack,
    routing: Option<&RoutingResult>,
) -> (Parasitics, ExtractStats) {
    let per_um = stack.metal.estimate_rc_per_um();
    let miv = stack.metal.miv;
    let n = netlist.net_count();
    // Each model is a pure function of one net, so the map fans out across
    // threads; chunks come back in net-id order either way.
    let workers = if n >= m3d_par::PAR_THRESHOLD {
        m3d_par::resolve(0)
    } else {
        1
    };
    let chunks = m3d_par::par_ranges(workers, n, |range| {
        let mut models = Vec::with_capacity(range.len());
        let mut stats = ExtractStats::default();
        // One pin scratch buffer per chunk — the Steiner estimate reuses
        // it across every net in the range instead of collecting a fresh
        // `Vec<Point>` per net.
        let mut pins = Vec::new();
        for k in range {
            let id = m3d_netlist::NetId::from_index(k);
            let net = netlist.net(id);
            if net.is_clock || net.degree() < 2 {
                models.push(NetModel::default());
                continue;
            }
            let (length, mivs) = match routing {
                Some(r) => {
                    let rn = r.nets[id.index()];
                    (rn.length_um, rn.mivs)
                }
                None => (placement.net_steiner_with(netlist, id, &mut pins), 0),
            };
            let r_kohm = per_um.r_kohm * length + miv.r_kohm * mivs as f64;
            let c_ff = per_um.c_ff * length + miv.c_ff * mivs as f64;
            stats.rc_segments += 1;
            stats.total_length_um += length;
            stats.total_wire_cap_ff += c_ff;
            models.push(NetModel {
                wire_cap_ff: c_ff,
                // Distributed line: Elmore ≈ R·C/2; kΩ·fF = ps.
                wire_delay_ns: 0.5 * r_kohm * c_ff * 1e-3,
            });
        }
        (models, stats)
    });
    let mut models = Vec::with_capacity(n);
    let mut stats = ExtractStats::default();
    for (chunk_models, chunk_stats) in chunks {
        models.extend(chunk_models);
        stats.rc_segments += chunk_stats.rc_segments;
        stats.total_length_um += chunk_stats.total_length_um;
        stats.total_wire_cap_ff += chunk_stats.total_wire_cap_ff;
    }
    (Parasitics::from_models(netlist, models), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{global_route, RouteConfig};
    use m3d_place::{global_place, Floorplan, PlacerConfig};
    use m3d_tech::{Library, Tier};

    fn setup() -> (Netlist, Vec<Tier>, Placement, TierStack) {
        let n = m3d_netgen::Benchmark::Aes.generate(0.02, 21);
        let stack = TierStack::two_d(Library::twelve_track());
        let tiers = vec![Tier::Bottom; n.cell_count()];
        let fp = Floorplan::new(&n, &stack, &tiers, 0.7);
        let p = global_place(&n, &fp, &PlacerConfig::default());
        (n, tiers, p, stack)
    }

    #[test]
    fn preroute_extraction_is_positive() {
        let (n, _t, p, stack) = setup();
        let par = extract_parasitics(&n, &p, &stack, None);
        assert!(par.total_wire_cap_ff() > 0.0);
        // Every multi-pin signal net gets nonzero cap.
        for (id, net) in n.nets() {
            if !net.is_clock && net.degree() >= 2 {
                assert!(par.net(id).wire_cap_ff >= 0.0);
                assert!(par.net(id).wire_delay_ns >= 0.0);
            }
        }
    }

    #[test]
    fn postroute_cap_tracks_routed_length() {
        let (n, tiers, p, stack) = setup();
        let routed = global_route(&n, &p, &tiers, &stack, &RouteConfig::default());
        let pre = extract_parasitics(&n, &p, &stack, None);
        let post = extract_parasitics(&n, &p, &stack, Some(&routed));
        // Routed lengths >= Steiner estimates overall.
        assert!(post.total_wire_cap_ff() >= 0.8 * pre.total_wire_cap_ff());
    }

    #[test]
    fn longer_placement_means_more_delay() {
        let (n, _t, p, stack) = setup();
        // Scale positions 3x apart (spread the die).
        let mut far = p.clone();
        for q in &mut far.positions {
            *q = *q * 3.0;
        }
        let near = extract_parasitics(&n, &p, &stack, None);
        let spread = extract_parasitics(&n, &far, &stack, None);
        assert!(spread.total_wire_cap_ff() > 2.0 * near.total_wire_cap_ff());
    }

    #[test]
    fn try_extract_rejects_stale_routing() {
        let (n, tiers, p, stack) = setup();
        let mut routed = global_route(&n, &p, &tiers, &stack, &RouteConfig::default());
        routed.nets.truncate(n.net_count() - 1);
        let err = try_extract_parasitics_with_stats(&n, &p, &stack, Some(&routed)).unwrap_err();
        assert_eq!(
            err,
            ExtractError::RoutingCountMismatch {
                routed: n.net_count() - 1,
                nets: n.net_count()
            }
        );
    }

    #[test]
    fn try_extract_accepts_fresh_routing_and_preroute() {
        let (n, tiers, p, stack) = setup();
        let routed = global_route(&n, &p, &tiers, &stack, &RouteConfig::default());
        let (par, stats) =
            try_extract_parasitics_with_stats(&n, &p, &stack, Some(&routed)).unwrap();
        let (want, want_stats) = extract_parasitics_with_stats(&n, &p, &stack, Some(&routed));
        assert_eq!(par.total_wire_cap_ff(), want.total_wire_cap_ff());
        assert_eq!(stats, want_stats);
        assert!(try_extract_parasitics_with_stats(&n, &p, &stack, None).is_ok());
    }

    #[test]
    fn clock_nets_are_skipped() {
        let (n, _t, p, stack) = setup();
        let par = extract_parasitics(&n, &p, &stack, None);
        let clk = n.clock().expect("generated designs have a clock");
        assert_eq!(par.net(clk).wire_cap_ff, 0.0);
    }
}
