//! Criterion micro-benchmarks of the flow's heavy kernels: FM min-cut,
//! STA, global placement, global routing and CTS on a fixed mid-size
//! netlist. These track the cost of the algorithms the ECO loop re-runs.

use criterion::{criterion_group, criterion_main, Criterion};
use hetero3d::netgen::Benchmark;
use hetero3d::partition::{min_cut, PartitionConfig};
use hetero3d::place::{global_place, Floorplan, PlacerConfig};
use hetero3d::route::{global_route, RouteConfig};
use hetero3d::sta::{analyze, ClockSpec, Parasitics, TimingContext};
use hetero3d::tech::{Library, Tier, TierStack};

fn bench_kernels(c: &mut Criterion) {
    let netlist = Benchmark::Netcard.generate(0.05, 3);
    let stack = TierStack::two_d(Library::twelve_track());
    let tiers = vec![Tier::Bottom; netlist.cell_count()];
    let fp = Floorplan::new(&netlist, &stack, &tiers, 0.7);
    let placement = global_place(&netlist, &fp, &PlacerConfig::default());
    let parasitics = Parasitics::zero_wire(&netlist);
    let areas: Vec<f64> = netlist
        .cells()
        .map(|(_, cell)| if cell.class.is_gate() { 1.0 } else { 0.0 })
        .collect();
    let locked = vec![false; netlist.cell_count()];

    c.bench_function("sta_full_pass", |b| {
        b.iter(|| {
            let ctx = TimingContext {
                netlist: &netlist,
                stack: &stack,
                tiers: &tiers,
                parasitics: &parasitics,
                clock: ClockSpec::with_period(1.0),
            };
            std::hint::black_box(analyze(&ctx).wns)
        })
    });

    c.bench_function("fm_min_cut", |b| {
        b.iter(|| {
            let mut t = vec![Tier::Bottom; netlist.cell_count()];
            std::hint::black_box(min_cut(
                &netlist,
                &areas,
                &locked,
                &mut t,
                &PartitionConfig::default(),
            ))
        })
    });

    c.bench_function("global_place", |b| {
        b.iter(|| {
            std::hint::black_box(
                global_place(&netlist, &fp, &PlacerConfig::default()).hpwl(&netlist),
            )
        })
    });

    c.bench_function("global_route", |b| {
        b.iter(|| {
            std::hint::black_box(
                global_route(
                    &netlist,
                    &placement,
                    &tiers,
                    &stack,
                    &RouteConfig::default(),
                )
                .total_wirelength_um,
            )
        })
    });

    c.bench_function("cts_flat", |b| {
        b.iter(|| {
            std::hint::black_box(
                hetero3d::cts::synthesize(
                    &netlist,
                    &placement,
                    &tiers,
                    &stack,
                    hetero3d::cts::CtsMode::Flat2d,
                    &hetero3d::cts::CtsConfig::default(),
                )
                .buffer_count(),
            )
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels
}
criterion_main!(kernels);
