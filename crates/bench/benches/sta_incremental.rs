//! Full re-analyze vs incremental `Timer` update under the flow's edit
//! vocabulary, on the AES and CPU netlists, plus an fmax-ladder
//! micro-bench (the period sweep is the incremental engine's best case:
//! no forward arc is ever re-propagated).
//!
//! Run with `cargo bench --bench sta_incremental`. The trailing summary
//! prints the measured speedups and the propagated-arc reduction
//! reported by the `Timer` stat counters.

use criterion::{criterion_group, criterion_main, Criterion};
use hetero3d::netgen::Benchmark;
use hetero3d::netlist::{CellId, Netlist};
use hetero3d::sta::{analyze, ClockSpec, Parasitics, StaResult, Timer, TimingContext};
use hetero3d::tech::{Drive, Tier, TierStack};
use std::time::Instant;

/// Same rung multipliers as the flow's fmax sweep.
const LADDER: [f64; 5] = [1.18, 1.08, 1.0, 0.92, 0.85];

struct Design {
    name: &'static str,
    netlist: Netlist,
    stack: TierStack,
    tiers: Vec<Tier>,
    parasitics: Parasitics,
    gates: Vec<CellId>,
}

fn design(name: &'static str, bench: Benchmark, scale: f64) -> Design {
    let netlist = bench.generate(scale, 7);
    let stack = TierStack::heterogeneous();
    let tiers = vec![Tier::Bottom; netlist.cell_count()];
    let parasitics = Parasitics::zero_wire(&netlist);
    let gates = netlist
        .cells()
        .filter(|(_, c)| c.class.is_gate() && !c.is_sequential())
        .map(|(id, _)| id)
        .collect();
    Design {
        name,
        netlist,
        stack,
        tiers,
        parasitics,
        gates,
    }
}

/// Toggles the drive of one rotating gate — the canonical sizing edit.
fn toggle_drive(d: &mut Design, step: usize) -> CellId {
    let g = d.gates[step * 131 % d.gates.len()];
    let dr = d.netlist.cell(g).class.gate_drive().expect("gate");
    let next = if step.is_multiple_of(2) {
        dr.upsized().unwrap_or(Drive::X1)
    } else {
        dr.downsized().unwrap_or(Drive::X8)
    };
    d.netlist.set_drive(g, next);
    g
}

fn ctx<'a>(d: &'a Design, period: f64) -> TimingContext<'a> {
    TimingContext {
        netlist: &d.netlist,
        stack: &d.stack,
        tiers: &d.tiers,
        parasitics: &d.parasitics,
        clock: ClockSpec::with_period(period),
    }
}

fn bench_design(c: &mut Criterion, mut d: Design) -> (f64, f64, u64, u64) {
    let name = d.name;

    // Cold pass per edit (what the flow did before the Timer existed).
    let mut step = 0usize;
    c.bench_function(&format!("sta_full_reanalyze_{name}"), |b| {
        b.iter(|| {
            toggle_drive(&mut d, step);
            step += 1;
            std::hint::black_box(analyze(&ctx(&d, 1.0)).wns)
        })
    });

    // Incremental update per edit through a persistent Timer.
    let mut timer = Timer::new();
    let _ = timer.update(&ctx(&d, 1.0)); // prime: the one full build
    let mut step = 1usize;
    c.bench_function(&format!("sta_incremental_{name}"), |b| {
        b.iter(|| {
            toggle_drive(&mut d, step);
            step += 1;
            std::hint::black_box(timer.update(&ctx(&d, 1.0)).wns)
        })
    });

    // Out-of-band speedup measurement over one identical edit sequence.
    let reps = 30usize;
    let t0 = Instant::now();
    let mut sink = 0.0;
    for s in 0..reps {
        toggle_drive(&mut d, s);
        sink += analyze(&ctx(&d, 1.0)).wns;
    }
    let full = t0.elapsed().as_secs_f64() / reps as f64;
    let mut timer = Timer::new();
    let _ = timer.update(&ctx(&d, 1.0));
    let t0 = Instant::now();
    for s in 0..reps {
        toggle_drive(&mut d, s);
        sink += timer.update(&ctx(&d, 1.0)).wns;
    }
    let incr = t0.elapsed().as_secs_f64() / reps as f64;
    std::hint::black_box(sink);
    let stats = timer.stats();
    let cold_equivalent =
        (stats.full_rebuilds + stats.incremental_updates) * timer.full_pass_evals();
    (full, incr, cold_equivalent, stats.propagated_evals())
}

/// The fmax ladder: five periods evaluated on an otherwise untouched
/// design. Cold analysis repeats the whole propagation per rung; the
/// Timer only re-evaluates endpoint RATs and required times.
fn bench_fmax_ladder(c: &mut Criterion, d: &Design) -> (f64, f64) {
    let sweep_cold =
        |d: &Design| -> f64 { LADDER.iter().map(|m| analyze(&ctx(d, m * 1.0)).wns).sum() };
    c.bench_function("fmax_ladder_full", |b| {
        b.iter(|| std::hint::black_box(sweep_cold(d)))
    });

    let mut timer = Timer::new();
    let _ = timer.update(&ctx(d, 1.0));
    c.bench_function("fmax_ladder_incremental", |b| {
        b.iter(|| {
            let s: f64 = LADDER
                .iter()
                .map(|m| {
                    timer.set_period(m * 1.0);
                    timer.update(&ctx(d, m * 1.0)).wns
                })
                .sum();
            std::hint::black_box(s)
        })
    });

    // Out-of-band ladder timing.
    let reps = 20usize;
    let t0 = Instant::now();
    let mut sink = 0.0;
    for _ in 0..reps {
        sink += sweep_cold(d);
    }
    let full = t0.elapsed().as_secs_f64() / reps as f64;
    let mut timer = Timer::new();
    let _ = timer.update(&ctx(d, 1.0));
    let t0 = Instant::now();
    for _ in 0..reps {
        for m in LADDER {
            sink += timer.update(&ctx(d, m * 1.0)).wns;
        }
    }
    let incr = t0.elapsed().as_secs_f64() / reps as f64;
    std::hint::black_box(sink);
    (full, incr)
}

fn bench_sta_incremental(c: &mut Criterion) {
    let mut lines = Vec::new();
    for (name, bench, scale) in [("aes", Benchmark::Aes, 0.15), ("cpu", Benchmark::Cpu, 0.10)] {
        let d = design(name, bench, scale);
        let cells = d.netlist.cell_count();
        let (full, incr, cold_evals, prop_evals) = bench_design(c, d);
        lines.push(format!(
            "{name} ({cells} cells): resize-edit speedup {:.1}x ({:.3} ms -> {:.3} ms), \
             propagated arcs {}x fewer ({} cold-equivalent vs {} incremental)",
            full / incr.max(1e-12),
            full * 1e3,
            incr * 1e3,
            cold_evals / prop_evals.max(1),
            cold_evals,
            prop_evals,
        ));
    }
    let d = design("aes", Benchmark::Aes, 0.15);
    let (full, incr) = bench_fmax_ladder(c, &d);
    lines.push(format!(
        "fmax ladder (5 rungs): speedup {:.1}x ({:.3} ms -> {:.3} ms per sweep)",
        full / incr.max(1e-12),
        full * 1e3,
        incr * 1e3,
    ));
    println!("\n--- sta_incremental summary ---");
    for l in &lines {
        println!("{l}");
    }

    let _ = sanity_result();
}

/// The bench mutates netlists without checking results; anchor once here
/// so a broken engine can't silently produce fast-but-wrong numbers.
fn sanity_result() -> StaResult {
    let d = design("aes", Benchmark::Aes, 0.05);
    let mut timer = Timer::new();
    let incr = timer.update(&ctx(&d, 1.0));
    let cold = analyze(&ctx(&d, 1.0));
    assert_eq!(incr.wns.to_bits(), cold.wns.to_bits(), "bench sanity: wns");
    assert_eq!(incr.tns.to_bits(), cold.tns.to_bits(), "bench sanity: tns");
    incr
}

criterion_group! {
    name = sta_incremental;
    config = Criterion::default().sample_size(10);
    targets = bench_sta_incremental
}
criterion_main!(sta_incremental);
