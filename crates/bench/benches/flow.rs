//! Criterion benchmarks of complete flow runs: one per configuration on a
//! small AES instance, plus the Pin-3-D-baseline-vs-enhanced pair. These
//! are the "how long does a full implementation take" numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use hetero3d::flow::{run_flow, Config, FlowOptions};
use hetero3d::netgen::Benchmark;

fn quick_options() -> FlowOptions {
    let mut o = FlowOptions::default();
    o.placer.iterations = 8;
    o
}

fn bench_flow(c: &mut Criterion) {
    let netlist = Benchmark::Aes.generate(0.02, 3);
    let options = quick_options();

    for config in Config::ALL {
        let label = format!("flow_{config}")
            .replace(' ', "_")
            .replace(['(', ')', '+'], "");
        c.bench_function(&label, |b| {
            b.iter(|| std::hint::black_box(run_flow(&netlist, config, 1.2, &options).sta.wns))
        });
    }

    let baseline = FlowOptions {
        enable_timing_partition: false,
        enable_3d_cts: false,
        enable_repartition: false,
        ..quick_options()
    };
    c.bench_function("flow_hetero_pin3d_baseline", |b| {
        b.iter(|| {
            std::hint::black_box(run_flow(&netlist, Config::Hetero3d, 1.2, &baseline).sta.wns)
        })
    });
}

criterion_group! {
    name = flow;
    config = Criterion::default().sample_size(10);
    targets = bench_flow
}
criterion_main!(flow);
