//! Criterion benchmarks of complete flow runs: one per configuration on a
//! small AES instance, the Pin-3-D-baseline-vs-enhanced pair, and the
//! parallel-engine speedup harness — `compare_configs` timed sequentially
//! (`threads = 1`) and with the parallel engine (`threads = 8`), with the
//! measured speedup printed alongside the raw numbers. The results are
//! bit-identical at both settings (enforced by `tests/determinism.rs`);
//! this harness regression-tests that the parallelism actually pays.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hetero3d::cost::CostModel;
use hetero3d::flow::{try_compare_configs, try_run_flow, Config, FlowOptions};
use hetero3d::netgen::Benchmark;

fn quick_options() -> FlowOptions {
    let mut o = FlowOptions::default();
    o.placer_mut().iterations = 8;
    o
}

fn bench_flow(c: &mut Criterion) {
    let netlist = Benchmark::Aes.generate(0.02, 3);
    let options = quick_options();

    for config in Config::ALL {
        let label = format!("flow_{config}")
            .replace(' ', "_")
            .replace(['(', ')', '+'], "");
        c.bench_function(&label, |b| {
            b.iter(|| {
                black_box(
                    try_run_flow(&netlist, config, 1.2, &options)
                        .expect("flow")
                        .sta
                        .wns,
                )
            })
        });
    }

    let baseline = FlowOptions {
        enable_timing_partition: false,
        enable_3d_cts: false,
        enable_repartition: false,
        ..quick_options()
    };
    c.bench_function("flow_hetero_pin3d_baseline", |b| {
        b.iter(|| {
            black_box(
                try_run_flow(&netlist, Config::Hetero3d, 1.2, &baseline)
                    .expect("flow")
                    .sta
                    .wns,
            )
        })
    });
}

/// Sequential vs parallel `compare_configs` on AES: the headline speedup
/// number for the deterministic parallel engine.
fn bench_compare_speedup(c: &mut Criterion) {
    let netlist = Benchmark::Aes.generate(0.02, 3);
    let cost = CostModel::default();
    let with_threads = |threads: usize| FlowOptions {
        threads,
        ..quick_options()
    };

    let seq = with_threads(1);
    let par = with_threads(8);
    c.bench_function("compare_configs_aes_seq_t1", |b| {
        b.iter(|| {
            black_box(
                try_compare_configs(&netlist, &seq, &cost)
                    .expect("flow")
                    .target_ghz,
            )
        })
    });
    c.bench_function("compare_configs_aes_par_t8", |b| {
        b.iter(|| {
            black_box(
                try_compare_configs(&netlist, &par, &cost)
                    .expect("flow")
                    .target_ghz,
            )
        })
    });

    // Direct speedup readout: median of 5 timed runs per setting, after a
    // warm-up run each.
    let median = |options: &FlowOptions| -> f64 {
        black_box(
            try_compare_configs(&netlist, options, &cost)
                .expect("flow")
                .target_ghz,
        );
        let mut t: Vec<f64> = (0..5)
            .map(|_| {
                let start = Instant::now();
                black_box(
                    try_compare_configs(&netlist, options, &cost)
                        .expect("flow")
                        .target_ghz,
                );
                start.elapsed().as_secs_f64()
            })
            .collect();
        t.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        t[t.len() / 2]
    };
    let t_seq = median(&seq);
    let t_par = median(&par);
    println!(
        "compare_configs AES speedup: {:.3} s (t=1) / {:.3} s (t=8) = {:.2}x",
        t_seq,
        t_par,
        t_seq / t_par
    );
}

criterion_group! {
    name = flow;
    config = Criterion::default().sample_size(10);
    targets = bench_flow, bench_compare_speedup
}
criterion_main!(flow);
