//! Regenerates Fig. 4: clock-tree / memory-net / critical-path overlays of
//! the CPU design in 2-D and heterogeneous 3-D, as SVG files.

use hetero3d::flow::{try_run_flow, Config};
use hetero3d::netgen::Benchmark;
use hetero3d::report::render_overlays;
use m3d_bench::{bench_options, emit, parse_args};

fn main() {
    let args = parse_args();
    let options = bench_options();
    let netlist = Benchmark::Cpu.generate(args.scale, args.seed);
    eprintln!("[cpu: {} gates]", netlist.gate_count());
    let frequency = 1.0;

    let imp_2d = try_run_flow(&netlist, Config::TwoD12T, frequency, &options).expect("flow");
    emit(
        &args,
        "fig4_2d_overlays.svg",
        &render_overlays(
            &imp_2d,
            "2D 12-track: clock (green), memory nets, critical path (red)",
        ),
    );
    let imp_h = try_run_flow(&netlist, Config::Hetero3d, frequency, &options).expect("flow");
    emit(
        &args,
        "fig4_hetero_overlays.svg",
        &render_overlays(
            &imp_h,
            "hetero 3D: clock (green), memory nets, critical path (red)",
        ),
    );
}
