//! Technology-axis Pareto sweep benchmark emitting
//! `results/BENCH_pareto.json`.
//!
//! Runs the heterogeneous configuration's stacking × corner × frequency
//! sweep twice — once forced sequential, once at four workers — and
//! asserts the two [`ParetoSummary`] point sets are **bit-identical**:
//! the sweep fans out through `par_invoke`, whose input-order results
//! make the frontier independent of the thread count. It also asserts
//! the checkpoint economics of the sweep: the pseudo-3-D stage runs
//! exactly once per distinct 3-D scenario (never once per grid point),
//! counted from the telemetry manifest across the `pareto/<scenario>`
//! scopes. The emitted document carries the exact swept points (frontier
//! flags included) for the bench gate's bit-for-bit comparison, plus
//! wall-derived scenario throughput for an absolute floor check.
//!
//! Usage: `pareto_bench [--scale <f64>] [--seed <u64>] [--out <dir>]`.
//! The default scale is the CI smoke setting (0.02): the gate needs a
//! fast, exactly reproducible datapoint, not a paper-scale one.

use hetero3d::cost::CostModel;
use hetero3d::flow::{Config, FlowOptions, FlowSession, ParetoSummary};
use hetero3d::netgen::Benchmark;
use hetero3d::netlist::Netlist;
use hetero3d::obs::Obs;
use hetero3d::tech::{Corner, StackingStyle};
use std::fmt::Write as _;
use std::time::Instant;

/// The swept configuration and grid: heterogeneous 3-D (the richest
/// scenario axis — both stacking styles × all three corners) over three
/// frequency rungs.
const CONFIG: Config = Config::Hetero3d;
const FREQ_MIN_GHZ: f64 = 0.8;
const FREQ_MAX_GHZ: f64 = 1.2;
const FREQ_STEPS: usize = 3;

/// One instrumented sweep at `threads` workers: the summary, the
/// pseudo-3-D run count summed across all telemetry scopes, and the
/// wall time.
fn sweep(netlist: &Netlist, base: &FlowOptions, threads: usize) -> (ParetoSummary, u64, f64) {
    let options = FlowOptions {
        threads,
        obs: Obs::enabled(),
        ..base.clone()
    };
    let session = FlowSession::builder(netlist)
        .options(options)
        .build()
        .expect("session");
    let started = Instant::now();
    let summary = session
        .pareto(
            CONFIG,
            FREQ_MIN_GHZ,
            FREQ_MAX_GHZ,
            FREQ_STEPS,
            &CostModel::default(),
        )
        .expect("pareto sweep");
    let wall_s = started.elapsed().as_secs_f64();
    let pseudo_runs = session
        .options()
        .obs
        .manifest()
        .counters
        .iter()
        .filter(|(k, _)| k == "flow/pseudo3d_runs" || k.ends_with("/flow/pseudo3d_runs"))
        .map(|&(_, v)| v)
        .sum();
    (summary, pseudo_runs, wall_s)
}

fn main() {
    let mut args = m3d_bench::parse_args();
    if !std::env::args().any(|a| a == "--scale") {
        args.scale = 0.02;
    }
    let netlist = Benchmark::Aes.generate(args.scale, args.seed);
    let base = m3d_bench::bench_options();

    // The identity check: one worker vs four, same netlist, same knobs.
    let (seq, seq_pseudo, _) = sweep(&netlist, &base, 1);
    let (par, par_pseudo, par_wall_s) = sweep(&netlist, &base, 4);
    let identical = seq == par;
    assert!(
        identical,
        "pareto determinism violated: 1-thread and 4-thread sweeps differ"
    );

    // Checkpoint economics: one pseudo-3-D run per distinct 3-D
    // scenario, regardless of the frequency-grid size.
    let scenarios = StackingStyle::ALL.len() * Corner::ALL.len();
    for (lane, runs) in [("1-thread", seq_pseudo), ("4-thread", par_pseudo)] {
        assert_eq!(
            runs, scenarios as u64,
            "{lane} sweep ran the pseudo-3-D stage {runs} times for {scenarios} scenarios; \
             per-scenario checkpoints should make them equal"
        );
    }

    let frontier = par.frontier().count();
    let scenarios_per_sec = scenarios as f64 / par_wall_s;
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"pareto_bench\",");
    let _ = writeln!(
        json,
        "  \"scale\": {}, \"seed\": {}, \"threads\": {},",
        args.scale,
        args.seed,
        hetero3d::par::resolve(0)
    );
    let _ = writeln!(
        json,
        "  \"config\": \"{CONFIG}\", \"freq_min_ghz\": {FREQ_MIN_GHZ}, \
         \"freq_max_ghz\": {FREQ_MAX_GHZ}, \"freq_steps\": {FREQ_STEPS},"
    );
    let _ = writeln!(json, "  \"deterministic_identity\": {identical},");
    let _ = writeln!(json, "  \"scenarios\": {scenarios},");
    let _ = writeln!(json, "  \"pseudo3d_runs\": {par_pseudo},");
    let _ = writeln!(json, "  \"frontier_points\": {frontier},");
    let _ = writeln!(json, "  \"scenarios_per_sec\": {scenarios_per_sec:.3},");
    let _ = writeln!(json, "  \"points\": [");
    for (i, p) in par.points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"stacking\": \"{}\", \"corner\": \"{}\", \"frequency_ghz\": {}, \
             \"total_power_mw\": {}, \"effective_delay_ns\": {}, \"die_cost_uc\": {}, \
             \"pdp_pj\": {}, \"ppc\": {}, \"wns_ns\": {}, \"timing_met\": {}, \
             \"on_frontier\": {}}}{}",
            p.stacking,
            p.corner,
            p.frequency_ghz,
            p.total_power_mw,
            p.effective_delay_ns,
            p.die_cost_uc,
            p.pdp_pj,
            p.ppc,
            p.wns_ns,
            p.timing_met,
            p.on_frontier,
            if i + 1 == par.points.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");

    m3d_bench::emit(&args, "BENCH_pareto.json", &json);
    println!(
        "pareto_bench: {} points bit-identical at 1 and 4 threads | {} scenarios, \
         {} pseudo-3D runs | {} frontier points | {:.2} scenarios/s",
        par.points.len(),
        scenarios,
        par_pseudo,
        frontier,
        scenarios_per_sec,
    );
}
