//! Instrumented flow run emitting the telemetry manifest as
//! `results/BENCH_flow.json`.
//!
//! Runs the heterogeneous flow with telemetry enabled twice — once forced
//! sequential, once at four workers — and asserts the deterministic
//! manifest sections (span call counts, counters, gauges, labels) are
//! **byte-identical**, the observability half of the workspace's
//! determinism contract. It then sweeps the 12-track 2-D configuration to
//! fmax under a scoped handle, runs the five-way configuration comparison
//! to measure checkpoint prefix reuse (the pseudo-3-D stage must run
//! exactly once per comparison), and emits one combined JSON document
//! with the deterministic section, the wall-clock/perf sections of both
//! runs, the fmax sweep manifest and the comparison manifest. The binary
//! installs [`hetero3d::obs::CountingAlloc`], so each instrumented flow
//! run also reports `alloc/peak_bytes` and `alloc/churn_bytes` in its
//! performance section.
//!
//! Usage: `flow_obs [--scale <f64>] [--seed <u64>] [--out <dir>]`.
//! The default scale is the CI smoke setting (0.02), smaller than the
//! other regeneration binaries: the gate needs a fast, exactly
//! reproducible datapoint, not a paper-scale one.

use hetero3d::cost::CostModel;
use hetero3d::flow::{try_compare_configs, try_find_fmax, try_run_flow, Config, FlowOptions};
use hetero3d::netgen::Benchmark;
use hetero3d::obs::{alloc, Manifest, Obs};
use std::fmt::Write as _;

#[global_allocator]
static ALLOC: hetero3d::obs::CountingAlloc = hetero3d::obs::CountingAlloc;

/// Runs `f` with the peak tracker restarted, then records the phase's
/// peak live heap and allocation churn on `obs`. Allocator traffic moves
/// with thread scheduling, so both land in the performance-only section
/// of the manifest — never the deterministic one.
fn with_alloc_gauges<T>(obs: &Obs, f: impl FnOnce() -> T) -> T {
    alloc::reset_peak();
    let churn0 = alloc::total_allocated_bytes();
    let out = f();
    obs.perf_add("alloc/peak_bytes", alloc::peak_bytes());
    obs.perf_add("alloc/churn_bytes", alloc::total_allocated_bytes() - churn0);
    out
}

fn instrumented(base: &FlowOptions, threads: usize) -> FlowOptions {
    FlowOptions {
        threads,
        obs: Obs::enabled(),
        ..base.clone()
    }
}

/// Splices a nested JSON document under `key`, indenting it two spaces.
fn push_nested(out: &mut String, key: &str, nested: &str, last: bool) {
    let _ = write!(out, "  \"{key}\": ");
    for (i, line) in nested.lines().enumerate() {
        if i > 0 {
            out.push_str("\n  ");
        }
        out.push_str(line);
    }
    out.push_str(if last { "\n" } else { ",\n" });
}

/// Sums every counter whose path ends in `flow/pseudo3d_runs`, across
/// all `cfg/<Config>` scopes. The checkpointing pipeline shares one
/// pseudo-3-D snapshot across every 3-D configuration of a
/// `compare_configs` run, so the sum must be exactly 1 — a value of 5
/// means each config silently recomputed its own prefix.
fn prefix_runs(manifest: &Manifest) -> u64 {
    manifest
        .counters
        .iter()
        .filter(|(k, _)| k == "flow/pseudo3d_runs" || k.ends_with("/flow/pseudo3d_runs"))
        .map(|&(_, v)| v)
        .sum()
}

fn main() {
    let mut args = m3d_bench::parse_args();
    if !std::env::args().any(|a| a == "--scale") {
        args.scale = 0.02;
    }
    let netlist = Benchmark::Aes.generate(args.scale, args.seed);
    let base = m3d_bench::bench_options();

    // The identity check: one worker vs four, same netlist, same knobs.
    let seq_options = instrumented(&base, 1);
    let par_options = instrumented(&base, 4);
    with_alloc_gauges(&seq_options.obs, || {
        try_run_flow(&netlist, Config::Hetero3d, 1.0, &seq_options).expect("flow")
    });
    with_alloc_gauges(&par_options.obs, || {
        try_run_flow(&netlist, Config::Hetero3d, 1.0, &par_options).expect("flow")
    });
    let seq = seq_options.obs.manifest();
    let par = par_options.obs.manifest();
    let identical = seq.deterministic_json() == par.deterministic_json();
    assert!(
        identical,
        "telemetry determinism violated: 1-thread and 4-thread manifests differ\n--- 1 thread ---\n{}\n--- 4 threads ---\n{}",
        seq.deterministic_json(),
        par.deterministic_json()
    );

    // Fmax sweep coverage: probe/rung/relaxed spans under one handle.
    let fmax_options = instrumented(&base, 0);
    let (fmax_ghz, _) =
        try_find_fmax(&netlist, Config::TwoD12T, &fmax_options, 1.0).expect("fmax sweep");
    let fmax = fmax_options.obs.manifest();

    // Prefix reuse: a five-config comparison must run the pseudo-3-D
    // stage exactly once (all 3-D configs fork from one checkpoint).
    let cmp_options = instrumented(&base, 0);
    let _ = try_compare_configs(&netlist, &cmp_options, &CostModel::default()).expect("comparison");
    let cmp = cmp_options.obs.manifest();
    let prefix_reuse = prefix_runs(&cmp);
    assert_eq!(
        prefix_reuse, 1,
        "compare_configs ran the pseudo-3-D stage {prefix_reuse} times; \
         the shared checkpoint should make it exactly 1"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"flow_obs\",");
    let _ = writeln!(
        json,
        "  \"scale\": {}, \"seed\": {}, \"threads\": {},",
        args.scale,
        args.seed,
        hetero3d::par::resolve(0)
    );
    let _ = writeln!(json, "  \"deterministic_identity\": {identical},");
    let _ = writeln!(json, "  \"fmax_ghz\": {fmax_ghz:.4},");
    let _ = writeln!(json, "  \"prefix_reuse\": {prefix_reuse},");
    push_nested(&mut json, "deterministic", &seq.deterministic_json(), false);
    push_nested(&mut json, "runtime_1t", &seq.json(), false);
    push_nested(&mut json, "runtime_4t", &par.json(), false);
    push_nested(&mut json, "fmax_sweep", &fmax.json(), false);
    push_nested(
        &mut json,
        "compare_configs",
        &cmp.deterministic_json(),
        true,
    );
    json.push_str("}\n");

    m3d_bench::emit(&args, "BENCH_flow.json", &json);
    let wall =
        |m: &hetero3d::obs::Manifest| m.span("run_flow").map_or(0, |s| s.wall_ns) as f64 / 1e6;
    println!(
        "flow_obs: deterministic sections bit-identical at 1 and 4 threads \
         ({} spans, {} counters) | run_flow {:.1} ms seq vs {:.1} ms par | fmax {:.3} GHz \
         | compare_configs pseudo3d runs = {prefix_reuse}",
        seq.spans.len(),
        seq.counters.len(),
        wall(&seq),
        wall(&par),
        fmax_ghz,
    );
}
