//! Regenerates Table V: the CPU design through the unmodified Pin-3-D flow
//! (min-cut partitioning only, tier-blind clock tree, no repartitioning)
//! versus the enhanced Hetero-Pin-3-D flow, at the same frequency.

use hetero3d::cost::CostModel;
use hetero3d::flow::{pin3d_baseline_comparison, try_find_fmax, Config};
use hetero3d::netgen::Benchmark;
use hetero3d::report::format_table5;
use m3d_bench::{bench_options, emit, parse_args};
use std::fmt::Write as _;

fn main() {
    let args = parse_args();
    let options = bench_options();
    let netlist = Benchmark::Cpu.generate(args.scale, args.seed);
    // The paper captured Table V at the CPU's iso-performance target,
    // where the unmodified flow misses timing badly; stretch the measured
    // 12T-2D fmax by 10 % to land in the same regime on the scaled design.
    let (fmax, _) = try_find_fmax(&netlist, Config::TwoD12T, &options, 1.0).expect("fmax sweep");
    let frequency = (fmax * 1.1 * 100.0).round() / 100.0;
    eprintln!("[12T-2D fmax {fmax:.2} GHz -> Table V target {frequency:.2} GHz]");
    let cmp = pin3d_baseline_comparison(&netlist, frequency, &options, &CostModel::default());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table V: Pin-3D baseline vs Hetero-Pin-3D (cpu, {} gates, {} GHz)\n",
        netlist.gate_count(),
        frequency
    );
    out.push_str(&format_table5(&cmp));
    let _ = writeln!(
        out,
        "\n(paper reference @1.2 GHz: WNS -0.489 -> -0.060 ns, power 224.1 -> 198.8 mW,\n WL ~unchanged; the enhanced flow recovers WNS and cuts power)"
    );
    emit(&args, "table5.txt", &out);
}
