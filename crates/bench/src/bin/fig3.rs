//! Regenerates Fig. 3: placement layouts of the CPU design in 9-track 2-D,
//! 12-track 2-D and heterogeneous 3-D (both tiers, visibly different cell
//! heights), as SVG files.

use hetero3d::flow::{try_run_flow, Config};
use hetero3d::netgen::Benchmark;
use hetero3d::report::{render_layout, LayerChoice};
use m3d_bench::{bench_options, emit, parse_args};

fn main() {
    let args = parse_args();
    let options = bench_options();
    let netlist = Benchmark::Cpu.generate(args.scale, args.seed);
    eprintln!("[cpu: {} gates]", netlist.gate_count());
    let frequency = 1.0;

    let imp_9t = try_run_flow(&netlist, Config::TwoD9T, frequency, &options).expect("flow");
    emit(
        &args,
        "fig3a_2d_9track.svg",
        &render_layout(&imp_9t, LayerChoice::Bottom, "(a) 2D 9-track cpu"),
    );
    let imp_12t = try_run_flow(&netlist, Config::TwoD12T, frequency, &options).expect("flow");
    emit(
        &args,
        "fig3b_2d_12track.svg",
        &render_layout(&imp_12t, LayerChoice::Bottom, "(b) 2D 12-track cpu"),
    );
    let imp_h = try_run_flow(&netlist, Config::Hetero3d, frequency, &options).expect("flow");
    emit(
        &args,
        "fig3c_hetero_both.svg",
        &render_layout(&imp_h, LayerChoice::Both, "(c) hetero 3D cpu (both tiers)"),
    );
    emit(
        &args,
        "fig3c_hetero_bottom.svg",
        &render_layout(
            &imp_h,
            LayerChoice::Bottom,
            "(c) hetero 3D cpu (12T bottom)",
        ),
    );
    emit(
        &args,
        "fig3c_hetero_top.svg",
        &render_layout(&imp_h, LayerChoice::Top, "(c) hetero 3D cpu (9T top)"),
    );
}
