//! Regenerates Table II: FO-4 boundary behavior with heterogeneity at the
//! driver *output* (Fig. 2a) — driver on one tier, four loads on the
//! other, simulated at transistor level.

use hetero3d::circuit::fo4;
use m3d_bench::{emit, parse_args};
use std::fmt::Write as _;

fn main() {
    let args = parse_args();
    let cases = fo4::table2_cases();
    let labels = ["Case-I", "Case-II", "Case-III", "Case-IV"];
    let tiers = [
        ("fast", "fast"),
        ("fast", "slow"),
        ("slow", "slow"),
        ("slow", "fast"),
    ];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table II: heterogeneity at the driver output (times ns, power uW)\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "", labels[0], labels[1], "d%", labels[2], labels[3], "d%"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "Driver", tiers[0].0, tiers[1].0, "", tiers[2].0, tiers[3].0, ""
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "Loads", tiers[0].1, tiers[1].1, "", tiers[2].1, tiers[3].1, ""
    );
    let d_12 = cases[1].percent_delta(&cases[0]);
    let d_34 = cases[3].percent_delta(&cases[2]);
    type MetricOf = fn(&fo4::Fo4Measurement) -> f64;
    let rows: [(&str, MetricOf, usize, f64); 6] = [
        ("Rise Slew", |m| m.rise_slew_ns * 1e3, 0, 1.0),
        ("Fall Slew", |m| m.fall_slew_ns * 1e3, 1, 1.0),
        ("Rise Del.", |m| m.rise_delay_ns * 1e3, 2, 1.0),
        ("Fall Del.", |m| m.fall_delay_ns * 1e3, 3, 1.0),
        ("Lkg. Pow.", |m| m.leakage_uw, 4, 1.0),
        ("Total Pow.", |m| m.total_power_uw, 5, 1.0),
    ];
    for (name, get, di, _) in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>10.3} {:>10.3} {:>+8.1} {:>10.3} {:>10.3} {:>+8.1}",
            name,
            get(&cases[0]),
            get(&cases[1]),
            d_12[di],
            get(&cases[2]),
            get(&cases[3]),
            d_34[di]
        );
    }
    let _ = writeln!(
        out,
        "\n(times in ps for slews/delays; paper reference deltas: slews within ±15%,\n fast->slow negative, slow->fast positive)"
    );
    emit(&args, "table2.txt", &out);
}
