//! Regenerates Table VIII: clock-network, critical-path and memory-
//! interconnect deep dives of the CPU design in three implementations —
//! best 2-D (12-track), best homogeneous 3-D (12-track), heterogeneous 3-D.
//!
//! Note: the paper's column header says "9-track 2D" but its Section IV-C
//! text describes the *best 2-D implementation (12-track)*; we emit both
//! 2-D flavors so either reading can be checked.

use hetero3d::cost::CostModel;
use hetero3d::flow::{try_find_fmax, try_run_flow, Config};
use hetero3d::netgen::Benchmark;
use hetero3d::report::{deep_dive, format_deep_dive};
use m3d_bench::{bench_options, emit, parse_args};
use std::fmt::Write as _;

fn main() {
    let args = parse_args();
    let options = bench_options();
    let netlist = Benchmark::Cpu.generate(args.scale, args.seed);
    eprintln!("[cpu: {} gates]", netlist.gate_count());
    let (target, base) =
        try_find_fmax(&netlist, Config::TwoD12T, &options, 1.0).expect("fmax sweep");
    eprintln!("[12T-2D fmax {target:.2} GHz]");

    let imp_9t2d = try_run_flow(&netlist, Config::TwoD9T, target, &options).expect("flow");
    let imp_12t3d = try_run_flow(&netlist, Config::ThreeD12T, target, &options).expect("flow");
    let imp_hetero = try_run_flow(&netlist, Config::Hetero3d, target, &options).expect("flow");
    let _ = base.ppac(&CostModel::default());

    let dives = [
        deep_dive(&base),
        deep_dive(&imp_9t2d),
        deep_dive(&imp_12t3d),
        deep_dive(&imp_hetero),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table VIII: clock / critical path / memory interconnect (cpu @ {target:.2} GHz)\n"
    );
    out.push_str(&format_deep_dive(
        &["12T 2D", "9T 2D", "12T 3D", "Hetero 3D"],
        &[&dives[0], &dives[1], &dives[2], &dives[3]],
    ));
    let _ = writeln!(
        out,
        "\n(paper shapes: hetero clock is top-tier-heavy with smaller buffer area but\n larger max latency/skew; critical path has few top-tier cells whose average\n stage delay is ~2x the bottom tier's; memory net latency smallest in hetero)"
    );
    emit(&args, "table8.txt", &out);
}
