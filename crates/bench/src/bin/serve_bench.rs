//! Service benchmark emitting `results/BENCH_serve.json`: runs a mixed
//! design-space workload through an in-process [`m3d_serve::Server`] at
//! one and four workers and records the checkpoint-cache economics.
//!
//! The deterministic section is the point. The workload spreads
//! `requests` queries over `keys` distinct `(netlist, options)` cache
//! keys, so regardless of worker scheduling:
//!
//! * `cache_misses == keys` — the cache builds exactly one session per
//!   distinct key (racing requests share the in-flight build);
//! * `pseudo3d_runs == keys` — every key sees at least one 3-D command,
//!   and the shared checkpoint makes the pseudo-3-D stage run exactly
//!   once per session, never once per request;
//! * `identical_across_workers` — the semantic response set (ids,
//!   statuses, reports) at four workers is byte-identical to one
//!   worker. The per-response `cache_hit` bit is excluded from this
//!   fingerprint for *concurrently submitted* workloads: which of
//!   several racing requests on one key builds the session (a miss)
//!   and which share it (hits) is scheduling-dependent, even though
//!   the session — and every report — is not. The aggregate hit/miss
//!   counts stay exactly gated.
//!
//! Wall-clock fields (`wall_ms_*`) are informational only; `bench_gate`
//! checks the deterministic fields exactly and floors the hit rate.
//!
//! A **warm-restart** phase measures the persistent store: the
//! workload runs once against a store-backed server (populating the
//! store), then again on a *fresh* server over the same store
//! directory — simulating a daemon restart. Deterministically:
//! `warm_store_hits == keys` (every distinct key rehydrates from
//! disk), `warm_pseudo3d_runs == 0` (the restarted server never
//! re-runs the expensive stage) and `warm_identical_to_cold` (the
//! rendered responses match byte for byte).
//!
//! A **decode-churn** phase installs [`CountingAlloc`] and replays the
//! workload's own wire lines through both request-decode paths: the
//! legacy owned tree (`parse` + `FromJson`, every object key and string
//! a fresh `String`) versus the borrowed zero-copy path the TCP front
//! actually runs ([`m3d_serve::decode_request`]). The per-decode churn
//! of each lands in `decode_churn_*_bytes`; the gate floors the ratio.
//!
//! A **connection-scaling** phase exercises the event-driven TCP front
//! end to end: at one and four workers it serves the workload over a
//! single reused [`Client`] connection, measures the p99 of a probe
//! request stream with no other connections, then parks
//! `conn_idle_connections` idle sockets on the reactor and measures the
//! same stream again. The reactor multiplexes every socket over one
//! poller per shard, so the idle herd must not move the active path:
//! the gate ceilings `conn_p99_ratio_*` and requires the served
//! responses byte-identical across worker counts *and* to the
//! in-process engine.
//!
//! A **streaming-sweep** phase runs a protocol-v2 design-space sweep
//! (configs × stacking × corners × frequencies) through the engine at
//! one and four workers. Deterministically: `sweep_points` points all
//! stream, `sweep_pseudo3d_runs == sweep_scenarios` (one shared
//! checkpoint per technology scenario, never per grid point),
//! `sweep_quota_deferred == points - cap` (fairness admission is
//! scheduling-independent for a lone sweep), and the streamed reports
//! are byte-identical to the sweep's own v1 single-shot decomposition
//! (`sweep_identical_to_v1`) and across worker counts
//! (`sweep_identical_across_workers`).
//!
//! A **fairness** phase proves the per-client in-flight cap keeps the
//! interactive path usable: with a 64-point sweep streaming on one TCP
//! connection, a second connection's probe p99 is sampled and compared
//! against its sweep-free baseline. The cap (2, below the worker
//! count) means a sweep can never occupy the whole pool, so the probe
//! only pays CPU sharing — a few probe-times — instead of queueing
//! behind the sweep's 60+ remaining points (hundreds of milliseconds).
//! The gate ceilings `fair_p99_ratio` and exact-checks
//! `fair_quota_deferred`.
//!
//! A **router** phase stands the consistent-hash shard router in front
//! of one and four fresh backend services and replays the workload
//! line-by-line: `router_identical` requires the routed response bytes
//! equal a direct single-server connection at both shard counts, and
//! `router_single_build` requires the cluster-wide cache-miss total to
//! equal `distinct_keys` — every checkpoint key built on exactly one
//! shard.
//!
//! Usage: `serve_bench [--scale <f64>] [--seed <u64>] [--out <dir>]`.
//! The default scale is the CI smoke setting (0.02).
//!
//! [`CountingAlloc`]: hetero3d::obs::CountingAlloc

use hetero3d::flow::{Config, FlowCommand, FlowRequest, NetlistSpec, Proto, SweepSpec};
use hetero3d::netgen::Benchmark;
use hetero3d::obs::{alloc, Obs};
use hetero3d::tech::{Corner, StackingStyle};
use m3d_serve::{
    raise_nofile_limit, Client, Pending, Response, Router, RouterConfig, Server, ServerConfig,
    ServerMessage, StatsSnapshot, Store, StreamEvent, TcpServer,
};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[global_allocator]
static ALLOC: hetero3d::obs::CountingAlloc = hetero3d::obs::CountingAlloc;

/// Distinct cache keys in the workload (option variants of one netlist).
const KEYS: usize = 2;

/// Idle connections parked on the reactor during the scaling phase.
const IDLE_CONNS: usize = 1000;

/// Timed probe calls per p99 sample set in the scaling phase. At 120
/// samples the p99 is the third-largest observation, which smooths the
/// single-outlier jitter a shared CI runner injects.
const CONN_SAMPLES: usize = 120;

/// Untimed probe calls that warm the connection before sampling.
const CONN_WARMUP: usize = 5;

/// Rounds of the decode-churn loop (each round decodes every workload
/// line once on each path).
const CHURN_ROUNDS: u64 = 64;

/// The workload: every command kind, every key, with repeats. Each key
/// gets 3-D work (pseudo-3-D checkpoint demand) and repeated queries
/// (cache-hit demand).
fn workload(scale: f64, seed: u64) -> Vec<FlowRequest> {
    let netlist = NetlistSpec {
        benchmark: Benchmark::Aes,
        scale,
        seed,
    };
    let variant = |k: usize| {
        let mut o = m3d_bench::bench_options();
        o.placer_mut().iterations = 10 + k;
        o
    };
    let run = |config, frequency_ghz| FlowCommand::RunFlow {
        config,
        frequency_ghz,
    };
    let commands = [
        run(Config::Hetero3d, 1.0),
        run(Config::TwoD12T, 1.0),
        run(Config::ThreeD9T, 0.9),
        FlowCommand::FindFmax {
            config: Config::Hetero3d,
            start_ghz: 1.0,
        },
        run(Config::Hetero3d, 1.0), // exact repeat of the first query
    ];
    let mut out = Vec::new();
    for key in 0..KEYS {
        for command in &commands {
            out.push(FlowRequest {
                id: out.len() as u64,
                netlist,
                options: variant(key),
                command: command.clone(),
                deadline_ms: None,
                proto: Proto::V1,
            });
        }
    }
    out
}

/// Renders a response with the `cache_hit` telemetry bit normalized
/// away: under concurrent submission, which racing request is charged
/// the miss is scheduling-dependent, so the identity fingerprint
/// compares only the semantic payload (id, status, report).
fn semantic_fingerprint(response: &Response) -> String {
    use hetero3d::json::ToJson;
    match response {
        Response::Ok { id, report, .. } => Response::Ok {
            id: *id,
            cache_hit: false,
            report: report.clone(),
        }
        .to_json()
        .render(),
        rejected => rejected.to_json().render(),
    }
}

struct Run {
    stats: StatsSnapshot,
    pseudo3d_runs: u64,
    /// Normalized response lines in id order — the identity fingerprint
    /// for concurrently submitted runs (see [`semantic_fingerprint`]).
    semantic: Vec<String>,
    wall_ms: f64,
}

fn run_workload(requests: &[FlowRequest], workers: usize, store: Option<Arc<Store>>) -> Run {
    let obs = Obs::enabled();
    let server = Server::start(ServerConfig {
        workers,
        queue_depth: requests.len().max(1),
        cache_capacity: KEYS + 2,
        obs: obs.clone(),
        store,
        sweep_inflight_cap: 4,
    });
    let started = Instant::now();
    let pending: Vec<Pending> = requests.iter().map(|r| server.submit(r.clone())).collect();
    let mut responses: Vec<Response> = pending.into_iter().map(Pending::wait).collect();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    responses.sort_by_key(|r| r.id());
    let semantic = responses.iter().map(semantic_fingerprint).collect();
    let stats = server.shutdown();
    Run {
        stats,
        pseudo3d_runs: obs.manifest().counter("flow/pseudo3d_runs").unwrap_or(0),
        semantic,
        wall_ms,
    }
}

/// Per-decode allocation churn of the owned versus borrowed request
/// decode, over the workload's own wire lines. Runs single-threaded
/// before any server exists, so the process allocator counters see only
/// this loop; still a wall-adjacent measurement, so the gate checks the
/// ratio against a floor rather than the bytes against the baseline.
fn decode_churn(requests: &[FlowRequest]) -> (u64, u64) {
    use hetero3d::json::{parse, Cur, FromJson};
    let lines: Vec<String> = requests.iter().map(m3d_serve::encode_line).collect();
    let decodes = CHURN_ROUNDS * lines.len() as u64;
    let owned = {
        let start = alloc::total_allocated_bytes();
        for _ in 0..CHURN_ROUNDS {
            for line in &lines {
                let doc = parse(line.trim()).expect("workload line parses");
                let req = FlowRequest::from_json(Cur::root(&doc)).expect("workload line decodes");
                assert!(req.id < requests.len() as u64);
            }
        }
        alloc::total_allocated_bytes() - start
    };
    let borrowed = {
        let start = alloc::total_allocated_bytes();
        for _ in 0..CHURN_ROUNDS {
            for line in &lines {
                let req = m3d_serve::decode_request(line.trim()).expect("workload line decodes");
                assert!(req.id < requests.len() as u64);
            }
        }
        alloc::total_allocated_bytes() - start
    };
    (owned / decodes, borrowed / decodes)
}

struct ConnScale {
    p99_idle_free_ms: f64,
    p99_with_idle_ms: f64,
    /// Full rendered workload responses served over TCP, in id order.
    /// Sequential calls make even the `cache_hit` bit deterministic, so
    /// across-worker identity here is raw byte identity.
    rendered: Vec<String>,
    /// The same responses normalized (for comparison against the
    /// concurrently submitted in-process runs).
    semantic: Vec<String>,
}

impl ConnScale {
    fn ratio(&self) -> f64 {
        self.p99_with_idle_ms / self.p99_idle_free_ms.max(f64::EPSILON)
    }
}

fn p99_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[(samples.len() - 1) * 99 / 100]
}

fn timed_calls(client: &mut Client, probe: &FlowRequest, n: usize) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let started = Instant::now();
            let response = client.call(probe).expect("probe call");
            assert!(response.is_ok(), "probe rejected: {response:?}");
            started.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

/// The connection-scaling phase at one worker count: serve the workload
/// and two probe sample sets over a **single reused client connection**
/// (the active stream never reconnects per request), parking
/// [`IDLE_CONNS`] idle sockets on the reactor between the sample sets.
fn conn_scale(requests: &[FlowRequest], workers: usize) -> ConnScale {
    use hetero3d::json::ToJson;
    let limit = raise_nofile_limit((IDLE_CONNS + 512) as u64);
    assert!(
        limit >= (IDLE_CONNS + 64) as u64,
        "cannot raise the open-file limit past {limit} — too low for {IDLE_CONNS} idle sockets"
    );
    let obs = Obs::enabled();
    let server = TcpServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            queue_depth: requests.len().max(16),
            cache_capacity: KEYS + 2,
            obs: obs.clone(),
            store: None,
            sweep_inflight_cap: 4,
        },
    )
    .expect("bind conn-scale server");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    let responses: Vec<Response> = requests
        .iter()
        .map(|r| client.call(r).expect("workload call"))
        .collect();
    let rendered: Vec<String> = responses.iter().map(|r| r.to_json().render()).collect();
    let semantic: Vec<String> = responses.iter().map(semantic_fingerprint).collect();

    // The probe is the workload's final request: a cache-hit RunFlow,
    // the steady-state shape of a design-space sweep.
    let probe = requests.last().expect("non-empty workload");
    timed_calls(&mut client, probe, CONN_WARMUP);
    let mut base = timed_calls(&mut client, probe, CONN_SAMPLES);
    let p99_idle_free_ms = p99_ms(&mut base);

    let idle: Vec<TcpStream> = (0..IDLE_CONNS)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle connect {i}: {e}")))
        .collect();
    // Wait until the reactor has accepted and registered the whole herd,
    // so the loaded sample set really runs against IDLE_CONNS sockets.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let accepted = obs
            .manifest()
            .perf
            .iter()
            .find(|(n, _)| n == "serve/conns_accepted")
            .map_or(0, |(_, v)| *v);
        if accepted >= (IDLE_CONNS + 1) as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "reactor accepted only {accepted} of {} connections",
            IDLE_CONNS + 1
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    timed_calls(&mut client, probe, CONN_WARMUP);
    let mut loaded = timed_calls(&mut client, probe, CONN_SAMPLES);
    let p99_with_idle_ms = p99_ms(&mut loaded);

    drop(idle);
    drop(client);
    let stats = server.shutdown();
    assert_eq!(
        stats.completed_ok,
        (requests.len() + 2 * (CONN_WARMUP + CONN_SAMPLES)) as u64,
        "every served call completes"
    );
    assert_eq!(
        stats.rejected_protocol, 0,
        "the phase sends only valid lines"
    );
    assert_eq!(
        stats.cache_misses, KEYS as u64,
        "a sequential stream misses exactly once per distinct key"
    );
    ConnScale {
        p99_idle_free_ms,
        p99_with_idle_ms,
        rendered,
        semantic,
    }
}

/// Technology scenarios (stacking × corner) in the streaming-sweep
/// phase's grid.
const SWEEP_SCENARIOS: u64 = 2;

/// Per-client in-flight cap in the fairness phase: below the worker
/// count, so a sweeping client can never occupy the whole pool.
const FAIR_CAP: usize = 2;

/// Sweep-free probe samples establishing the fairness baseline p99.
const FAIR_FREE_SAMPLES: usize = 40;

/// Minimum probe samples taken while the 64-point sweep streams; the
/// loop keeps sampling until the sweep finishes, so the real count is
/// usually higher.
const FAIR_MIN_DURING_SAMPLES: usize = 30;

/// The v2 sweep the streaming phase measures: [`SWEEP_SCENARIOS`]
/// technology scenarios (both stacking styles at the typical corner)
/// × 2 configurations × 2 frequencies = 8 points over the workload's
/// first cache key.
fn sweep_request(scale: f64, seed: u64) -> FlowRequest {
    let mut options = m3d_bench::bench_options();
    options.placer_mut().iterations = 10;
    FlowRequest {
        id: 1000,
        netlist: NetlistSpec {
            benchmark: Benchmark::Aes,
            scale,
            seed,
        },
        options,
        command: FlowCommand::Sweep {
            spec: SweepSpec {
                configs: vec![Config::Hetero3d, Config::TwoD12T],
                stacking: StackingStyle::ALL.to_vec(),
                corners: vec![Corner::Typical],
                freq_min_ghz: 0.9,
                freq_max_ghz: 1.1,
                freq_steps: 2,
            },
        },
        deadline_ms: None,
        proto: Proto::V2,
    }
}

struct SweepRun {
    /// Point report renders in grid (index) order.
    renders: Vec<String>,
    pseudo3d: u64,
    deferred: u64,
    points: u64,
}

fn run_sweep(request: &FlowRequest, workers: usize) -> SweepRun {
    use hetero3d::json::ToJson;
    let obs = Obs::enabled();
    let server = Server::start(ServerConfig {
        workers,
        queue_depth: 16,
        cache_capacity: KEYS + 4,
        obs: obs.clone(),
        store: None,
        sweep_inflight_cap: 4,
    });
    let messages = server.submit_stream(request.clone()).wait();
    let mut points: Vec<(u64, String)> = Vec::new();
    for message in &messages {
        match message {
            ServerMessage::Event(StreamEvent::Point { index, report, .. }) => {
                points.push((*index, report.to_json().render()));
            }
            ServerMessage::Event(StreamEvent::Error { index, message, .. }) => {
                panic!("sweep point {index} failed: {message}");
            }
            _ => {}
        }
    }
    points.sort_by_key(|(index, _)| *index);
    let stats = server.shutdown();
    assert_eq!(stats.sweep_point_errors, 0, "no sweep point may fail");
    SweepRun {
        renders: points.into_iter().map(|(_, render)| render).collect(),
        pseudo3d: obs.manifest().counter("flow/pseudo3d_runs").unwrap_or(0),
        deferred: stats.quota_deferred,
        points: stats.sweep_points,
    }
}

/// The sweep's own v1 decomposition, served sequentially as ordinary
/// single-shot requests — the equivalence baseline for the stream.
fn v1_singles(points: &[FlowRequest]) -> Vec<String> {
    use hetero3d::json::ToJson;
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_depth: 16,
        cache_capacity: KEYS + 4,
        obs: Obs::enabled(),
        store: None,
        sweep_inflight_cap: 4,
    });
    let renders = points
        .iter()
        .map(|p| match server.submit(p.clone()).wait() {
            Response::Ok { report, .. } => report.to_json().render(),
            rejected => panic!("v1 single rejected: {rejected:?}"),
        })
        .collect();
    let _ = server.shutdown();
    renders
}

/// The fairness phase's 64-point sweep: 4 technology scenarios × 2
/// configurations × 8 frequencies, all on one client connection.
fn fair_sweep(scale: f64, seed: u64) -> FlowRequest {
    let mut request = sweep_request(scale, seed);
    request.id = 2000;
    request.command = FlowCommand::Sweep {
        spec: SweepSpec {
            configs: vec![Config::Hetero3d, Config::TwoD12T],
            stacking: StackingStyle::ALL.to_vec(),
            corners: vec![Corner::Typical, Corner::Slow],
            freq_min_ghz: 0.8,
            freq_max_ghz: 1.2,
            freq_steps: 8,
        },
    };
    request
}

struct Fair {
    p99_free_ms: f64,
    p99_during_ms: f64,
    points: u64,
    deferred: u64,
    samples: usize,
}

impl Fair {
    fn ratio(&self) -> f64 {
        self.p99_during_ms / self.p99_free_ms.max(f64::EPSILON)
    }
}

/// Fairness under a streaming sweep: probe p99 on an interactive
/// connection, with and without a 64-point sweep saturating a second
/// connection. [`FAIR_CAP`] keeps at most 2 of the 4 workers on sweep
/// points, so the probe never queues behind the sweep's tail.
fn fairness(requests: &[FlowRequest], scale: f64, seed: u64) -> Fair {
    let server = TcpServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            queue_depth: 32,
            cache_capacity: 8,
            obs: Obs::enabled(),
            store: None,
            sweep_inflight_cap: FAIR_CAP,
        },
    )
    .expect("bind fairness server");
    let addr = server.local_addr();
    let probe = requests.last().expect("non-empty workload");
    let mut interactive = Client::connect(addr).expect("connect interactive");
    timed_calls(&mut interactive, probe, CONN_WARMUP);
    let mut free = timed_calls(&mut interactive, probe, FAIR_FREE_SAMPLES);
    let p99_free_ms = p99_ms(&mut free);

    // The sweep streams on its own raw connection; a thread drains it
    // so backpressure never throttles the point pipeline.
    let sweep = fair_sweep(scale, seed);
    let stream = TcpStream::connect(addr).expect("connect sweep conn");
    let mut writer = stream.try_clone().expect("clone sweep conn");
    writer
        .write_all(m3d_serve::encode_line(&sweep).as_bytes())
        .expect("send sweep");
    writer.flush().expect("flush sweep");
    let done = Arc::new(AtomicBool::new(false));
    let drain = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            loop {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    break;
                }
                if line.contains("\"event\":\"done\"") {
                    break;
                }
            }
            done.store(true, Ordering::Release);
        })
    };
    // Only sample once the sweep is really admitted.
    let engine = server.server().clone();
    let deadline = Instant::now() + Duration::from_secs(60);
    while engine.stats().sweeps == 0 {
        assert!(Instant::now() < deadline, "sweep never admitted");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut during = Vec::new();
    while !done.load(Ordering::Acquire) || during.len() < FAIR_MIN_DURING_SAMPLES {
        during.extend(timed_calls(&mut interactive, probe, 1));
    }
    drain.join().expect("join sweep drain");
    let samples = during.len();
    let p99_during_ms = p99_ms(&mut during);
    drop(interactive);
    let stats = server.shutdown();
    assert_eq!(stats.sweeps, 1, "exactly one sweep ran");
    assert_eq!(stats.sweep_point_errors, 0, "no sweep point may fail");
    assert_eq!(
        stats.sweep_cancelled_points, 0,
        "the drained sweep runs to completion"
    );
    Fair {
        p99_free_ms,
        p99_during_ms,
        points: stats.sweep_points,
        deferred: stats.quota_deferred,
        samples,
    }
}

struct RouterPhase {
    identical: bool,
    single_build: bool,
    distinct_keys: u64,
    pseudo3d: u64,
    shards: u64,
}

/// The shard-router phase: the workload's exact wire lines through a
/// direct server, a 1-shard router and a 4-shard router (fresh
/// backends each), compared byte for byte.
fn router_phase(requests: &[FlowRequest]) -> RouterPhase {
    let lines: Vec<String> = requests.iter().map(m3d_serve::encode_line).collect();
    let serve = |addr: SocketAddr| -> Vec<String> {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        lines
            .iter()
            .map(|line| {
                writer.write_all(line.as_bytes()).expect("send");
                writer.flush().expect("flush");
                let mut response = String::new();
                let n = reader.read_line(&mut response).expect("recv");
                assert!(n > 0, "peer hung up mid-workload");
                response
            })
            .collect()
    };
    let backend_config = |obs: &Obs| ServerConfig {
        workers: 1,
        queue_depth: requests.len().max(1),
        cache_capacity: KEYS + 2,
        obs: obs.clone(),
        store: None,
        sweep_inflight_cap: 4,
    };

    let direct_server =
        TcpServer::bind("127.0.0.1:0", backend_config(&Obs::enabled())).expect("bind direct");
    let direct = serve(direct_server.local_addr());
    let direct_stats = direct_server.shutdown();
    assert_eq!(direct_stats.cache_misses, KEYS as u64);

    let cluster = |shards: usize| -> (Vec<String>, u64, u64) {
        let obses: Vec<Obs> = (0..shards).map(|_| Obs::enabled()).collect();
        let backends: Vec<TcpServer> = obses
            .iter()
            .map(|o| TcpServer::bind("127.0.0.1:0", backend_config(o)).expect("bind backend"))
            .collect();
        let router = Router::bind(
            "127.0.0.1:0",
            RouterConfig::new(backends.iter().map(TcpServer::local_addr).collect()),
        )
        .expect("bind router");
        let served = serve(router.local_addr());
        let router_stats = router.shutdown();
        assert_eq!(router_stats.relayed, requests.len() as u64);
        let mut misses = 0;
        let mut pseudo3d = 0;
        for (backend, obs) in backends.into_iter().zip(&obses) {
            misses += backend.shutdown().cache_misses;
            pseudo3d += obs.manifest().counter("flow/pseudo3d_runs").unwrap_or(0);
        }
        (served, misses, pseudo3d)
    };
    let (routed1, misses1, _) = cluster(1);
    let (routed4, misses4, pseudo4) = cluster(4);
    assert_eq!(
        misses1, KEYS as u64,
        "a 1-shard cluster builds each key once"
    );
    RouterPhase {
        identical: direct == routed1 && direct == routed4,
        single_build: misses4 == KEYS as u64,
        distinct_keys: KEYS as u64,
        pseudo3d: pseudo4,
        shards: 4,
    }
}

fn main() {
    let mut args = m3d_bench::parse_args();
    if !std::env::args().any(|a| a == "--scale") {
        args.scale = 0.02;
    }
    let requests = workload(args.scale, args.seed);

    // Decode-churn first: single-threaded, before any worker pool or
    // reactor thread can contribute allocator traffic.
    let (churn_owned, churn_borrowed) = decode_churn(&requests);
    assert!(
        churn_borrowed < churn_owned,
        "borrowed decode ({churn_borrowed} B) must churn strictly less than owned ({churn_owned} B)"
    );
    let churn_ratio = churn_owned as f64 / churn_borrowed.max(1) as f64;

    // Cold baseline for the reuse story: the same workload with a
    // cache too small to ever hit (every request rebuilds its session).
    let cold = {
        use hetero3d::json::ToJson;
        let started = Instant::now();
        let mut rendered = Vec::new();
        for r in &requests {
            let session = hetero3d::flow::FlowSession::builder(&r.netlist.materialize())
                .options(r.options.clone())
                .build()
                .expect("valid workload");
            let report = session.execute(&r.command).expect("flow");
            rendered.push(report.to_json().render());
        }
        (started.elapsed().as_secs_f64() * 1e3, rendered)
    };

    let seq = run_workload(&requests, 1, None);
    let par = run_workload(&requests, 4, None);
    let identical = seq.semantic == par.semantic;
    assert!(
        identical,
        "serve determinism violated: 1-worker and 4-worker response sets differ"
    );
    assert_eq!(
        seq.stats.completed_ok,
        requests.len() as u64,
        "every request must complete"
    );

    // Warm-restart economics: populate a persistent store through one
    // store-backed server, then replay the workload on a fresh server
    // (fresh cache, fresh telemetry) over the same directory — the
    // restart a long-running daemon would go through.
    let store_dir = std::env::temp_dir().join(format!("m3d-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let populate = run_workload(
        &requests,
        2,
        Some(Arc::new(Store::open(&store_dir).expect("open store"))),
    );
    assert_eq!(
        populate.semantic, seq.semantic,
        "store tier changed answers"
    );
    let warm = run_workload(
        &requests,
        2,
        Some(Arc::new(Store::open(&store_dir).expect("reopen store"))),
    );
    let warm_identical = warm.semantic == seq.semantic;
    assert!(
        warm_identical,
        "warm restart changed answers: disk-rehydrated sessions must be bit-identical"
    );
    let _ = std::fs::remove_dir_all(&store_dir);

    // Connection scaling over the event-driven TCP front, one worker
    // then four, each lane serving on one reused connection.
    let conn_1w = conn_scale(&requests, 1);
    let conn_4w = conn_scale(&requests, 4);
    // Sequential TCP lanes are deterministic down to the cache_hit bit:
    // raw byte identity across worker counts.
    let conn_identical = conn_1w.rendered == conn_4w.rendered;
    assert!(
        conn_identical,
        "TCP determinism violated: 1-worker and 4-worker served responses differ"
    );
    let conn_engine = conn_1w.semantic == seq.semantic;
    assert!(
        conn_engine,
        "the TCP front changed answers relative to the in-process engine"
    );

    // Streaming sweep: the v2 protocol's semantic contract, at one and
    // four workers, against the sweep's own v1 decomposition.
    let sweep_req = sweep_request(args.scale, args.seed);
    let sweep_singles = sweep_req.decompose_sweep().expect("sweep decomposes");
    let sweep_1w = run_sweep(&sweep_req, 1);
    let sweep_4w = run_sweep(&sweep_req, 4);
    let sweep_identical_to_v1 = sweep_1w.renders == v1_singles(&sweep_singles);
    assert!(
        sweep_identical_to_v1,
        "streamed sweep points diverged from the v1 single-shot sequence"
    );
    let sweep_identical_across_workers = sweep_1w.renders == sweep_4w.renders;
    assert!(
        sweep_identical_across_workers,
        "sweep determinism violated: 1-worker and 4-worker streams differ"
    );
    assert_eq!(
        sweep_1w.points,
        sweep_singles.len() as u64,
        "every grid point must stream"
    );
    assert_eq!(
        (sweep_1w.pseudo3d, sweep_4w.pseudo3d),
        (SWEEP_SCENARIOS, SWEEP_SCENARIOS),
        "the pseudo-3-D stage must run once per technology scenario"
    );
    assert_eq!(
        sweep_1w.deferred, sweep_4w.deferred,
        "quota deferral is scheduling-independent for a lone sweep"
    );

    // Fairness under a 64-point sweep, then the shard router.
    let fair = fairness(&requests, args.scale, args.seed);
    let router = router_phase(&requests);
    assert!(
        router.identical,
        "routed responses diverged from the direct server"
    );
    assert!(
        router.single_build,
        "a 4-shard cluster rebuilt a checkpoint key on more than one shard"
    );

    let hit_rate = seq.stats.cache_hits as f64 / requests.len() as f64;
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve_bench\",");
    let _ = writeln!(
        json,
        "  \"scale\": {}, \"seed\": {},",
        args.scale, args.seed
    );
    let _ = writeln!(json, "  \"requests\": {},", requests.len());
    let _ = writeln!(json, "  \"distinct_keys\": {KEYS},");
    let _ = writeln!(json, "  \"completed_ok\": {},", seq.stats.completed_ok);
    let _ = writeln!(json, "  \"cache_hits\": {},", seq.stats.cache_hits);
    let _ = writeln!(json, "  \"cache_misses\": {},", seq.stats.cache_misses);
    let _ = writeln!(json, "  \"hit_rate\": {hit_rate:.4},");
    let _ = writeln!(json, "  \"pseudo3d_runs\": {},", seq.pseudo3d_runs);
    let _ = writeln!(json, "  \"identical_across_workers\": {identical},");
    let _ = writeln!(json, "  \"warm_store_hits\": {},", warm.stats.store_hits);
    let _ = writeln!(json, "  \"warm_pseudo3d_runs\": {},", warm.pseudo3d_runs);
    let _ = writeln!(json, "  \"warm_identical_to_cold\": {warm_identical},");
    let _ = writeln!(json, "  \"decode_churn_owned_bytes\": {churn_owned},");
    let _ = writeln!(json, "  \"decode_churn_borrowed_bytes\": {churn_borrowed},");
    let _ = writeln!(json, "  \"decode_churn_ratio\": {churn_ratio:.2},");
    let _ = writeln!(json, "  \"conn_idle_connections\": {IDLE_CONNS},");
    let _ = writeln!(json, "  \"conn_samples\": {CONN_SAMPLES},");
    let _ = writeln!(
        json,
        "  \"conn_identical_across_workers\": {conn_identical},"
    );
    let _ = writeln!(json, "  \"conn_identical_to_engine\": {conn_engine},");
    let _ = writeln!(
        json,
        "  \"conn_p99_idle_free_ms_1w\": {:.3},",
        conn_1w.p99_idle_free_ms
    );
    let _ = writeln!(
        json,
        "  \"conn_p99_with_idle_ms_1w\": {:.3},",
        conn_1w.p99_with_idle_ms
    );
    let _ = writeln!(json, "  \"conn_p99_ratio_1w\": {:.3},", conn_1w.ratio());
    let _ = writeln!(
        json,
        "  \"conn_p99_idle_free_ms_4w\": {:.3},",
        conn_4w.p99_idle_free_ms
    );
    let _ = writeln!(
        json,
        "  \"conn_p99_with_idle_ms_4w\": {:.3},",
        conn_4w.p99_with_idle_ms
    );
    let _ = writeln!(json, "  \"conn_p99_ratio_4w\": {:.3},", conn_4w.ratio());
    let _ = writeln!(json, "  \"sweep_points\": {},", sweep_1w.points);
    let _ = writeln!(json, "  \"sweep_scenarios\": {SWEEP_SCENARIOS},");
    let _ = writeln!(json, "  \"sweep_pseudo3d_runs\": {},", sweep_1w.pseudo3d);
    let _ = writeln!(json, "  \"sweep_quota_deferred\": {},", sweep_1w.deferred);
    let _ = writeln!(
        json,
        "  \"sweep_identical_to_v1\": {sweep_identical_to_v1},"
    );
    let _ = writeln!(
        json,
        "  \"sweep_identical_across_workers\": {sweep_identical_across_workers},"
    );
    let _ = writeln!(json, "  \"fair_inflight_cap\": {FAIR_CAP},");
    let _ = writeln!(json, "  \"fair_sweep_points\": {},", fair.points);
    let _ = writeln!(json, "  \"fair_quota_deferred\": {},", fair.deferred);
    let _ = writeln!(json, "  \"fair_probe_samples\": {},", fair.samples);
    let _ = writeln!(json, "  \"fair_p99_free_ms\": {:.3},", fair.p99_free_ms);
    let _ = writeln!(
        json,
        "  \"fair_p99_during_sweep_ms\": {:.3},",
        fair.p99_during_ms
    );
    let _ = writeln!(json, "  \"fair_p99_ratio\": {:.3},", fair.ratio());
    let _ = writeln!(json, "  \"router_shards\": {},", router.shards);
    let _ = writeln!(
        json,
        "  \"router_distinct_keys\": {},",
        router.distinct_keys
    );
    let _ = writeln!(json, "  \"router_pseudo3d_runs\": {},", router.pseudo3d);
    let _ = writeln!(json, "  \"router_identical\": {},", router.identical);
    let _ = writeln!(json, "  \"router_single_build\": {},", router.single_build);
    let _ = writeln!(json, "  \"wall_ms_cold\": {:.1},", cold.0);
    let _ = writeln!(json, "  \"wall_ms_served_1w\": {:.1},", seq.wall_ms);
    let _ = writeln!(json, "  \"wall_ms_served_4w\": {:.1},", par.wall_ms);
    let _ = writeln!(json, "  \"wall_ms_warm_restart\": {:.1}", warm.wall_ms);
    json.push_str("}\n");

    m3d_bench::emit(&args, "BENCH_serve.json", &json);
    println!(
        "serve_bench: {} requests over {KEYS} keys -> {} hits / {} misses \
         (hit rate {:.0}%), pseudo-3D built {} time(s), \
         cold {:.0} ms vs served {:.0} ms; warm restart: {} store hits, \
         {} pseudo-3D runs, {:.0} ms",
        requests.len(),
        seq.stats.cache_hits,
        seq.stats.cache_misses,
        hit_rate * 100.0,
        seq.pseudo3d_runs,
        cold.0,
        seq.wall_ms,
        warm.stats.store_hits,
        warm.pseudo3d_runs,
        warm.wall_ms,
    );
    println!(
        "serve_bench: decode churn {churn_owned} B owned vs {churn_borrowed} B borrowed \
         per request ({churn_ratio:.1}x); {IDLE_CONNS} idle conns moved probe p99 \
         {:.2} -> {:.2} ms at 1 worker ({:.2}x) and {:.2} -> {:.2} ms at 4 ({:.2}x)",
        conn_1w.p99_idle_free_ms,
        conn_1w.p99_with_idle_ms,
        conn_1w.ratio(),
        conn_4w.p99_idle_free_ms,
        conn_4w.p99_with_idle_ms,
        conn_4w.ratio(),
    );
    println!(
        "serve_bench: v2 sweep streamed {} points over {SWEEP_SCENARIOS} scenarios \
         ({} pseudo-3D runs, {} deferred past the cap), identical to v1 singles: {}",
        sweep_1w.points, sweep_1w.pseudo3d, sweep_1w.deferred, sweep_identical_to_v1,
    );
    println!(
        "serve_bench: fairness — probe p99 {:.2} -> {:.2} ms ({:.2}x) during a \
         {}-point sweep (cap {FAIR_CAP}, {} deferred, {} samples); router — \
         {}-shard byte-identical: {}, single build per key: {}",
        fair.p99_free_ms,
        fair.p99_during_ms,
        fair.ratio(),
        fair.points,
        fair.deferred,
        fair.samples,
        router.shards,
        router.identical,
        router.single_build,
    );
}
