//! Service benchmark emitting `results/BENCH_serve.json`: runs a mixed
//! design-space workload through an in-process [`m3d_serve::Server`] at
//! one and four workers and records the checkpoint-cache economics.
//!
//! The deterministic section is the point. The workload spreads
//! `requests` queries over `keys` distinct `(netlist, options)` cache
//! keys, so regardless of worker scheduling:
//!
//! * `cache_misses == keys` — the cache builds exactly one session per
//!   distinct key (racing requests share the in-flight build);
//! * `pseudo3d_runs == keys` — every key sees at least one 3-D command,
//!   and the shared checkpoint makes the pseudo-3-D stage run exactly
//!   once per session, never once per request;
//! * `identical_across_workers` — the full rendered response set at
//!   four workers is byte-identical to one worker.
//!
//! Wall-clock fields (`wall_ms_*`) are informational only; `bench_gate`
//! checks the deterministic fields exactly and floors the hit rate.
//!
//! A final **warm-restart** phase measures the persistent store: the
//! workload runs once against a store-backed server (populating the
//! store), then again on a *fresh* server over the same store
//! directory — simulating a daemon restart. Deterministically:
//! `warm_store_hits == keys` (every distinct key rehydrates from
//! disk), `warm_pseudo3d_runs == 0` (the restarted server never
//! re-runs the expensive stage) and `warm_identical_to_cold` (the
//! rendered responses match byte for byte).
//!
//! Usage: `serve_bench [--scale <f64>] [--seed <u64>] [--out <dir>]`.
//! The default scale is the CI smoke setting (0.02).

use hetero3d::flow::{Config, FlowCommand, FlowRequest, NetlistSpec};
use hetero3d::netgen::Benchmark;
use hetero3d::obs::Obs;
use m3d_serve::{Pending, Response, Server, ServerConfig, StatsSnapshot, Store};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Distinct cache keys in the workload (option variants of one netlist).
const KEYS: usize = 2;

/// The workload: every command kind, every key, with repeats. Each key
/// gets 3-D work (pseudo-3-D checkpoint demand) and repeated queries
/// (cache-hit demand).
fn workload(scale: f64, seed: u64) -> Vec<FlowRequest> {
    let netlist = NetlistSpec {
        benchmark: Benchmark::Aes,
        scale,
        seed,
    };
    let variant = |k: usize| {
        let mut o = m3d_bench::bench_options();
        o.placer_mut().iterations = 10 + k;
        o
    };
    let run = |config, frequency_ghz| FlowCommand::RunFlow {
        config,
        frequency_ghz,
    };
    let commands = [
        run(Config::Hetero3d, 1.0),
        run(Config::TwoD12T, 1.0),
        run(Config::ThreeD9T, 0.9),
        FlowCommand::FindFmax {
            config: Config::Hetero3d,
            start_ghz: 1.0,
        },
        run(Config::Hetero3d, 1.0), // exact repeat of the first query
    ];
    let mut out = Vec::new();
    for key in 0..KEYS {
        for command in &commands {
            out.push(FlowRequest {
                id: out.len() as u64,
                netlist,
                options: variant(key),
                command: *command,
                deadline_ms: None,
            });
        }
    }
    out
}

struct Run {
    stats: StatsSnapshot,
    pseudo3d_runs: u64,
    /// Rendered response lines in id order — the identity fingerprint.
    rendered: Vec<String>,
    wall_ms: f64,
}

fn run_workload(requests: &[FlowRequest], workers: usize, store: Option<Arc<Store>>) -> Run {
    use hetero3d::json::ToJson;
    let obs = Obs::enabled();
    let server = Server::start(ServerConfig {
        workers,
        queue_depth: requests.len().max(1),
        cache_capacity: KEYS + 2,
        obs: obs.clone(),
        store,
    });
    let started = Instant::now();
    let pending: Vec<Pending> = requests.iter().map(|r| server.submit(r.clone())).collect();
    let mut responses: Vec<Response> = pending.into_iter().map(Pending::wait).collect();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    responses.sort_by_key(|r| r.id());
    let rendered = responses.iter().map(|r| r.to_json().render()).collect();
    let stats = server.shutdown();
    Run {
        stats,
        pseudo3d_runs: obs.manifest().counter("flow/pseudo3d_runs").unwrap_or(0),
        rendered,
        wall_ms,
    }
}

fn main() {
    let mut args = m3d_bench::parse_args();
    if !std::env::args().any(|a| a == "--scale") {
        args.scale = 0.02;
    }
    let requests = workload(args.scale, args.seed);

    // Cold baseline for the reuse story: the same workload with a
    // cache too small to ever hit (every request rebuilds its session).
    let cold = {
        use hetero3d::json::ToJson;
        let started = Instant::now();
        let mut rendered = Vec::new();
        for r in &requests {
            let session = hetero3d::flow::FlowSession::builder(&r.netlist.materialize())
                .options(r.options.clone())
                .build()
                .expect("valid workload");
            let report = session.execute(&r.command).expect("flow");
            rendered.push(report.to_json().render());
        }
        (started.elapsed().as_secs_f64() * 1e3, rendered)
    };

    let seq = run_workload(&requests, 1, None);
    let par = run_workload(&requests, 4, None);
    let identical = seq.rendered == par.rendered;
    assert!(
        identical,
        "serve determinism violated: 1-worker and 4-worker response sets differ"
    );
    assert_eq!(
        seq.stats.completed_ok,
        requests.len() as u64,
        "every request must complete"
    );

    // Warm-restart economics: populate a persistent store through one
    // store-backed server, then replay the workload on a fresh server
    // (fresh cache, fresh telemetry) over the same directory — the
    // restart a long-running daemon would go through.
    let store_dir = std::env::temp_dir().join(format!("m3d-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let populate = run_workload(
        &requests,
        2,
        Some(Arc::new(Store::open(&store_dir).expect("open store"))),
    );
    assert_eq!(
        populate.rendered, seq.rendered,
        "store tier changed answers"
    );
    let warm = run_workload(
        &requests,
        2,
        Some(Arc::new(Store::open(&store_dir).expect("reopen store"))),
    );
    let warm_identical = warm.rendered == seq.rendered;
    assert!(
        warm_identical,
        "warm restart changed answers: disk-rehydrated sessions must be bit-identical"
    );
    let _ = std::fs::remove_dir_all(&store_dir);

    let hit_rate = seq.stats.cache_hits as f64 / requests.len() as f64;
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve_bench\",");
    let _ = writeln!(
        json,
        "  \"scale\": {}, \"seed\": {},",
        args.scale, args.seed
    );
    let _ = writeln!(json, "  \"requests\": {},", requests.len());
    let _ = writeln!(json, "  \"distinct_keys\": {KEYS},");
    let _ = writeln!(json, "  \"completed_ok\": {},", seq.stats.completed_ok);
    let _ = writeln!(json, "  \"cache_hits\": {},", seq.stats.cache_hits);
    let _ = writeln!(json, "  \"cache_misses\": {},", seq.stats.cache_misses);
    let _ = writeln!(json, "  \"hit_rate\": {hit_rate:.4},");
    let _ = writeln!(json, "  \"pseudo3d_runs\": {},", seq.pseudo3d_runs);
    let _ = writeln!(json, "  \"identical_across_workers\": {identical},");
    let _ = writeln!(json, "  \"warm_store_hits\": {},", warm.stats.store_hits);
    let _ = writeln!(json, "  \"warm_pseudo3d_runs\": {},", warm.pseudo3d_runs);
    let _ = writeln!(json, "  \"warm_identical_to_cold\": {warm_identical},");
    let _ = writeln!(json, "  \"wall_ms_cold\": {:.1},", cold.0);
    let _ = writeln!(json, "  \"wall_ms_served_1w\": {:.1},", seq.wall_ms);
    let _ = writeln!(json, "  \"wall_ms_served_4w\": {:.1},", par.wall_ms);
    let _ = writeln!(json, "  \"wall_ms_warm_restart\": {:.1}", warm.wall_ms);
    json.push_str("}\n");

    m3d_bench::emit(&args, "BENCH_serve.json", &json);
    println!(
        "serve_bench: {} requests over {KEYS} keys -> {} hits / {} misses \
         (hit rate {:.0}%), pseudo-3D built {} time(s), \
         cold {:.0} ms vs served {:.0} ms; warm restart: {} store hits, \
         {} pseudo-3D runs, {:.0} ms",
        requests.len(),
        seq.stats.cache_hits,
        seq.stats.cache_misses,
        hit_rate * 100.0,
        seq.pseudo3d_runs,
        cold.0,
        seq.wall_ms,
        warm.stats.store_hits,
        warm.pseudo3d_runs,
        warm.wall_ms,
    );
}
