//! Regenerates Table IV: the cost-model assumptions and the quantities
//! derived from formulas (1)–(5), plus a die-cost sweep illustrating the
//! 2-D / 3-D / heterogeneous-3-D crossover at paper-scale die areas.

use hetero3d::cost::CostModel;
use m3d_bench::{emit, parse_args};
use std::fmt::Write as _;

fn main() {
    let args = parse_args();
    let m = CostModel::default();

    let mut out = String::new();
    let _ = writeln!(out, "Table IV: cost model assumptions (units of C')\n");
    let _ = writeln!(
        out,
        "Baseline wafer cost (FEOL+8 metals)   C' = {:.2}",
        m.c_prime
    );
    let _ = writeln!(
        out,
        "Wafer FEOL cost                       {:.2} x C'",
        m.feol_fraction
    );
    let _ = writeln!(
        out,
        "Wafer BEOL cost (6 metals)            {:.2} x C'",
        m.beol6_fraction
    );
    let _ = writeln!(
        out,
        "3D integration cost (alpha)           {:.2} x C'",
        m.integration_fraction
    );
    let _ = writeln!(
        out,
        "Wafer diameter                        {:.0} mm",
        m.wafer_diameter_mm
    );
    let _ = writeln!(
        out,
        "Defect density (Dw)                   {:.1} /mm2",
        m.defect_density_per_mm2
    );
    let _ = writeln!(
        out,
        "Wafer yield (kappa)                   {:.2}",
        m.wafer_yield
    );
    let _ = writeln!(
        out,
        "3D yield degradation (beta)           {:.2}",
        m.yield_degradation_3d
    );
    let _ = writeln!(
        out,
        "2D wafer cost (C_2D)                  {:.2} x C'",
        m.wafer_cost_2d()
    );
    let _ = writeln!(
        out,
        "3D wafer cost (C_3D)                  {:.2} x C'",
        m.wafer_cost_3d()
    );
    let _ = writeln!(
        out,
        "\nDerived quantities per footprint (formulas (1)-(5)):\n"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>8} {:>8} {:>14} {:>14} {:>14}",
        "area mm2", "DPW", "Y_2D", "Y_3D", "2D cost e-6C'", "3D cost e-6C'", "hetero e-6C'"
    );
    for area in [0.05_f64, 0.1, 0.2, 0.4, 0.8, 1.6, 5.0, 20.0] {
        // Heterogeneous: the same logic at 87.5 % silicon -> footprint
        // 0.875x the homogeneous-3D footprint (area/2 each tier).
        let hetero_fp = area * 0.5 * 0.875;
        let _ = writeln!(
            out,
            "{:>10.2} {:>12.0} {:>8.3} {:>8.3} {:>14.3} {:>14.3} {:>14.3}",
            area,
            m.try_dies_per_wafer(area).expect("positive area"),
            m.die_yield_2d(area),
            m.die_yield_3d(area / 2.0),
            m.die_cost(area, false) * 1e6,
            m.die_cost(area / 2.0, true) * 1e6,
            m.die_cost(hetero_fp, true) * 1e6,
        );
    }
    let _ = writeln!(
        out,
        "\n(the heterogeneous column drops below the 2-D column at paper-scale dies:\n the 12.5 % silicon saving beats the 3-D wafer premium)"
    );
    emit(&args, "table4.txt", &out);
}
