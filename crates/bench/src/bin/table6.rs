//! Regenerates Table VI: raw PPAC of the heterogeneous 3-D implementation
//! for all four benchmark netlists at each design's iso-performance target
//! (the 12-track 2-D fmax).

use hetero3d::cost::CostModel;
use hetero3d::flow::try_compare_configs;
use hetero3d::netgen::Benchmark;
use hetero3d::report::format_comparison;
use m3d_bench::{bench_options, emit, parse_args};
use std::fmt::Write as _;

fn main() {
    let args = parse_args();
    let options = bench_options();
    let cost = CostModel::default();
    let mut comparisons = Vec::new();
    for bench in Benchmark::ALL {
        let netlist = bench.generate(args.scale, args.seed);
        eprintln!("[{bench}: {} gates]", netlist.gate_count());
        comparisons.push(try_compare_configs(&netlist, &options, &cost).expect("comparison"));
    }
    let refs: Vec<&_> = comparisons.iter().collect();
    let mut out = String::new();
    let _ = writeln!(out, "Table VI: PPAC of the 3D heterogeneous designs\n");
    out.push_str(&format_comparison(&refs));
    let _ = writeln!(
        out,
        "\n(absolute values are simulator-scale, not foundry-scale; compare shapes:\n every design meets its 12T-2D fmax with small-negative or positive WNS)"
    );
    emit(&args, "table6.txt", &out);
}
