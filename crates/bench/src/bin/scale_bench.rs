//! The `--scale` throughput ladder: full hetero-3-D flow runs over the
//! synthetic scale family, emitting `results/BENCH_scale.json`.
//!
//! Each rung generates a scale-family netlist (100 k+ cells at the
//! default setting), builds the flat [`Topology`] view, and pushes the
//! design through the complete heterogeneous flow — partitioning,
//! placement, routing, CTS, sign-off STA and power — at one target
//! frequency. Per rung the manifest records:
//!
//! * **deterministic** metrics (cell/net/pin counts, name-arena bytes,
//!   sign-off WNS bits) that `bench_gate` diffs against the committed
//!   baseline exactly, and
//! * **throughput** metrics (`flow_cells_per_sec`, stage walls, peak
//!   heap) that `bench_gate` checks against absolute floors only — CI
//!   wall clocks are too noisy for relative comparisons.
//!
//! Usage: `scale_bench [--scale <f64>] [--seed <u64>] [--out <dir>]`.
//! `--scale` multiplies every rung's cell target; the default 1.0 ladder
//! is the committed baseline (and the CI setting), `--scale 5` pushes
//! the top rung to a million cells for local soak runs.

use hetero3d::flow::{try_run_flow, Config};
use hetero3d::netgen::scale_netlist;
use hetero3d::netlist::Topology;
use hetero3d::obs::alloc;
use std::fmt::Write as _;
use std::time::Instant;

#[global_allocator]
static ALLOC: hetero3d::obs::CountingAlloc = hetero3d::obs::CountingAlloc;

/// Rung cell targets at `--scale 1.0`. The smallest rung already clears
/// the 100 k-cell line the flat layouts are built for.
const BASE_RUNGS: [usize; 3] = [100_000, 160_000, 250_000];

/// Target clock for the ladder runs, GHz. Modest on purpose: the ladder
/// measures throughput, not achievable frequency, and a relaxed target
/// keeps the sizing loop from dominating the wall clock.
const LADDER_GHZ: f64 = 0.5;

fn main() {
    let mut args = m3d_bench::parse_args();
    if !std::env::args().any(|a| a == "--scale") {
        args.scale = 1.0;
    }
    let options = m3d_bench::bench_options();

    let mut rungs_json = Vec::new();
    for base in BASE_RUNGS {
        let target = ((base as f64 * args.scale).round() as usize).max(5_000);
        let name = format!("scale{}k", target / 1000);
        println!("== {name}: target {target} cells ==");
        alloc::reset_peak();

        let t0 = Instant::now();
        let netlist = scale_netlist(target, args.seed);
        let gen_s = t0.elapsed().as_secs_f64();
        let (cells, nets) = (netlist.cell_count(), netlist.net_count());
        let pins = netlist.stats().pins;

        let t1 = Instant::now();
        let topo = Topology::build(&netlist);
        let topo_s = t1.elapsed().as_secs_f64();
        let arena_bytes = topo.name_arena_bytes();
        drop(topo);

        let t2 = Instant::now();
        let imp =
            try_run_flow(&netlist, Config::Hetero3d, LADDER_GHZ, &options).expect("ladder flow");
        let flow_s = t2.elapsed().as_secs_f64();
        let throughput = cells as f64 / flow_s;
        let peak = alloc::peak_bytes();
        println!(
            "   {cells} cells, {nets} nets | gen {gen_s:.2}s topo {topo_s:.3}s \
             flow {flow_s:.2}s ({throughput:.0} cells/s) | peak {:.1} MiB | wns {:.4} ns",
            peak as f64 / (1024.0 * 1024.0),
            imp.sta.wns
        );

        let mut r = String::from("    {\n");
        let _ = writeln!(r, "      \"name\": \"{name}\",");
        let _ = writeln!(r, "      \"target_cells\": {target},");
        let _ = writeln!(r, "      \"cells\": {cells},");
        let _ = writeln!(r, "      \"nets\": {nets},");
        let _ = writeln!(r, "      \"pins\": {pins},");
        let _ = writeln!(r, "      \"arena_bytes\": {arena_bytes},");
        let _ = writeln!(r, "      \"wns_ns\": {:.6},", imp.sta.wns);
        let _ = writeln!(r, "      \"gen_s\": {gen_s:.3},");
        let _ = writeln!(r, "      \"topo_s\": {topo_s:.4},");
        let _ = writeln!(r, "      \"flow_s\": {flow_s:.3},");
        let _ = writeln!(r, "      \"flow_cells_per_sec\": {throughput:.1},");
        let _ = writeln!(r, "      \"peak_heap_bytes\": {peak}");
        r.push_str("    }");
        rungs_json.push(r);
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"scale\",");
    let _ = writeln!(
        json,
        "  \"scale\": {}, \"seed\": {}, \"threads\": {},",
        args.scale,
        args.seed,
        hetero3d::par::resolve(0)
    );
    let _ = writeln!(json, "  \"frequency_ghz\": {LADDER_GHZ},");
    let _ = writeln!(json, "  \"rungs\": [");
    json.push_str(&rungs_json.join(",\n"));
    json.push_str("\n  ]\n}\n");
    m3d_bench::emit(&args, "BENCH_scale.json", &json);
}
