//! Incremental-vs-full STA smoke run and `BENCH_sta.json` datapoint.
//!
//! Drives a fixed edit script (resizes, tier swaps, parasitics bumps and
//! an fmax-ladder period sweep) through both a cold `analyze` per edit
//! and a persistent incremental `Timer`, asserting **bit-identical**
//! results at every step, then records wall-clock and propagated-arc
//! numbers to `results/BENCH_sta.json`.
//!
//! Usage: `sta_incr [--scale <f64>|tiny] [--seed <u64>] [--out <dir>]`.
//! `--scale tiny` is the CI smoke setting. Thread count follows
//! `HETERO3D_THREADS` (the results must not change with it — that is
//! part of what this binary checks).

use hetero3d::netgen::Benchmark;
use hetero3d::netlist::{CellId, NetId};
use hetero3d::sta::{analyze, ClockSpec, Parasitics, StaResult, Timer, TimingContext};
use hetero3d::tech::{Drive, Tier, TierStack};
use std::fmt::Write as _;
use std::time::Instant;

const LADDER: [f64; 5] = [1.18, 1.08, 1.0, 0.92, 0.85];

fn assert_bit_identical(incr: &StaResult, cold: &StaResult, what: &str) {
    assert_eq!(incr.wns.to_bits(), cold.wns.to_bits(), "{what}: wns");
    assert_eq!(incr.tns.to_bits(), cold.tns.to_bits(), "{what}: tns");
    assert_eq!(incr.violations, cold.violations, "{what}: violations");
    assert_eq!(
        incr.critical_endpoints, cold.critical_endpoints,
        "{what}: order"
    );
    for i in 0..cold.arrival.len() {
        assert_eq!(
            incr.arrival[i].to_bits(),
            cold.arrival[i].to_bits(),
            "{what}: arrival[{i}]"
        );
        assert_eq!(
            incr.slack[i].to_bits(),
            cold.slack[i].to_bits(),
            "{what}: slack[{i}]"
        );
    }
}

struct Datapoint {
    bench: &'static str,
    cells: usize,
    edits: usize,
    t_full_ms: f64,
    t_incr_ms: f64,
    cold_equiv_evals: u64,
    propagated_evals: u64,
    ladder_full_ms: f64,
    ladder_incr_ms: f64,
}

#[allow(clippy::too_many_lines)]
fn run_bench(bench: Benchmark, name: &'static str, scale: f64, seed: u64) -> Datapoint {
    let mut netlist = bench.generate(scale, seed);
    let stack = TierStack::heterogeneous();
    let mut tiers = vec![Tier::Bottom; netlist.cell_count()];
    let mut parasitics = Parasitics::zero_wire(&netlist);
    let cells = netlist.cell_count();
    let gates: Vec<CellId> = netlist
        .cells()
        .filter(|(_, c)| c.class.is_gate() && !c.is_sequential())
        .map(|(id, _)| id)
        .collect();

    // The edit script: a deterministic mix of the flow's edit vocabulary.
    let edits = 24usize;
    let apply = |netlist: &mut hetero3d::netlist::Netlist,
                 tiers: &mut Vec<Tier>,
                 parasitics: &mut Parasitics,
                 step: usize| {
        match step % 4 {
            0 => {
                let g = gates[step * 131 % gates.len()];
                let d = netlist.cell(g).class.gate_drive().expect("gate");
                netlist.set_drive(g, d.upsized().unwrap_or(Drive::X1));
            }
            1 => {
                let g = gates[step * 61 % gates.len()];
                tiers[g.index()] = tiers[g.index()].other();
            }
            2 => {
                let k = NetId::from_index(step * 17 % netlist.net_count());
                parasitics.net_mut(k).wire_delay_ns += 0.002;
                parasitics.net_mut(k).wire_cap_ff += 1.0;
            }
            _ => {
                let g = gates[step * 97 % gates.len()];
                let d = netlist.cell(g).class.gate_drive().expect("gate");
                netlist.set_drive(g, d.downsized().unwrap_or(Drive::X8));
            }
        }
    };

    // Pass 1: cold analyze per edit (timed), results kept for comparison.
    let mut cold_results = Vec::with_capacity(edits);
    let t0 = Instant::now();
    for step in 0..edits {
        apply(&mut netlist, &mut tiers, &mut parasitics, step);
        let ctx = TimingContext {
            netlist: &netlist,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock: ClockSpec::with_period(1.0),
        };
        cold_results.push(analyze(&ctx));
    }
    let t_full = t0.elapsed().as_secs_f64();

    // Rewind the script (it is self-inverse for tiers and idempotent
    // enough for the rest: replaying from the same start state gives the
    // same contexts) by rebuilding the start state.
    let mut netlist = bench.generate(scale, seed);
    let mut tiers = vec![Tier::Bottom; netlist.cell_count()];
    let mut parasitics = Parasitics::zero_wire(&netlist);

    // Pass 2: incremental Timer per edit (timed), checked bit-for-bit.
    let mut timer = Timer::new();
    let t0 = Instant::now();
    for (step, cold) in cold_results.iter().enumerate() {
        apply(&mut netlist, &mut tiers, &mut parasitics, step);
        let ctx = TimingContext {
            netlist: &netlist,
            stack: &stack,
            tiers: &tiers,
            parasitics: &parasitics,
            clock: ClockSpec::with_period(1.0),
        };
        let incr = timer.update(&ctx);
        assert_bit_identical(&incr, cold, &format!("{name} step {step}"));
    }
    let t_incr = t0.elapsed().as_secs_f64();
    let stats = timer.stats();
    let cold_equiv = (stats.full_rebuilds + stats.incremental_updates) * timer.full_pass_evals();
    let propagated = stats.propagated_evals();

    // Fmax ladder: period-only sweeps, cold vs incremental.
    let ctx = |p: f64| TimingContext {
        netlist: &netlist,
        stack: &stack,
        tiers: &tiers,
        parasitics: &parasitics,
        clock: ClockSpec::with_period(p),
    };
    let t0 = Instant::now();
    let mut cold_ladder = Vec::new();
    for m in LADDER {
        cold_ladder.push(analyze(&ctx(m)));
    }
    let ladder_full = t0.elapsed().as_secs_f64();
    let mut timer = Timer::new();
    let _ = timer.update(&ctx(1.0));
    let forward_before = timer.stats().forward_evals;
    let t0 = Instant::now();
    for (i, m) in LADDER.iter().enumerate() {
        timer.set_period(*m);
        let incr = timer.update(&ctx(*m));
        assert_bit_identical(&incr, &cold_ladder[i], &format!("{name} rung {i}"));
    }
    let ladder_incr = t0.elapsed().as_secs_f64();
    assert_eq!(
        timer.stats().forward_evals,
        forward_before,
        "{name}: period-only rungs must not re-propagate any arrival"
    );

    Datapoint {
        bench: name,
        cells,
        edits,
        t_full_ms: t_full * 1e3,
        t_incr_ms: t_incr * 1e3,
        cold_equiv_evals: cold_equiv,
        propagated_evals: propagated,
        ladder_full_ms: ladder_full * 1e3,
        ladder_incr_ms: ladder_incr * 1e3,
    }
}

fn main() {
    let mut args = m3d_bench::parse_args();
    if std::env::args().any(|a| a == "tiny") {
        // CI smoke setting: `--scale tiny`.
        args.scale = 0.02;
    }
    let threads = hetero3d::par::resolve(0);

    let points = [
        run_bench(Benchmark::Aes, "aes", args.scale, args.seed),
        run_bench(Benchmark::Cpu, "cpu", args.scale, args.seed),
    ];

    let mut json = String::from("{\n  \"bench\": \"sta_incremental\",\n");
    let _ = writeln!(
        json,
        "  \"scale\": {}, \"seed\": {}, \"threads\": {},",
        args.scale, args.seed, threads
    );
    json.push_str("  \"designs\": [\n");
    for (i, p) in points.iter().enumerate() {
        let arc_reduction = p.cold_equiv_evals as f64 / p.propagated_evals.max(1) as f64;
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"cells\": {}, \"edits\": {}, \
             \"t_full_ms\": {:.3}, \"t_incr_ms\": {:.3}, \"speedup\": {:.2}, \
             \"cold_equiv_evals\": {}, \"propagated_evals\": {}, \"arc_reduction\": {:.1}, \
             \"ladder_full_ms\": {:.3}, \"ladder_incr_ms\": {:.3}, \"ladder_speedup\": {:.2}}}{}",
            p.bench,
            p.cells,
            p.edits,
            p.t_full_ms,
            p.t_incr_ms,
            p.t_full_ms / p.t_incr_ms.max(1e-9),
            p.cold_equiv_evals,
            p.propagated_evals,
            arc_reduction,
            p.ladder_full_ms,
            p.ladder_incr_ms,
            p.ladder_full_ms / p.ladder_incr_ms.max(1e-9),
            if i + 1 < points.len() { "," } else { "" },
        );
        // The acceptance bar: the incremental engine must propagate at
        // least 3x fewer arcs than cold re-analysis over the edit script.
        assert!(
            arc_reduction >= 3.0,
            "{}: propagated-arc reduction {:.1}x is below the 3x bar",
            p.bench,
            arc_reduction
        );
        println!(
            "{}: {} cells, {} edits | full {:.2} ms vs incremental {:.2} ms ({:.1}x) | \
             arcs {:.1}x fewer | ladder {:.2} ms vs {:.2} ms",
            p.bench,
            p.cells,
            p.edits,
            p.t_full_ms,
            p.t_incr_ms,
            p.t_full_ms / p.t_incr_ms.max(1e-9),
            arc_reduction,
            p.ladder_full_ms,
            p.ladder_incr_ms,
        );
    }
    json.push_str("  ]\n}\n");
    m3d_bench::emit(&args, "BENCH_sta.json", &json);
    println!("sta_incr smoke: all incremental results bit-identical to cold analyze");
}
