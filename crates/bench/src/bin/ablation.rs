//! Ablation study of the heterogeneous flow's design choices: each of the
//! three Hetero-Pin-3-D enhancements toggled independently, plus a sweep
//! of the timing-partitioning area cap (the paper's 20–30 % guidance).

use hetero3d::flow::{try_find_fmax, try_run_flow, Config, FlowOptions};
use hetero3d::netgen::Benchmark;
use m3d_bench::{bench_options, emit, parse_args};
use std::fmt::Write as _;

fn main() {
    let args = parse_args();
    let options = bench_options();
    let netlist = Benchmark::Cpu.generate(args.scale, args.seed);
    eprintln!("[cpu: {} gates]", netlist.gate_count());
    let (fmax, _) = try_find_fmax(&netlist, Config::TwoD12T, &options, 1.0).expect("fmax sweep");
    let frequency = (fmax * 1.1 * 100.0).round() / 100.0;
    eprintln!("[ablating at {frequency:.2} GHz]");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: Hetero-Pin-3D enhancements on cpu @ {frequency:.2} GHz\n"
    );
    let _ = writeln!(
        out,
        "{:<34} {:>8} {:>8} {:>9} {:>7}",
        "variant", "WNS ns", "pwr mW", "WL mm", "MIVs"
    );
    let _ = writeln!(out, "{}", "-".repeat(70));

    let variants: Vec<(&str, FlowOptions)> = vec![
        (
            "none (Pin-3D baseline)",
            FlowOptions {
                enable_timing_partition: false,
                enable_3d_cts: false,
                enable_repartition: false,
                ..options.clone()
            },
        ),
        (
            "+ timing partitioning",
            FlowOptions {
                enable_timing_partition: true,
                enable_3d_cts: false,
                enable_repartition: false,
                ..options.clone()
            },
        ),
        (
            "+ 3-D (COVER) CTS",
            FlowOptions {
                enable_timing_partition: false,
                enable_3d_cts: true,
                enable_repartition: false,
                ..options.clone()
            },
        ),
        (
            "+ repartitioning ECO",
            FlowOptions {
                enable_timing_partition: false,
                enable_3d_cts: false,
                enable_repartition: true,
                ..options.clone()
            },
        ),
        ("all three (Hetero-Pin-3D)", options.clone()),
    ];
    for (name, o) in &variants {
        let imp = try_run_flow(&netlist, Config::Hetero3d, frequency, o).expect("flow");
        let _ = writeln!(
            out,
            "{:<34} {:>8.3} {:>8.3} {:>9.2} {:>7}",
            name,
            imp.sta.wns,
            imp.power.total_mw(),
            imp.routing.total_wirelength_mm(),
            imp.routing.total_mivs
        );
    }

    let _ = writeln!(out, "\nTiming-partition area cap sweep (paper: 20-30 %):\n");
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>9} {:>9}",
        "cap", "WNS ns", "pwr mW", "WL mm", "locked"
    );
    let _ = writeln!(out, "{}", "-".repeat(48));
    for cap in [0.0, 0.1, 0.2, 0.28, 0.4, 0.6] {
        let o = FlowOptions {
            timing_partition_cap: cap,
            ..options.clone()
        };
        let imp = try_run_flow(&netlist, Config::Hetero3d, frequency, &o).expect("flow");
        let locked = imp
            .timing_assignment
            .as_ref()
            .map_or(0, |a| a.locked_cells.len());
        let _ = writeln!(
            out,
            "{:<10.2} {:>8.3} {:>8.3} {:>9.2} {:>9}",
            cap,
            imp.sta.wns,
            imp.power.total_mw(),
            imp.routing.total_wirelength_mm(),
            locked
        );
    }
    let _ = writeln!(
        out,
        "\n(expected: each enhancement individually improves WNS; the cap sweep\n shows diminishing returns past the paper's 20-30 % band as locked\n clusters start fighting the bin-balanced placement)"
    );
    emit(&args, "ablation.txt", &out);
}
