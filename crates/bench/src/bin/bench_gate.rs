//! CI bench-regression gate: compares freshly emitted benchmark
//! manifests against the committed baselines and exits non-zero on any
//! regression.
//!
//! Usage: `bench_gate [--fresh <dir>] [--baseline <dir>] [--only <section>]`
//! (defaults: fresh `fresh/`, baseline `results/`; `--only
//! sta|flow|serve|scale|pareto` gates a single manifest, for split CI
//! jobs). The fresh directory is produced in CI by `flow_obs`,
//! `serve_bench`, `sta_incr --scale tiny`, `scale_bench` and
//! `pareto_bench` with `--out fresh`; the baseline directory is the
//! committed `results/`.
//!
//! The tolerance model has two classes:
//!
//! * **Deterministic metrics** (counters, gauges, labels, span call
//!   counts, arc/eval counts) are compared **exactly** — by the
//!   determinism contract they may not move unless the algorithms
//!   changed, in which case the baseline must be refreshed in the same
//!   change.
//! * **Wall-derived ratios** (speedups, arc reduction) are checked
//!   against absolute floors, never against the baseline's own timing —
//!   CI runners are too noisy for relative wall-clock comparisons.
//!   Raw wall times are ignored entirely.

use m3d_bench::json::{parse, Value};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Absolute floors for the STA bench's wall-derived ratios, per design.
const STA_FLOORS: &[(&str, f64)] = &[
    ("speedup", 1.5),
    ("arc_reduction", 3.0),
    ("ladder_speedup", 1.0),
];

/// Per-design fields of the STA bench that must match the baseline bit
/// for bit.
const STA_EXACT: &[&str] = &["cells", "edits", "cold_equiv_evals", "propagated_evals"];

struct Gate {
    failures: Vec<String>,
    checks: usize,
}

impl Gate {
    fn check(&mut self, ok: bool, what: &str) {
        self.checks += 1;
        if ok {
            println!("  ok   {what}");
        } else {
            println!("  FAIL {what}");
            self.failures.push(what.to_string());
        }
    }
}

fn load(dir: &Path, name: &str) -> Result<Value, String> {
    let path = dir.join(name);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Records every path where `a` and `b` differ (bounded, depth-first).
fn diff(a: &Value, b: &Value, path: &str, out: &mut Vec<String>) {
    if out.len() >= 8 {
        return;
    }
    match (a, b) {
        (Value::Obj(ma), Value::Obj(mb)) => {
            for (k, va) in ma {
                match b.get(k) {
                    Some(vb) => diff(va, vb, &format!("{path}/{k}"), out),
                    None => out.push(format!("{path}/{k}: missing from baseline")),
                }
            }
            for (k, _) in mb {
                if a.get(k).is_none() {
                    out.push(format!("{path}/{k}: missing from fresh run"));
                }
            }
        }
        (Value::Arr(xa), Value::Arr(xb)) if xa.len() == xb.len() => {
            for (i, (va, vb)) in xa.iter().zip(xb).enumerate() {
                diff(va, vb, &format!("{path}[{i}]"), out);
            }
        }
        _ if a == b => {}
        _ => out.push(format!("{path}: {a:?} != {b:?}")),
    }
}

/// The run parameters that make exact comparison meaningful.
fn run_params(doc: &Value) -> (Option<f64>, Option<u64>) {
    (
        doc.get("scale").and_then(Value::as_f64),
        doc.get("seed").and_then(Value::as_u64),
    )
}

fn gate_sta(gate: &mut Gate, fresh: &Value, baseline: &Value) {
    gate.check(
        run_params(fresh) == run_params(baseline),
        &format!(
            "BENCH_sta: fresh run parameters {:?} match baseline {:?}",
            run_params(fresh),
            run_params(baseline)
        ),
    );
    let empty = Vec::new();
    let fresh_designs = fresh
        .get("designs")
        .and_then(Value::as_arr)
        .unwrap_or(&empty);
    gate.check(
        !fresh_designs.is_empty(),
        "BENCH_sta: fresh run has design datapoints",
    );
    for d in fresh_designs {
        let name = d.get("name").and_then(Value::as_str).unwrap_or("?");
        let base_design = baseline
            .get("designs")
            .and_then(Value::as_arr)
            .and_then(|ds| {
                ds.iter()
                    .find(|b| b.get("name").and_then(Value::as_str) == Some(name))
            });
        let Some(base_design) = base_design else {
            gate.check(
                false,
                &format!("BENCH_sta[{name}]: design present in baseline"),
            );
            continue;
        };
        for field in STA_EXACT {
            let f = d.get(field).and_then(Value::as_u64);
            let b = base_design.get(field).and_then(Value::as_u64);
            gate.check(
                f.is_some() && f == b,
                &format!("BENCH_sta[{name}].{field}: deterministic count {f:?} == baseline {b:?}"),
            );
        }
        for (field, floor) in STA_FLOORS {
            let v = d
                .get(field)
                .and_then(Value::as_f64)
                .unwrap_or(f64::NEG_INFINITY);
            gate.check(
                v >= *floor,
                &format!("BENCH_sta[{name}].{field}: {v} >= floor {floor}"),
            );
        }
    }
}

/// Sums every counter under the compare-configs section whose key ends
/// in `flow/pseudo3d_runs`, across all `cfg/<Config>` scope prefixes.
fn pseudo3d_runs(doc: &Value) -> Option<u64> {
    let counters = doc.get("compare_configs")?.get("counters")?;
    let Value::Obj(map) = counters else {
        return None;
    };
    Some(
        map.iter()
            .filter(|(k, _)| {
                k.as_str() == "flow/pseudo3d_runs" || k.ends_with("/flow/pseudo3d_runs")
            })
            .filter_map(|(_, v)| v.as_u64())
            .sum(),
    )
}

fn gate_flow(gate: &mut Gate, fresh: &Value, baseline: &Value) {
    gate.check(
        fresh.get("deterministic_identity").and_then(Value::as_bool) == Some(true),
        "BENCH_flow: 1-thread and 4-thread manifests were bit-identical in-process",
    );
    let reuse = fresh.get("prefix_reuse").and_then(Value::as_u64);
    gate.check(
        reuse == Some(1),
        &format!("BENCH_flow.prefix_reuse: compare_configs pseudo-3D runs {reuse:?} == Some(1)"),
    );
    let counted = pseudo3d_runs(fresh);
    gate.check(
        counted == Some(1),
        &format!(
            "BENCH_flow: compare_configs counters sum to one pseudo-3D run ({counted:?}) — \
             every 3-D config forked from the shared checkpoint"
        ),
    );
    gate.check(
        run_params(fresh) == run_params(baseline),
        &format!(
            "BENCH_flow: fresh run parameters {:?} match baseline {:?}",
            run_params(fresh),
            run_params(baseline)
        ),
    );
    match (fresh.get("deterministic"), baseline.get("deterministic")) {
        (Some(f), Some(b)) => {
            let mut diffs = Vec::new();
            diff(f, b, "deterministic", &mut diffs);
            let mut what =
                String::from("BENCH_flow: deterministic manifest matches baseline exactly");
            if !diffs.is_empty() {
                let _ = write!(what, " — first diffs: {}", diffs.join("; "));
            }
            gate.check(diffs.is_empty(), &what);
            let counters = f.get("counters").and_then(|c| match c {
                Value::Obj(m) => Some(m.len()),
                _ => None,
            });
            gate.check(
                counters.is_some_and(|n| n >= 10),
                &format!("BENCH_flow: manifest carries a full counter set ({counters:?})"),
            );
        }
        _ => gate.check(
            false,
            "BENCH_flow: both files carry a deterministic section",
        ),
    }
}

/// Fields of the serve bench that must match the baseline bit for bit:
/// the cache economics are scheduling-independent by design.
const SERVE_EXACT: &[&str] = &[
    "requests",
    "distinct_keys",
    "completed_ok",
    "cache_hits",
    "cache_misses",
    "pseudo3d_runs",
    "warm_store_hits",
    "warm_pseudo3d_runs",
    "conn_idle_connections",
    "conn_samples",
    "sweep_points",
    "sweep_scenarios",
    "sweep_pseudo3d_runs",
    "sweep_quota_deferred",
    "fair_inflight_cap",
    "fair_sweep_points",
    "fair_quota_deferred",
    "router_shards",
    "router_distinct_keys",
    "router_pseudo3d_runs",
];

/// Absolute floor on the serve bench's checkpoint-cache hit rate: the
/// workload repeats queries, and a service that stops reusing sessions
/// (every request a miss) is a regression even if still correct.
const SERVE_HIT_RATE_FLOOR: f64 = 0.5;

/// Ceiling on the connection-scaling ratio: active-path p99 with a
/// thousand idle connections parked on the reactor, over the idle-free
/// p99. A reactor that walks or wakes per connection blows through
/// this; a readiness poller leaves the active path untouched.
const CONN_P99_RATIO_CEILING: f64 = 1.5;

/// Noise escape hatch for the ratio check: when the probe is fast, a
/// few milliseconds of scheduler jitter can swing a p99 ratio on a
/// shared CI runner, so an absolute regression this small passes even
/// above the ceiling. Real reactor regressions (a wakeup or walk per
/// idle connection) cost tens of milliseconds at a thousand parked
/// connections and still trip the check.
const CONN_P99_ABS_SLACK_MS: f64 = 5.0;

/// Floor on owned-vs-borrowed request-decode churn: the borrowed path
/// allocates only the parse tree (no per-field `String`s), so it must
/// stay well below the owned tree's churn. Measured ~1.4x; a drop to
/// ~1.0x means the zero-copy path regressed into per-field allocation.
const DECODE_CHURN_RATIO_FLOOR: f64 = 1.2;

/// Ceiling on the fairness phase's interactive p99 ratio: probe
/// latency on a second connection while a 64-point sweep streams, over
/// the sweep-free baseline. The in-flight cap (2, below the worker
/// count) means the probe only ever pays CPU sharing with a couple of
/// sweep points — a small multiple of its own service time. Without
/// admission fairness the probe queues behind the sweep's remaining
/// tail (~60 points, hundreds of milliseconds) and blows through this
/// by an order of magnitude.
const FAIR_P99_RATIO_CEILING: f64 = 8.0;

/// Absolute escape hatch for the fairness ratio on noisy runners: an
/// absolute p99 regression this small passes even above the ceiling.
/// A probe starved behind an uncapped sweep tail regresses by hundreds
/// of milliseconds and still trips the check.
const FAIR_P99_ABS_SLACK_MS: f64 = 150.0;

fn gate_serve(gate: &mut Gate, fresh: &Value, baseline: &Value) {
    gate.check(
        fresh
            .get("identical_across_workers")
            .and_then(Value::as_bool)
            == Some(true),
        "BENCH_serve: 1-worker and 4-worker response sets were byte-identical in-process",
    );
    gate.check(
        run_params(fresh) == run_params(baseline),
        &format!(
            "BENCH_serve: fresh run parameters {:?} match baseline {:?}",
            run_params(fresh),
            run_params(baseline)
        ),
    );
    for field in SERVE_EXACT {
        let f = fresh.get(field).and_then(Value::as_u64);
        let b = baseline.get(field).and_then(Value::as_u64);
        gate.check(
            f.is_some() && f == b,
            &format!("BENCH_serve.{field}: deterministic count {f:?} == baseline {b:?}"),
        );
    }
    // The tentpole invariant: the pseudo-3-D stage ran exactly once per
    // distinct cache key — repeated design-space queries forked the
    // shared checkpoint instead of recomputing it.
    let keys = fresh.get("distinct_keys").and_then(Value::as_u64);
    let pseudo = fresh.get("pseudo3d_runs").and_then(Value::as_u64);
    gate.check(
        keys.is_some() && pseudo == keys,
        &format!(
            "BENCH_serve: pseudo-3D runs {pseudo:?} == distinct cache keys {keys:?} \
             (one shared checkpoint per key)"
        ),
    );
    let hit_rate = fresh
        .get("hit_rate")
        .and_then(Value::as_f64)
        .unwrap_or(f64::NEG_INFINITY);
    gate.check(
        hit_rate >= SERVE_HIT_RATE_FLOOR,
        &format!("BENCH_serve.hit_rate: {hit_rate} >= floor {SERVE_HIT_RATE_FLOOR}"),
    );
    // Warm-restart economics: a restarted server answers every distinct
    // key from the persistent store, byte-identically, without ever
    // re-running the pseudo-3-D stage.
    gate.check(
        fresh.get("warm_identical_to_cold").and_then(Value::as_bool) == Some(true),
        "BENCH_serve: warm-restart responses were byte-identical to the cold run",
    );
    let warm_hits = fresh.get("warm_store_hits").and_then(Value::as_u64);
    gate.check(
        keys.is_some() && warm_hits == keys,
        &format!(
            "BENCH_serve: warm store hits {warm_hits:?} == distinct cache keys {keys:?} \
             (every key rehydrated from disk)"
        ),
    );
    let warm_pseudo = fresh.get("warm_pseudo3d_runs").and_then(Value::as_u64);
    gate.check(
        warm_pseudo == Some(0),
        &format!("BENCH_serve.warm_pseudo3d_runs: {warm_pseudo:?} == Some(0) after restart"),
    );
    // Zero-copy decode economics: the borrowed request-decode path must
    // churn strictly — and substantially — less than the owned tree.
    let owned = fresh
        .get("decode_churn_owned_bytes")
        .and_then(Value::as_u64);
    let borrowed = fresh
        .get("decode_churn_borrowed_bytes")
        .and_then(Value::as_u64);
    gate.check(
        owned.zip(borrowed).is_some_and(|(o, b)| b < o),
        &format!(
            "BENCH_serve: borrowed decode churn {borrowed:?} B < owned {owned:?} B per request"
        ),
    );
    let churn_ratio = fresh
        .get("decode_churn_ratio")
        .and_then(Value::as_f64)
        .unwrap_or(f64::NEG_INFINITY);
    gate.check(
        churn_ratio >= DECODE_CHURN_RATIO_FLOOR,
        &format!(
            "BENCH_serve.decode_churn_ratio: {churn_ratio} >= floor {DECODE_CHURN_RATIO_FLOOR}"
        ),
    );
    // Connection scaling over the event-driven TCP front: served
    // responses byte-identical across worker counts and to the
    // in-process engine, and a thousand parked idle connections may not
    // move the active path's p99.
    gate.check(
        fresh
            .get("conn_identical_across_workers")
            .and_then(Value::as_bool)
            == Some(true),
        "BENCH_serve: TCP-served responses were byte-identical at 1 and 4 workers",
    );
    gate.check(
        fresh
            .get("conn_identical_to_engine")
            .and_then(Value::as_bool)
            == Some(true),
        "BENCH_serve: TCP-served responses were byte-identical to the in-process engine",
    );
    for lane in ["1w", "4w"] {
        let ratio = fresh
            .get(&format!("conn_p99_ratio_{lane}"))
            .and_then(Value::as_f64)
            .unwrap_or(f64::INFINITY);
        let free = fresh
            .get(&format!("conn_p99_idle_free_ms_{lane}"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        let with = fresh
            .get(&format!("conn_p99_with_idle_ms_{lane}"))
            .and_then(Value::as_f64)
            .unwrap_or(f64::INFINITY);
        gate.check(
            ratio <= CONN_P99_RATIO_CEILING || with - free <= CONN_P99_ABS_SLACK_MS,
            &format!(
                "BENCH_serve.conn_p99_ratio_{lane}: {ratio} <= ceiling {CONN_P99_RATIO_CEILING} \
                 (p99 {free} -> {with} ms under {:?} idle connections)",
                fresh.get("conn_idle_connections").and_then(Value::as_u64)
            ),
        );
    }
    // Protocol v2: streamed sweeps are semantically the v1 sequence,
    // worker-count-invariant, with one checkpoint per scenario.
    gate.check(
        fresh.get("sweep_identical_to_v1").and_then(Value::as_bool) == Some(true),
        "BENCH_serve: streamed sweep points were byte-identical to the v1 single-shot sequence",
    );
    gate.check(
        fresh
            .get("sweep_identical_across_workers")
            .and_then(Value::as_bool)
            == Some(true),
        "BENCH_serve: sweep streams were byte-identical at 1 and 4 workers",
    );
    let sweep_scenarios = fresh.get("sweep_scenarios").and_then(Value::as_u64);
    let sweep_pseudo = fresh.get("sweep_pseudo3d_runs").and_then(Value::as_u64);
    gate.check(
        sweep_scenarios.is_some() && sweep_pseudo == sweep_scenarios,
        &format!(
            "BENCH_serve: sweep pseudo-3D runs {sweep_pseudo:?} == scenarios {sweep_scenarios:?} \
             (one checkpoint per technology scenario, never per grid point)"
        ),
    );
    // Fairness admission: the deferral counter is the deterministic
    // footprint of the cap, and the interactive p99 stays bounded.
    let fair_points = fresh.get("fair_sweep_points").and_then(Value::as_u64);
    let fair_cap = fresh.get("fair_inflight_cap").and_then(Value::as_u64);
    let fair_deferred = fresh.get("fair_quota_deferred").and_then(Value::as_u64);
    gate.check(
        fair_points.zip(fair_cap).map(|(p, c)| p - c) == fair_deferred,
        &format!(
            "BENCH_serve: quota deferrals {fair_deferred:?} == sweep points {fair_points:?} \
             minus cap {fair_cap:?} (every point past the cap deferred exactly once)"
        ),
    );
    let fair_ratio = fresh
        .get("fair_p99_ratio")
        .and_then(Value::as_f64)
        .unwrap_or(f64::INFINITY);
    let fair_free = fresh
        .get("fair_p99_free_ms")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let fair_during = fresh
        .get("fair_p99_during_sweep_ms")
        .and_then(Value::as_f64)
        .unwrap_or(f64::INFINITY);
    gate.check(
        fair_ratio <= FAIR_P99_RATIO_CEILING || fair_during - fair_free <= FAIR_P99_ABS_SLACK_MS,
        &format!(
            "BENCH_serve.fair_p99_ratio: {fair_ratio} <= ceiling {FAIR_P99_RATIO_CEILING} \
             (probe p99 {fair_free} -> {fair_during} ms during a \
             {fair_points:?}-point sweep)"
        ),
    );
    // Shard router: byte-identity behind 1 and 4 shards, and every
    // checkpoint key built on exactly one shard cluster-wide.
    gate.check(
        fresh.get("router_identical").and_then(Value::as_bool) == Some(true),
        "BENCH_serve: routed responses were byte-identical to a direct server at 1 and 4 shards",
    );
    gate.check(
        fresh.get("router_single_build").and_then(Value::as_bool) == Some(true),
        "BENCH_serve: cluster-wide cache misses == distinct keys (one build per key)",
    );
    let router_keys = fresh.get("router_distinct_keys").and_then(Value::as_u64);
    let router_pseudo = fresh.get("router_pseudo3d_runs").and_then(Value::as_u64);
    gate.check(
        router_keys.is_some() && router_pseudo == router_keys,
        &format!(
            "BENCH_serve: routed pseudo-3D runs {router_pseudo:?} == distinct keys \
             {router_keys:?} across the 4-shard cluster"
        ),
    );
}

/// Per-rung fields of the scale ladder that must match the baseline bit
/// for bit: generation, the flat views and the flow itself are all
/// deterministic, so the design — and its sign-off timing — may not move
/// unless the algorithms changed.
const SCALE_EXACT_U64: &[&str] = &["target_cells", "cells", "nets", "pins", "arena_bytes"];

/// Absolute floor on full-flow throughput, cells per second, for every
/// ladder rung. Deliberately far below the measured ~15–30 k cells/s so
/// only an order-of-magnitude regression (an accidental quadratic walk,
/// a lost flat layout) trips it — CI wall clocks are too noisy for
/// anything tighter.
const SCALE_THROUGHPUT_FLOOR: f64 = 2_000.0;

fn gate_scale(gate: &mut Gate, fresh: &Value, baseline: &Value) {
    gate.check(
        run_params(fresh) == run_params(baseline),
        &format!(
            "BENCH_scale: fresh run parameters {:?} match baseline {:?}",
            run_params(fresh),
            run_params(baseline)
        ),
    );
    let empty = Vec::new();
    let fresh_rungs = fresh.get("rungs").and_then(Value::as_arr).unwrap_or(&empty);
    gate.check(
        !fresh_rungs.is_empty(),
        "BENCH_scale: fresh run has ladder rungs",
    );
    for r in fresh_rungs {
        let name = r.get("name").and_then(Value::as_str).unwrap_or("?");
        let base_rung = baseline
            .get("rungs")
            .and_then(Value::as_arr)
            .and_then(|rs| {
                rs.iter()
                    .find(|b| b.get("name").and_then(Value::as_str) == Some(name))
            });
        let Some(base_rung) = base_rung else {
            gate.check(
                false,
                &format!("BENCH_scale[{name}]: rung present in baseline"),
            );
            continue;
        };
        for field in SCALE_EXACT_U64 {
            let f = r.get(field).and_then(Value::as_u64);
            let b = base_rung.get(field).and_then(Value::as_u64);
            gate.check(
                f.is_some() && f == b,
                &format!(
                    "BENCH_scale[{name}].{field}: deterministic count {f:?} == baseline {b:?}"
                ),
            );
        }
        // Sign-off WNS is deterministic too: same design, same flow, same
        // bits (both manifests print it with the same fixed precision).
        let f = r.get("wns_ns").and_then(Value::as_f64);
        let b = base_rung.get("wns_ns").and_then(Value::as_f64);
        gate.check(
            f.is_some() && f == b,
            &format!("BENCH_scale[{name}].wns_ns: deterministic timing {f:?} == baseline {b:?}"),
        );
        let v = r
            .get("flow_cells_per_sec")
            .and_then(Value::as_f64)
            .unwrap_or(f64::NEG_INFINITY);
        gate.check(
            v >= SCALE_THROUGHPUT_FLOOR,
            &format!(
                "BENCH_scale[{name}].flow_cells_per_sec: {v} >= floor {SCALE_THROUGHPUT_FLOOR}"
            ),
        );
    }
}

/// Absolute floor on the Pareto sweep's scenario throughput. The smoke
/// sweep measures ~45 scenarios/s; only an order-of-magnitude
/// regression (a sweep that recomputes checkpoints per grid point, or a
/// serialized fan-out) should trip it on a noisy CI runner.
const PARETO_SCENARIOS_PER_SEC_FLOOR: f64 = 4.0;

fn gate_pareto(gate: &mut Gate, fresh: &Value, baseline: &Value) {
    gate.check(
        run_params(fresh) == run_params(baseline),
        &format!(
            "BENCH_pareto: fresh run parameters {:?} match baseline {:?}",
            run_params(fresh),
            run_params(baseline)
        ),
    );
    gate.check(
        fresh.get("deterministic_identity").and_then(Value::as_bool) == Some(true),
        "BENCH_pareto: 1-thread and 4-thread sweeps were bit-identical in-process",
    );
    // The tentpole invariant: the pseudo-3-D stage ran exactly once per
    // distinct 3-D scenario — every frequency rung of a scenario forked
    // its checkpoint instead of recomputing it.
    let scenarios = fresh.get("scenarios").and_then(Value::as_u64);
    let pseudo = fresh.get("pseudo3d_runs").and_then(Value::as_u64);
    gate.check(
        scenarios.is_some() && pseudo == scenarios,
        &format!(
            "BENCH_pareto: pseudo-3D runs {pseudo:?} == distinct scenarios {scenarios:?} \
             (one checkpoint per scenario, never per grid point)"
        ),
    );
    for field in ["scenarios", "pseudo3d_runs", "frontier_points"] {
        let f = fresh.get(field).and_then(Value::as_u64);
        let b = baseline.get(field).and_then(Value::as_u64);
        gate.check(
            f.is_some() && f == b,
            &format!("BENCH_pareto.{field}: deterministic count {f:?} == baseline {b:?}"),
        );
    }
    // The swept points — metrics, sign-off corners and frontier flags —
    // are deterministic end to end, so the whole table must match the
    // baseline bit for bit.
    match (fresh.get("points"), baseline.get("points")) {
        (Some(f), Some(b)) => {
            let mut diffs = Vec::new();
            diff(f, b, "points", &mut diffs);
            let mut what = String::from("BENCH_pareto: swept point table matches baseline exactly");
            if !diffs.is_empty() {
                let _ = write!(what, " — first diffs: {}", diffs.join("; "));
            }
            gate.check(diffs.is_empty(), &what);
            let n = f.as_arr().map(|a| a.len());
            gate.check(
                n.is_some_and(|n| n > 0),
                &format!("BENCH_pareto: sweep produced points ({n:?})"),
            );
        }
        _ => gate.check(false, "BENCH_pareto: both files carry a points table"),
    }
    let v = fresh
        .get("scenarios_per_sec")
        .and_then(Value::as_f64)
        .unwrap_or(f64::NEG_INFINITY);
    gate.check(
        v >= PARETO_SCENARIOS_PER_SEC_FLOOR,
        &format!("BENCH_pareto.scenarios_per_sec: {v} >= floor {PARETO_SCENARIOS_PER_SEC_FLOOR}"),
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let dir_arg = |flag: &str, default: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map_or_else(|| PathBuf::from(default), PathBuf::from)
    };
    let fresh_dir = dir_arg("--fresh", "fresh");
    let baseline_dir = dir_arg("--baseline", "results");
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .cloned();
    println!(
        "bench_gate: {} (fresh) vs {} (baseline){}",
        fresh_dir.display(),
        baseline_dir.display(),
        only.as_deref()
            .map(|o| format!(" [only {o}]"))
            .unwrap_or_default()
    );

    let mut gate = Gate {
        failures: Vec::new(),
        checks: 0,
    };
    type Section = (&'static str, &'static str, fn(&mut Gate, &Value, &Value));
    let sections: [Section; 5] = [
        ("sta", "BENCH_sta.json", gate_sta),
        ("flow", "BENCH_flow.json", gate_flow),
        ("serve", "BENCH_serve.json", gate_serve),
        ("scale", "BENCH_scale.json", gate_scale),
        ("pareto", "BENCH_pareto.json", gate_pareto),
    ];
    let selected: Vec<_> = sections
        .iter()
        .filter(|(key, _, _)| only.as_deref().is_none_or(|o| o == *key))
        .collect();
    if selected.is_empty() {
        println!(
            "bench_gate: unknown --only section {:?} (expected sta|flow|serve|scale|pareto)",
            only.as_deref().unwrap_or("")
        );
        return ExitCode::FAILURE;
    }
    for (_, name, run) in selected {
        match (load(&fresh_dir, name), load(&baseline_dir, name)) {
            (Ok(fresh), Ok(baseline)) => run(&mut gate, &fresh, &baseline),
            (fresh, baseline) => {
                for r in [fresh, baseline] {
                    if let Err(e) = r {
                        gate.check(false, &format!("load {e}"));
                    }
                }
            }
        }
    }

    if gate.failures.is_empty() {
        println!("bench_gate: all {} checks passed", gate.checks);
        ExitCode::SUCCESS
    } else {
        println!(
            "bench_gate: {} of {} checks FAILED — metric regression or stale baseline.",
            gate.failures.len(),
            gate.checks
        );
        println!(
            "If the change is intentional, refresh the baselines: \
             `cargo run --release -p m3d-bench --bin sta_incr -- --scale tiny`, \
             `cargo run --release -p m3d-bench --bin flow_obs`, \
             `cargo run --release -p m3d-bench --bin serve_bench`, \
             `cargo run --release -p m3d-bench --bin scale_bench` and \
             `cargo run --release -p m3d-bench --bin pareto_bench`, then commit results/."
        );
        ExitCode::FAILURE
    }
}
