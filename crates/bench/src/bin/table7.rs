//! Regenerates Table VII: percent deltas of the heterogeneous 3-D design
//! against all four homogeneous configurations, per benchmark. Negative
//! values (positive for PPC) mean the heterogeneous design wins.

use hetero3d::cost::CostModel;
use hetero3d::flow::try_compare_configs;
use hetero3d::netgen::Benchmark;
use hetero3d::report::format_table7;
use m3d_bench::{bench_options, emit, parse_args};
use std::fmt::Write as _;

fn main() {
    let args = parse_args();
    let options = bench_options();
    let cost = CostModel::default();
    let mut comparisons = Vec::new();
    for bench in Benchmark::ALL {
        let netlist = bench.generate(args.scale, args.seed);
        eprintln!("[{bench}: {} gates]", netlist.gate_count());
        comparisons.push(try_compare_configs(&netlist, &options, &cost).expect("comparison"));
    }
    let refs: Vec<&_> = comparisons.iter().collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table VII: PPAC percentage delta = (hetero - config)/config x 100\n"
    );
    out.push_str(&format_table7(&refs));
    let _ = writeln!(
        out,
        "(paper headline shapes: hetero PPC beats every homogeneous config;\n PDP beats the best 2-D; Si area ~-12.5% vs 12-track configs)"
    );
    emit(&args, "table7.txt", &out);
}
