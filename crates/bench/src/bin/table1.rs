//! Regenerates Table I: the qualitative 1–5 ranking of the five
//! configurations on frequency / power / power-per-frequency / footprint /
//! silicon area / die cost — here derived from *measured* implementations
//! rather than asserted a priori.

use hetero3d::cost::CostModel;
use hetero3d::flow::try_compare_configs;
use hetero3d::netgen::Benchmark;
use hetero3d::report::qualitative_ranking;
use m3d_bench::{bench_options, emit, parse_args};
use std::fmt::Write as _;

fn main() {
    let args = parse_args();
    let options = bench_options();
    let cost = CostModel::default();
    // Rank on the netcard design (the paper's Table I is design-generic;
    // netcard is the largest and least quirky of the four).
    let netlist = Benchmark::Netcard.generate(args.scale, args.seed);
    eprintln!("[netcard: {} gates]", netlist.gate_count());
    let cmp = try_compare_configs(&netlist, &options, &cost).expect("comparison");
    let mut all = cmp.homogeneous.clone();
    all.push(cmp.hetero.clone());
    let table = qualitative_ranking(&all);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table I: measured qualitative ranking (1 = worst, 5 = best), netcard @ {:.2} GHz\n",
        cmp.target_ghz
    );
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\n(paper's expected ranks: Frequency 1/2/3/5/- with hetero 4; Power 4/5/1/2\n with hetero 3; Power/Freq hetero best at 5; Si Area 9T best; Die Cost 3D worst)"
    );
    emit(&args, "table1.txt", &out);
}
