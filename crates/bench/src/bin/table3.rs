//! Regenerates Table III: FO-4 boundary behavior with heterogeneity at the
//! driver *input* (Fig. 2b) — the signal feeding the driver swings to the
//! other tier's supply. The headline effect: an under-driven PMOS gate
//! leaks dramatically more (paper: +250 %), an over-driven one leaks less.

use hetero3d::circuit::fo4;
use m3d_bench::{emit, parse_args};
use std::fmt::Write as _;

fn main() {
    let args = parse_args();
    let cases = fo4::table3_cases();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table III: heterogeneity at the driver input (times ns, power uW)\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "", "Case-I", "Case-II", "d%", "Case-I'", "Case-II'", "d%"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "Source", "fast", "slow", "", "slow", "fast", ""
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "Driver/FO4", "fast", "fast", "", "slow", "slow", ""
    );
    let d_12 = cases[1].percent_delta(&cases[0]);
    let d_34 = cases[3].percent_delta(&cases[2]);
    let _ = writeln!(
        out,
        "{:<12} {:>10.2} {:>10.2} {:>8} {:>10.2} {:>10.2} {:>8}",
        "Driver VG",
        cases[0].driver_vg,
        cases[1].driver_vg,
        "",
        cases[2].driver_vg,
        cases[3].driver_vg,
        ""
    );
    type MetricOf = fn(&fo4::Fo4Measurement) -> f64;
    let rows: [(&str, MetricOf, usize); 6] = [
        ("Rise Slew", |m| m.rise_slew_ns * 1e3, 0),
        ("Fall Slew", |m| m.fall_slew_ns * 1e3, 1),
        ("Rise Del.", |m| m.rise_delay_ns * 1e3, 2),
        ("Fall Del.", |m| m.fall_delay_ns * 1e3, 3),
        ("Lkg. Pow.", |m| m.leakage_uw, 4),
        ("Total Pow.", |m| m.total_power_uw, 5),
    ];
    for (name, get, di) in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>10.3} {:>10.3} {:>+8.1} {:>10.3} {:>10.3} {:>+8.1}",
            name,
            get(&cases[0]),
            get(&cases[1]),
            d_12[di],
            get(&cases[2]),
            get(&cases[3]),
            d_34[di]
        );
    }
    let _ = writeln!(
        out,
        "\n(paper reference: slow source into fast FO4 -> leakage +250 %, delays a few\n percent slower; fast source into slow FO4 -> leakage -45 %, delays faster)"
    );
    emit(&args, "table3.txt", &out);
}
