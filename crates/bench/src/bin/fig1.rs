//! Regenerates Fig. 1: the five-configuration cartoon as SVG.

use hetero3d::report::render_config_cartoon;
use m3d_bench::{emit, parse_args};

fn main() {
    let args = parse_args();
    emit(&args, "fig1.svg", &render_config_cartoon());
}
