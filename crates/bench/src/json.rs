//! Minimal JSON reader for the bench-regression gate.
//!
//! The gate compares manifests that this workspace itself emits, so the
//! reader only needs to cover the JSON subset those files use: objects,
//! arrays, strings with simple escapes, numbers, booleans and null. It is
//! strict about structure (trailing garbage is an error) and keeps object
//! keys in document order so mismatches report deterministically.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a `/`-separated member path from this value.
    #[must_use]
    pub fn path(&self, dotted: &str) -> Option<&Value> {
        dotted.split('/').try_fold(self, |v, key| v.get(key))
    }

    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document. Errors carry a byte offset.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            members.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or("unterminated string")?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_manifest_shaped_documents() {
        let v = parse(
            r#"{
  "bench": "flow_obs", "scale": 0.02, "ok": true,
  "designs": [{"name": "aes", "speedup": 4.5}, {"name": "cpu", "speedup": 3.0}],
  "labels": {"input/netlist": "aes_like"}
}"#,
        )
        .expect("parse");
        assert_eq!(v.get("bench").and_then(Value::as_str), Some("flow_obs"));
        assert_eq!(v.get("scale").and_then(Value::as_f64), Some(0.02));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        let designs = v.get("designs").and_then(Value::as_arr).expect("arr");
        assert_eq!(designs.len(), 2);
        assert_eq!(designs[1].get("speedup").and_then(Value::as_f64), Some(3.0));
        let label = v.path("labels").and_then(|l| l.get("input/netlist"));
        assert_eq!(label.and_then(Value::as_str), Some("aes_like"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn handles_escapes_and_negatives() {
        let v = parse(r#"{"s": "a\"b\\c\nd", "n": -3.25e2}"#).expect("parse");
        assert_eq!(v.get("s").and_then(Value::as_str), Some("a\"b\\c\nd"));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(-325.0));
        assert_eq!(v.get("n").and_then(Value::as_u64), None);
    }
}
