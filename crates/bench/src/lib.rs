//! Shared harness for the table/figure regeneration binaries.
//!
//! Every binary accepts `--scale <f64>` (netlist size relative to the
//! workspace defaults; 0.06 keeps a full run within seconds per config)
//! and `--seed <u64>`, prints its table to stdout and mirrors it into
//! `results/<name>.txt`.

use hetero3d::flow::FlowOptions;
use std::fs;
use std::path::PathBuf;

/// Path-compatibility alias: the JSON reader started life here and now
/// lives in the shared [`m3d_json`] crate (which added the writer half).
pub use m3d_json as json;

/// Parsed command-line arguments of a regeneration binary.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Netlist scale factor.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Output directory (default `results/`).
    pub out_dir: PathBuf,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: 0.06,
            seed: 7,
            out_dir: PathBuf::from("results"),
        }
    }
}

/// Parses `--scale`, `--seed` and `--out` from `std::env::args`.
#[must_use]
pub fn parse_args() -> BenchArgs {
    let mut out = BenchArgs::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        match args[i].as_str() {
            "--scale" => {
                if let Ok(v) = args[i + 1].parse() {
                    out.scale = v;
                }
                i += 2;
            }
            "--seed" => {
                if let Ok(v) = args[i + 1].parse() {
                    out.seed = v;
                }
                i += 2;
            }
            "--out" => {
                out.out_dir = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            _ => i += 1,
        }
    }
    out
}

/// The flow options used by every regeneration binary (slightly reduced
/// placer effort relative to the library default, for runtime).
#[must_use]
pub fn bench_options() -> FlowOptions {
    let mut o = FlowOptions::default();
    o.placer_mut().iterations = 12;
    o
}

/// Prints `content` and mirrors it to `<out_dir>/<name>`.
///
/// # Panics
///
/// Panics if the output directory cannot be created or written.
pub fn emit(args: &BenchArgs, name: &str, content: &str) {
    println!("{content}");
    fs::create_dir_all(&args.out_dir).expect("create results dir");
    let path = args.out_dir.join(name);
    fs::write(&path, content).expect("write result file");
    eprintln!("[saved {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let a = BenchArgs::default();
        assert!(a.scale > 0.0);
        assert_eq!(a.out_dir, PathBuf::from("results"));
    }
}
