//! Workspace-level facade for examples and integration tests.
//!
//! Everything re-exported here comes from the [`hetero3d`] facade crate; see
//! that crate for the library documentation.
pub use hetero3d::*;
